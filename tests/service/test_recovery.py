"""Recovery-equivalence harness: ``kill -9`` the server, restart with
``--recover``, and prove the recovered service is equivalent to a
fault-free oracle run of the same client script (ISSUE 10 tentpole).

Each matrix case arms a :class:`~repro.chaos.CrashInjector` inside a real
``serve`` subprocess (``--chaos-crash POINT:HIT[:TEAR]``), so the process
dies by SIGKILL at a chosen instant of the durability protocol -- while
appending the admission record (optionally tearing it), between applying
admitted records, while appending the round record, or mid-snapshot.  One
extra case kills from outside at a random-ish time.  The client then
restarts the server against the same state directory, blindly resubmits
every job under its original idempotency key, and asserts:

* every job ends up with exactly its task count placed -- never more
  (no double placement of deduplicated resubmissions), matching the
  fault-free oracle;
* ``accepted == placed + pending + rejected`` holds at the recovered
  server's drain (exit code 0);
* a torn final record is reported dropped, never half-applied.
"""

from __future__ import annotations

import json
import os
import signal
import socket
import subprocess
import sys
import time

import pytest

JOBS = 6
TASKS_PER_JOB = 2


def serve_argv(state_dir, extra=()):
    return [
        sys.executable, "-m", "repro.cli.main", "serve",
        "--machines", "8",
        "--round-interval", "0.01",
        "--time-scale", "0.01",
        "--snapshot-interval-rounds", "2",
        "--serve-seconds", "60",
        "--state-dir", str(state_dir),
        *extra,
    ]


def spawn_server(state_dir, extra=()):
    env = dict(os.environ)
    repo_src = os.path.join(
        os.path.dirname(os.path.dirname(os.path.dirname(__file__))), "src"
    )
    env["PYTHONPATH"] = repo_src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        serve_argv(state_dir, extra),
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True, env=env,
    )
    port = None
    preamble = []
    while True:
        line = proc.stdout.readline()
        if not line:
            # Died before the handshake (e.g. crash during the initial
            # snapshot); the caller decides whether that was expected.
            return proc, None, preamble
        line = line.strip()
        preamble.append(line)
        if line.startswith("serving on "):
            port = int(line.rsplit(":", 1)[1])
            return proc, port, preamble


class Client:
    """Minimal blocking JSON-lines client for the harness."""

    def __init__(self, port: int):
        self.sock = socket.create_connection(("127.0.0.1", port), timeout=20)
        self.file = self.sock.makefile("r", encoding="utf-8")

    def send(self, payload) -> None:
        self.sock.sendall(json.dumps(payload).encode("utf-8") + b"\n")

    def recv(self):
        line = self.file.readline()
        if not line:
            raise ConnectionError("server hung up")
        return json.loads(line)

    def close(self) -> None:
        try:
            self.sock.close()
        except OSError:
            pass


def submit_and_wait(client: Client, key: str, request_id: int):
    """Submit one keyed job and wait until all its tasks are placed.

    Returns ``(task_ids, placed_ids)``.  Raises ConnectionError if the
    server dies mid-exchange (the crash cases).
    """
    client.send({
        "op": "submit", "tasks": TASKS_PER_JOB, "job_type": "service",
        "key": key, "id": request_id,
    })
    task_ids: set = set()
    placed: set = set()
    acked = False
    while not acked or placed != task_ids:
        event = client.recv()
        kind = event.get("event")
        if kind == "ack" and event.get("id") == request_id:
            acked = True
            assert not event.get("error"), event
            task_ids = set(event.get("task_ids", []))
            placed |= set(event.get("placed_task_ids", []))
        elif kind == "placement":
            assert event["task_id"] not in placed, (
                f"task {event['task_id']} placed twice"
            )
            if event["task_id"] in task_ids or not acked:
                placed.add(event["task_id"])
    return task_ids, placed


def drive_workload(port: int):
    """Submit the whole keyed workload; stop at the first connection loss.

    Returns ``(completed_keys, ledger_or_None)``: keys whose placements
    were all observed before any crash.
    """
    completed = []
    client = Client(port)
    try:
        for index in range(JOBS):
            submit_and_wait(client, f"job-{index}", index)
            completed.append(f"job-{index}")
        client.send({"op": "ledger", "id": 100})
        while True:
            event = client.recv()
            if event.get("event") == "ledger":
                return completed, event
    except (ConnectionError, OSError):
        return completed, None
    finally:
        client.close()


def resubmit_all_and_finish(port: int):
    """Blindly resubmit every key, await full placement, return the ledger
    and final stats from the recovered server."""
    client = Client(port)
    try:
        for index in range(JOBS):
            submit_and_wait(client, f"job-{index}", 200 + index)
        client.send({"op": "ledger", "id": 300})
        ledger = None
        while ledger is None:
            event = client.recv()
            if event.get("event") == "ledger":
                ledger = event
        client.send({"op": "stats", "id": 301})
        stats = None
        while stats is None:
            event = client.recv()
            if event.get("event") == "stats":
                stats = event
        client.send({"op": "shutdown", "id": 302})
        client.recv()  # shutdown ack
        return ledger, stats
    finally:
        client.close()


def oracle_ledger(tmp_path):
    """Fault-free run of the same workload: the equivalence baseline."""
    state_dir = tmp_path / "oracle"
    proc, port, _ = spawn_server(state_dir)
    assert port is not None
    try:
        completed, ledger = drive_workload(port)
        assert len(completed) == JOBS
        assert ledger is not None
        client = Client(port)
        client.send({"op": "shutdown", "id": 1})
        client.recv()
        client.close()
        assert proc.wait(timeout=30) == 0
        return ledger
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()


def assert_equivalent(ledger, stats, oracle):
    """The recovered end state matches the fault-free oracle."""
    assert set(ledger["keys"]) == set(oracle["keys"])
    for key, entry in ledger["keys"].items():
        assert len(entry["task_ids"]) == TASKS_PER_JOB, (key, entry)
        assert sorted(entry["placed"]) == sorted(entry["task_ids"]), (
            f"{key}: placed {entry['placed']} != tasks {entry['task_ids']}"
        )
        oracle_entry = oracle["keys"][key]
        assert len(entry["placed"]) == len(oracle_entry["placed"])
    assert stats["conserved"], stats
    assert stats["accepted"] == JOBS * TASKS_PER_JOB
    assert stats["placed"] == JOBS * TASKS_PER_JOB
    assert stats["pending"] == 0 and stats["rejected"] == 0


#: The seeded SIGKILL matrix: (crash spec, whether a torn tail must be
#: reported dropped by recovery).  Hits are chosen so each point actually
#: fires mid-workload: the initial start() snapshot is mid_snapshot hit 1,
#: so hit 3 lands on a steady-state snapshot; admissions/rounds begin at
#: hit 1 once clients submit.
CRASH_MATRIX = [
    ("admit_append:2", False),
    ("admit_append:3:10", True),
    ("round_append:2", False),
    ("round_append:3:6", True),
    ("mid_drain:2", False),
    ("mid_snapshot:3", False),
]


@pytest.mark.parametrize("spec,expect_torn", CRASH_MATRIX)
def test_sigkill_then_recover_matches_oracle(tmp_path, spec, expect_torn):
    oracle = oracle_ledger(tmp_path)
    state_dir = tmp_path / "crash"

    proc, port, _ = spawn_server(state_dir, extra=["--chaos-crash", spec])
    assert port is not None, "server must survive startup for this matrix"
    completed_before = []
    try:
        completed_before, _ = drive_workload(port)
        # The armed crash point must actually have fired: SIGKILL, not a
        # graceful exit.
        proc.wait(timeout=30)
        assert proc.returncode == -signal.SIGKILL, (
            f"expected SIGKILL death, got rc={proc.returncode}"
        )
        assert len(completed_before) < JOBS, (
            "crash fired too late to interrupt the workload"
        )
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()

    # Restart against the same state dir and finish the workload.
    proc2, port2, preamble = spawn_server(state_dir, extra=["--recover"])
    assert port2 is not None, f"recovery failed: {preamble}"
    recovery_line = next(
        (line for line in preamble if line.startswith("recovered from")), None
    )
    assert recovery_line is not None, preamble
    if expect_torn:
        assert "torn tail dropped" in recovery_line, recovery_line
    try:
        ledger, stats = resubmit_all_and_finish(port2)
        assert_equivalent(ledger, stats, oracle)
        assert proc2.wait(timeout=30) == 0, proc2.stderr.read()
    finally:
        if proc2.poll() is None:
            proc2.kill()
            proc2.wait()


def test_external_sigkill_then_recover_matches_oracle(tmp_path):
    """No injector: kill -9 from outside at an arbitrary busy moment."""
    oracle = oracle_ledger(tmp_path)
    state_dir = tmp_path / "crash"
    proc, port, _ = spawn_server(state_dir)
    assert port is not None
    try:
        client = Client(port)
        # Fire the first half of the workload without waiting, then kill
        # while the server is mid-flight.
        for index in range(JOBS):
            client.send({
                "op": "submit", "tasks": TASKS_PER_JOB,
                "job_type": "service", "key": f"job-{index}", "id": index,
            })
        time.sleep(0.05)
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=30)
        client.close()
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()

    proc2, port2, preamble = spawn_server(state_dir, extra=["--recover"])
    assert port2 is not None, f"recovery failed: {preamble}"
    try:
        ledger, stats = resubmit_all_and_finish(port2)
        assert_equivalent(ledger, stats, oracle)
        assert proc2.wait(timeout=30) == 0
    finally:
        if proc2.poll() is None:
            proc2.kill()
            proc2.wait()


def test_loadgen_drives_load_across_the_crash(tmp_path):
    """The loadgen satellite: reconnect-and-resubmit with idempotency keys
    keeps a multi-client closed loop running across a kill -9 + recovery,
    with no double placement."""
    import asyncio

    from repro.service.loadgen import run_loadgen

    state_dir = tmp_path / "state"
    # Deterministic crash: the server SIGKILLs itself while appending the
    # 3rd admission record -- guaranteed mid-workload with no timing
    # races, even if both clients' submissions coalesce pairwise (two
    # closed-loop clients x 4 sequential jobs = at least 4 admit batches).
    proc, port, _ = spawn_server(
        state_dir, extra=["--chaos-crash", "admit_append:3"]
    )
    assert port is not None
    endpoint_box = {"port": port}

    async def scenario():
        loadgen_task = asyncio.create_task(run_loadgen(
            "127.0.0.1", endpoint_box["port"],
            clients=2, jobs_per_client=4, tasks_per_job=4,
            duration=None, job_type="service",
            idempotency_keys=True, reconnect=True,
            endpoint=lambda: ("127.0.0.1", endpoint_box["port"]),
        ))
        await asyncio.get_running_loop().run_in_executor(None, proc.wait)
        assert proc.returncode == -signal.SIGKILL
        proc2, port2, preamble = await asyncio.get_running_loop().run_in_executor(
            None, lambda: spawn_server(state_dir, extra=["--recover"])
        )
        assert port2 is not None, f"recovery failed: {preamble}"
        endpoint_box["port"] = port2
        try:
            result = await asyncio.wait_for(loadgen_task, timeout=60)
        finally:
            if proc2.poll() is None:
                proc2.kill()
                proc2.wait()
        return result

    try:
        result = asyncio.run(scenario())
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()

    assert result.errors == 0, result
    assert result.tasks_placed == 2 * 4 * 4
    assert result.reconnects >= 1, "the crash window missed the loadgen run"
    stats = result.service_stats
    assert stats is not None and stats["conserved"], stats
