"""Tests for the scheduler-as-a-service front end (`repro.service`).

Covers the ISSUE 9 service contract: concurrent submission with placement
streaming, drain-on-shutdown conservation, slow-client backpressure
(eviction, not stalling), machine events, and a chaos case with a worker
kill mid-round behind the service.

The suite is stdlib-only: each test drives a real asyncio TCP service on
an ephemeral port inside ``asyncio.run`` (no pytest-asyncio dependency).
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.chaos import ChaosPolicy
from repro.cluster.state import ClusterState
from repro.cluster.topology import build_topology
from repro.core import FirmamentScheduler, ShardedScheduler
from repro.core.policies import QuincyPolicy
from repro.service import SchedulerService, ServiceConfig
from repro.service.loadgen import run_loadgen


def make_service(
    machines: int = 16,
    scheduler=None,
    **config_kwargs,
) -> SchedulerService:
    state = ClusterState(build_topology(machines))
    scheduler = scheduler or FirmamentScheduler(QuincyPolicy())
    defaults = {"round_interval": 0.01, "time_scale": 0.01}
    defaults.update(config_kwargs)
    return SchedulerService(state, scheduler, ServiceConfig(**defaults))


async def send(writer: asyncio.StreamWriter, payload: dict) -> None:
    writer.write(json.dumps(payload).encode() + b"\n")
    await writer.drain()


async def recv(reader: asyncio.StreamReader) -> dict:
    line = await reader.readline()
    assert line, "connection closed unexpectedly"
    return json.loads(line)


async def recv_until(reader: asyncio.StreamReader, event: str) -> dict:
    while True:
        message = await recv(reader)
        if message.get("event") == event:
            return message


class TestSubmissionStreaming:
    def test_concurrent_clients_stream_placements(self):
        async def scenario():
            service = make_service(machines=16)
            await service.start()
            try:
                result = await run_loadgen(
                    "127.0.0.1", service.port, clients=4, jobs_per_client=3,
                    tasks_per_job=4, duration=1.0,
                )
                assert result.tasks_accepted == 4 * 3 * 4
                assert result.tasks_placed == result.tasks_accepted
                assert result.errors == 0
                assert len(result.latencies) == result.tasks_placed
                assert all(lat >= 0.0 for lat in result.latencies)
                stats = result.service_stats
                assert stats["conserved"] is True
                assert stats["accepted"] == 48
                assert stats["placed"] == 48
                assert stats["rejected"] == 0
            finally:
                await service.stop()

        asyncio.run(asyncio.wait_for(scenario(), 30))

    def test_submissions_coalesce_into_shared_rounds(self):
        """Many jobs submitted inside one round gap share admission rounds."""

        async def scenario():
            service = make_service(machines=16, round_interval=0.1)
            await service.start()
            try:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", service.port
                )
                for sequence in range(6):
                    await send(writer, {
                        "op": "submit", "tasks": 2, "id": sequence,
                        "duration": 1.0,
                    })
                placed = 0
                while placed < 12:
                    message = await recv(reader)
                    if message["event"] == "placement":
                        placed += 1
                writer.close()
                # 6 jobs, but far fewer rounds: the burst was coalesced.
                assert service.stats.rounds < 6
            finally:
                await service.stop()

        asyncio.run(asyncio.wait_for(scenario(), 30))

    def test_stats_and_errors(self):
        async def scenario():
            service = make_service()
            await service.start()
            try:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", service.port
                )
                await send(writer, {"op": "nonsense", "id": 7})
                message = await recv(reader)
                assert message["event"] == "error"
                assert message["id"] == 7

                await send(writer, {"op": "submit", "tasks": 0})
                message = await recv(reader)
                assert message["event"] == "error"

                await send(writer, {"op": "stats"})
                message = await recv_until(reader, "stats")
                assert message["accepted"] == 0
                assert message["conserved"] is True
                writer.close()
            finally:
                await service.stop()

        asyncio.run(asyncio.wait_for(scenario(), 30))

    def test_machine_add_and_remove_events(self):
        async def scenario():
            # 2 machines x 4 slots: 8 slots, fully occupied by one job.
            service = make_service(machines=2)
            await service.start()
            try:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", service.port
                )
                await send(writer, {
                    "op": "submit", "tasks": 8, "id": 0, "job_type": "service",
                })
                ack = await recv_until(reader, "ack")
                assert ack["accepted"] == 8
                for _ in range(8):
                    await recv_until(reader, "placement")

                # A ninth (service) task cannot be placed: cluster is full.
                await send(writer, {
                    "op": "submit", "tasks": 1, "id": 1, "job_type": "service",
                })
                await recv_until(reader, "ack")
                await send(writer, {"op": "stats"})
                stats = await recv_until(reader, "stats")
                assert stats["pending"] == 1
                assert stats["conserved"] is True

                # Adding a machine unblocks it.
                await send(writer, {"op": "add_machine", "count": 1})
                ack = await recv_until(reader, "ack")
                (new_machine,) = ack["machine_ids"]
                placement = await recv_until(reader, "placement")
                assert placement["machine_id"] == new_machine

                # Removing that machine preempts its task; the task returns
                # to pending (no free slot anywhere else).
                await send(writer, {
                    "op": "remove_machine", "machine_id": new_machine,
                })
                await recv_until(reader, "ack")
                preemption = await recv_until(reader, "preemption")
                assert preemption["task_id"] == placement["task_id"]
                await send(writer, {"op": "stats"})
                stats = await recv_until(reader, "stats")
                assert stats["conserved"] is True
                writer.close()
            finally:
                await service.stop()

        asyncio.run(asyncio.wait_for(scenario(), 30))


class TestDrainConservation:
    def test_drain_rejects_queued_and_conserves_exactly(self):
        """accepted == placed + pending + rejected holds at drain.

        The cluster is sized so some accepted tasks cannot be placed
        (pending at drain) and a submission queued behind the drain is
        voided (rejected); the final snapshot must balance exactly.
        """

        async def scenario():
            # 1 machine x 4 slots; 6 never-completing tasks: 4 place, 2 pend.
            service = make_service(machines=1)
            await service.start()
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", service.port
            )
            await send(writer, {
                "op": "submit", "tasks": 6, "id": 0, "job_type": "service",
            })
            await recv_until(reader, "ack")
            for _ in range(4):
                await recv_until(reader, "placement")

            # Start the drain, then race a submission in behind it: it must
            # be refused at the front door (not silently dropped).
            snapshot_task = asyncio.create_task(service.stop())
            await asyncio.sleep(0)
            await send(writer, {"op": "submit", "tasks": 3, "id": 1})
            ack = await recv_until(reader, "ack")
            assert ack.get("error") == "draining"
            assert ack["accepted"] == 0

            snapshot = await snapshot_task
            assert snapshot["accepted"] == 6
            assert snapshot["placed"] == 4
            assert snapshot["pending"] == 2
            assert snapshot["rejected"] == 0
            assert snapshot["conserved"] is True
            writer.close()

        asyncio.run(asyncio.wait_for(scenario(), 30))

    def test_queued_unadmitted_submissions_are_rejected_on_drain(self):
        """Tasks accepted but still in the inbox at drain become rejected."""

        async def scenario():
            # A long round interval so a submission sits in the inbox.
            service = make_service(machines=4, round_interval=5.0)
            await service.start()
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", service.port
            )
            # First submission wakes the idle loop and is admitted at once;
            # the second lands in the inter-round gap and stays queued.
            await send(writer, {"op": "submit", "tasks": 2, "id": 0,
                                "job_type": "service"})
            await recv_until(reader, "ack")
            for _ in range(2):
                await recv_until(reader, "placement")
            await send(writer, {"op": "submit", "tasks": 3, "id": 1,
                                "job_type": "service"})
            await recv_until(reader, "ack")

            snapshot = await service.stop()
            assert snapshot["accepted"] == 5
            assert snapshot["placed"] == 2
            assert snapshot["rejected"] == 3
            assert snapshot["pending"] == 0
            assert snapshot["conserved"] is True
            writer.close()

        asyncio.run(asyncio.wait_for(scenario(), 30))


class TestBackpressure:
    def test_slow_client_is_evicted_not_stalled(self):
        """A client that never reads fills its queue and is evicted; the
        round loop and other clients keep making progress."""

        async def scenario():
            service = make_service(
                machines=16, client_queue_limit=4, round_interval=0.01,
            )
            await service.start()
            try:
                # The slow client submits enough tasks to overflow its own
                # notification queue (ack + placements > 4) and never reads.
                slow_reader, slow_writer = await asyncio.open_connection(
                    "127.0.0.1", service.port
                )
                await send(slow_writer, {
                    "op": "submit", "tasks": 16, "id": 0, "duration": 1.0,
                })

                # A healthy client keeps working while the slow one chokes.
                result = await run_loadgen(
                    "127.0.0.1", service.port, clients=1, jobs_per_client=2,
                    tasks_per_job=4, duration=1.0,
                )
                assert result.tasks_placed == 8
                assert result.errors == 0

                # Eviction happened; the slow client's tasks were still
                # admitted and placed (jobs outlive their submitter), so
                # conservation holds and nothing stalled.
                for _ in range(100):
                    if service.stats.evicted_clients >= 1:
                        break
                    await asyncio.sleep(0.02)
                assert service.stats.evicted_clients >= 1
                stats = service.stats.snapshot(service._pending_actual())
                assert stats["conserved"] is True
                assert stats["accepted"] == 16 + 8
                slow_writer.close()
            finally:
                await service.stop()

        asyncio.run(asyncio.wait_for(scenario(), 30))


class TestServiceChaos:
    def test_worker_kill_mid_round_behind_service(self):
        """A sharded scheduler with worker kills keeps serving placements.

        The chaos policy kills a cell worker every round; the parent-side
        fallback serves the affected cell, so clients still see all their
        placements and the conservation law survives the faults.
        """

        async def scenario():
            chaos = ChaosPolicy(rates={"worker_kill": 1.0}, seed=3)
            scheduler = ShardedScheduler(
                QuincyPolicy, num_cells=2, workers=True, chaos=chaos,
            )
            service = make_service(machines=16, scheduler=scheduler)
            await service.start()
            try:
                result = await run_loadgen(
                    "127.0.0.1", service.port, clients=2, jobs_per_client=2,
                    tasks_per_job=4, duration=1.0,
                )
                assert result.tasks_placed == result.tasks_accepted == 16
                assert result.errors == 0
                stats = result.service_stats
                assert stats["conserved"] is True
                # The faults really fired behind the service.
                assert chaos.injected.get("worker_kill", 0) >= 1
            finally:
                await service.stop()

        asyncio.run(asyncio.wait_for(scenario(), 60))


class TestServeCommand:
    def test_serve_registered_with_help(self, capsys):
        from repro.cli import build_parser

        parser = build_parser()
        args = parser.parse_args(["serve", "--machines", "8", "--port", "0"])
        assert args.command == "serve"
        assert args.machines == 8

    def test_serve_rejects_invalid_machines(self, capsys):
        from repro.cli import main

        assert main(["serve", "--machines", "0"]) == 1
        assert "error" in capsys.readouterr().err.lower()

    def test_serve_drains_after_serve_seconds(self, capsys):
        from repro.cli import main

        code = main([
            "serve", "--machines", "4", "--serve-seconds", "0.2",
            "--round-interval", "0.01",
        ])
        assert code == 0
        output = capsys.readouterr().out
        assert "serving on 127.0.0.1:" in output
        assert "service drained" in output
        assert "conservation: accepted == placed + pending + rejected" in output
