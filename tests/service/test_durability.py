"""Unit tests for the durability layer: framing, torn tails, snapshots,
retention, recovery, and the in-process crash-equivalence contract.

The subprocess ``kill -9`` matrix lives in ``test_recovery.py``; this file
exercises the same machinery deterministically in process, simulating a
crash by abandoning the service without a drain (so no final snapshot is
written and recovery must work from the WAL tail alone).
"""

from __future__ import annotations

import asyncio
import json
import struct
import zlib
from pathlib import Path

import pytest

from repro.cluster.state import ClusterState
from repro.cluster.topology import build_topology
from repro.core import FirmamentScheduler
from repro.core.policies import QuincyPolicy
from repro.service import (
    DurabilityLayer,
    RecoveryError,
    SchedulerService,
    ServiceConfig,
    recover,
    restore_cluster_state,
    snapshot_cluster_state,
)
from repro.service.durability import new_ledger, read_segment
from tests.conftest import make_cluster_state, make_job

_HEADER = struct.Struct("<II")


def make_layer(tmp_path, **kwargs) -> DurabilityLayer:
    kwargs.setdefault("fsync", False)  # unit tests don't need real disk sync
    return DurabilityLayer(tmp_path / "state", **kwargs)


def bootstrap(layer: DurabilityLayer, state=None) -> None:
    """Write the initial snapshot so the log accepts appends."""
    state = state or make_cluster_state(num_machines=2)
    layer.write_snapshot(snapshot_cluster_state(state), new_ledger(), clock=0.0)


class TestFraming:
    def test_records_round_trip(self, tmp_path):
        layer = make_layer(tmp_path)
        bootstrap(layer)
        layer.log_admission({"now": 1.0, "submissions": [], "machines_added": [],
                             "machines_removed": [], "completions": []})
        layer.log_round({"now": 2.0, "placements": {}, "migrations": {},
                         "preemptions": [], "degraded": False})
        layer.close()
        records, torn = read_segment(layer.directory / "wal-00000001.log")
        assert not torn
        assert [r["kind"] for r in records] == ["admit", "round"]
        assert [r["seq"] for r in records] == [1, 2]

    @pytest.mark.parametrize("cut", [1, 4, 7, 8, 12])
    def test_torn_tail_detected_and_dropped(self, tmp_path, cut):
        """Any truncation of the final record -- inside the header, inside
        the payload, even leaving a valid-length prefix -- is torn."""
        layer = make_layer(tmp_path)
        bootstrap(layer)
        layer.log_admission({"now": 1.0, "submissions": [], "machines_added": [],
                             "machines_removed": [], "completions": []})
        layer.log_round({"now": 2.0, "placements": {}, "migrations": {},
                         "preemptions": [], "degraded": False})
        layer.close()
        path = layer.directory / "wal-00000001.log"
        data = path.read_bytes()
        records, _ = read_segment(path)
        first_len = _HEADER.size + len(
            json.dumps(records[0], separators=(",", ":")).encode()
        )
        path.write_bytes(data[: first_len + cut])
        survivors, torn = read_segment(path)
        assert torn
        assert [r["seq"] for r in survivors] == [1]

    def test_corrupted_crc_is_torn(self, tmp_path):
        layer = make_layer(tmp_path)
        bootstrap(layer)
        layer.log_round({"now": 2.0, "placements": {}, "migrations": {},
                         "preemptions": [], "degraded": False})
        layer.close()
        path = layer.directory / "wal-00000001.log"
        data = bytearray(path.read_bytes())
        data[-1] ^= 0xFF  # flip a payload byte: CRC must catch it
        path.write_bytes(bytes(data))
        records, torn = read_segment(path)
        assert torn and records == []

    def test_append_requires_a_snapshot(self, tmp_path):
        layer = make_layer(tmp_path)
        with pytest.raises(RecoveryError):
            layer.log_round({"now": 0.0, "placements": {}, "migrations": {},
                             "preemptions": [], "degraded": False})


class TestSnapshotsAndRetention:
    def round_record(self, now):
        return {"now": now, "placements": {}, "migrations": {},
                "preemptions": [], "degraded": False}

    def test_round_count_trigger(self, tmp_path):
        layer = make_layer(tmp_path, snapshot_interval_rounds=2)
        bootstrap(layer)
        layer.log_round(self.round_record(1.0))
        assert not layer.should_snapshot()
        layer.log_round(self.round_record(2.0))
        assert layer.should_snapshot()

    def test_log_size_trigger(self, tmp_path):
        layer = make_layer(tmp_path, snapshot_interval_rounds=10_000,
                           snapshot_max_log_bytes=64)
        bootstrap(layer)
        layer.log_round(self.round_record(1.0))
        assert layer.should_snapshot()

    def test_retention_keeps_two_snapshots_and_their_segments(self, tmp_path):
        layer = make_layer(tmp_path, snapshot_interval_rounds=1)
        state = make_cluster_state(num_machines=2)
        for epoch in range(4):
            bootstrap(layer, state)
            layer.log_round(self.round_record(float(epoch)))
        layer.close()
        snapshots = sorted(p.name for p in layer.directory.glob("snapshot-*.json"))
        segments = sorted(p.name for p in layer.directory.glob("wal-*.log"))
        assert snapshots == ["snapshot-00000003.json", "snapshot-00000004.json"]
        assert segments == ["wal-00000003.log", "wal-00000004.log"]

    def test_recovery_falls_back_past_corrupt_newest_snapshot(self, tmp_path):
        layer = make_layer(tmp_path, snapshot_interval_rounds=1)
        state = make_cluster_state(num_machines=2)
        state.submit_job(make_job(job_id=1, num_tasks=2, duration=None))
        bootstrap(layer, state)
        bootstrap(layer, state)
        layer.close()
        newest = layer.directory / "snapshot-00000002.json"
        newest.write_bytes(newest.read_bytes()[: 40])  # tear it
        recovered = recover(layer.directory)
        assert recovered.snapshot_epoch == 1
        assert recovered.snapshots_skipped == 1
        assert recovered.state == state

    def test_recovery_without_any_snapshot_raises(self, tmp_path):
        (tmp_path / "empty").mkdir()
        with pytest.raises(RecoveryError):
            recover(tmp_path / "empty")

    def test_unrenamed_temp_snapshot_is_ignored(self, tmp_path):
        layer = make_layer(tmp_path)
        state = make_cluster_state(num_machines=2)
        bootstrap(layer, state)
        layer.close()
        # A crash mid-snapshot leaves a partial .tmp; recovery must not
        # even look at it.
        (layer.directory / "snapshot-00000099.json.tmp").write_bytes(b"par")
        recovered = recover(layer.directory)
        assert recovered.snapshot_epoch == 1


def run(coro, timeout=30):
    return asyncio.run(asyncio.wait_for(coro, timeout))


async def send(writer, payload):
    writer.write(json.dumps(payload).encode() + b"\n")
    await writer.drain()


async def recv(reader):
    return json.loads(await reader.readline())


def make_durable_service(tmp_path, recovered=None, **layer_kwargs):
    layer_kwargs.setdefault("fsync", False)
    layer_kwargs.setdefault("snapshot_interval_rounds", 1000)
    durability = DurabilityLayer(tmp_path / "state", **layer_kwargs)
    if recovered is not None:
        state = recovered.state
    else:
        state = ClusterState(build_topology(8, slots_per_machine=4))
    scheduler = FirmamentScheduler(QuincyPolicy())
    config = ServiceConfig(round_interval=0.01, time_scale=0.01)
    return SchedulerService(
        state, scheduler, config, durability=durability, recovered=recovered
    )


def abandon(service):
    """Simulate a crash: kill the round loop, close nothing gracefully."""
    service._round_task.cancel()
    service._stopped.set()
    service._durability.close()
    if service._server is not None:
        service._server.close()


class TestInProcessCrashEquivalence:
    def test_recovered_state_equals_precrash_state(self, tmp_path):
        async def scenario():
            service = make_durable_service(tmp_path)
            await service.start()
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", service.port
            )
            await send(writer, {"op": "submit", "tasks": 6, "key": "a",
                                "job_type": "service", "id": 1})
            ack = await recv(reader)
            task_ids = set(ack["task_ids"])
            placed = set()
            while placed != task_ids:
                event = await recv(reader)
                if event.get("event") == "placement":
                    placed.add(event["task_id"])
            captured = snapshot_cluster_state(service.state)
            stats = service.stats
            abandon(service)
            writer.close()

            recovered = recover(tmp_path / "state")
            assert recovered.state == restore_cluster_state(captured)
            assert recovered.ledger["accepted"] == stats.accepted == 6
            assert recovered.ledger["placed"] == stats.placed == 6
            assert recovered.ledger["idempotency"] == {"a": ack["job_id"]}

        run(scenario())

    def test_resume_dedupes_and_conserves_across_crash(self, tmp_path):
        async def scenario():
            service = make_durable_service(tmp_path)
            await service.start()
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", service.port
            )
            await send(writer, {"op": "submit", "tasks": 4, "key": "k",
                                "job_type": "service", "id": 1})
            ack = await recv(reader)
            task_ids = set(ack["task_ids"])
            placed = set()
            while placed != task_ids:
                event = await recv(reader)
                if event.get("event") == "placement":
                    placed.add(event["task_id"])
            abandon(service)
            writer.close()

            recovered = recover(tmp_path / "state")
            service2 = make_durable_service(tmp_path, recovered=recovered)
            await service2.start()
            reader2, writer2 = await asyncio.open_connection(
                "127.0.0.1", service2.port
            )
            # Blind resubmission under the same key: deduplicated, with
            # the original placements reported.
            await send(writer2, {"op": "submit", "tasks": 4, "key": "k",
                                 "job_type": "service", "id": 2})
            dup = await recv(reader2)
            assert dup["duplicate"] is True
            assert dup["accepted"] == 0
            assert set(dup["placed_task_ids"]) == task_ids
            # A fresh key is new work on the recovered service.
            await send(writer2, {"op": "submit", "tasks": 2, "key": "k2",
                                 "job_type": "service", "id": 3})
            ack2 = await recv(reader2)
            assert ack2.get("duplicate") is None and ack2["accepted"] == 2
            new_ids = set(ack2["task_ids"])
            assert not (new_ids & task_ids), "task ids reused after recovery"
            placed2 = set()
            while placed2 != new_ids:
                event = await recv(reader2)
                if event.get("event") == "placement":
                    placed2.add(event["task_id"])
            await send(writer2, {"op": "stats", "id": 4})
            stats = await recv(reader2)
            assert stats["conserved"], stats
            assert stats["accepted"] == 6 and stats["placed"] == 6
            snapshot = await service2.stop()
            assert snapshot["conserved"], snapshot
            writer2.close()

        run(scenario())

    def test_graceful_stop_then_recover_replays_nothing(self, tmp_path):
        async def scenario():
            service = make_durable_service(tmp_path)
            await service.start()
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", service.port
            )
            await send(writer, {"op": "submit", "tasks": 3, "key": "g",
                                "job_type": "service", "id": 1})
            ack = await recv(reader)
            task_ids = set(ack["task_ids"])
            placed = set()
            while placed != task_ids:
                event = await recv(reader)
                if event.get("event") == "placement":
                    placed.add(event["task_id"])
            final = snapshot_cluster_state(service.state)
            await service.stop()
            writer.close()

            recovered = recover(tmp_path / "state")
            # The stop() snapshot sits at the log tip: nothing to replay.
            assert recovered.replayed_records == 0
            assert recovered.state == restore_cluster_state(final)

        run(scenario())

    def test_clock_resumes_monotonically(self, tmp_path):
        async def scenario():
            service = make_durable_service(tmp_path)
            await service.start()
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", service.port
            )
            await send(writer, {"op": "submit", "tasks": 1, "key": "t",
                                "job_type": "service", "id": 1})
            await recv(reader)
            await asyncio.sleep(0.05)
            abandon(service)
            writer.close()
            recovered = recover(tmp_path / "state")
            service2 = make_durable_service(tmp_path, recovered=recovered)
            assert service2.now() >= recovered.clock

        run(scenario())
