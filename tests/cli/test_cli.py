"""Tests for the ``firmament-repro`` command-line interface."""

from __future__ import annotations

import csv

import pytest

from repro.cli import build_parser, main
from repro.flow.dimacs import write_dimacs

from tests.conftest import build_scheduling_network


@pytest.fixture
def dimacs_file(tmp_path):
    network = build_scheduling_network(seed=4)
    path = tmp_path / "problem.dimacs"
    path.write_text(write_dimacs(network), encoding="utf-8")
    return path


class TestParser:
    def test_all_subcommands_registered(self):
        parser = build_parser()
        args = parser.parse_args(["solve", "some.dimacs"])
        assert args.command == "solve"
        args = parser.parse_args(["simulate", "--machines", "4"])
        assert args.command == "simulate"
        args = parser.parse_args(["trace", "--duration", "10"])
        assert args.command == "trace"

    def test_no_command_prints_help_and_fails(self, capsys):
        assert main([]) == 2
        assert "usage" in capsys.readouterr().out.lower()


class TestSolveCommand:
    def test_solve_prints_cost_and_succeeds(self, dimacs_file, capsys):
        assert main(["solve", str(dimacs_file)]) == 0
        output = capsys.readouterr().out
        assert "total cost:" in output
        assert "relaxation" in output

    def test_solve_with_explicit_algorithm_and_flows(self, dimacs_file, capsys):
        assert main(["solve", str(dimacs_file), "--algorithm", "cost_scaling",
                     "--print-flows"]) == 0
        output = capsys.readouterr().out
        assert "cost_scaling" in output
        assert "->" in output

    def test_solve_writes_output_file(self, dimacs_file, tmp_path, capsys):
        out_path = tmp_path / "solution.dimacs"
        assert main(["solve", str(dimacs_file), "--output", str(out_path)]) == 0
        content = out_path.read_text(encoding="utf-8")
        assert content.startswith("c DIMACS")
        assert "c solution flows" in content

    def test_all_algorithms_agree_on_cost(self, dimacs_file, capsys):
        costs = set()
        for algorithm in ("relaxation", "cost_scaling", "successive_shortest_path"):
            assert main(["solve", str(dimacs_file), "--algorithm", algorithm]) == 0
            output = capsys.readouterr().out
            cost_line = [l for l in output.splitlines() if l.startswith("total cost")][0]
            costs.add(int(cost_line.split(":")[1]))
        assert len(costs) == 1

    def test_dual_executor_algorithms_match_relaxation_cost(self, dimacs_file, capsys):
        costs = set()
        for algorithm in ("relaxation", "firmament_dual", "firmament_dual_parallel"):
            assert main(["solve", str(dimacs_file), "--algorithm", algorithm]) == 0
            output = capsys.readouterr().out
            cost_line = [l for l in output.splitlines() if l.startswith("total cost")][0]
            costs.add(int(cost_line.split(":")[1]))
        assert len(costs) == 1

    def test_executor_policy_flag_accepted_by_dual_algorithms(self, dimacs_file, capsys):
        assert main([
            "solve", str(dimacs_file), "--algorithm", "firmament_dual",
            "--executor-policy", "auto",
        ]) == 0
        output = capsys.readouterr().out
        assert "total cost" in output

    def test_missing_file_reports_error(self, capsys):
        assert main(["solve", "/nonexistent/problem.dimacs"]) == 1
        assert "error" in capsys.readouterr().err.lower()


class TestSimulateCommand:
    def test_small_firmament_simulation(self, capsys):
        code = main([
            "simulate", "--machines", "8", "--duration", "60",
            "--utilization", "0.5", "--seed", "1",
        ])
        assert code == 0
        output = capsys.readouterr().out
        assert "placement latency" in output
        assert "firmament" in output

    def test_parallel_executor_simulation(self, capsys):
        code = main([
            "simulate", "--machines", "8", "--duration", "40",
            "--utilization", "0.5", "--seed", "1",
            "--executor", "parallel", "--constant-service-load",
        ])
        assert code == 0
        output = capsys.readouterr().out
        assert "executor: parallel" in output
        assert "placement latency" in output

    def test_auto_executor_policy_simulation(self, capsys):
        code = main([
            "simulate", "--machines", "8", "--duration", "60",
            "--utilization", "0.5", "--seed", "1",
            "--executor-policy", "auto",
        ])
        assert code == 0
        output = capsys.readouterr().out
        assert "placement latency" in output

    def test_unknown_executor_policy_rejected(self):
        import pytest

        with pytest.raises(SystemExit):
            main([
                "simulate", "--machines", "4", "--duration", "10",
                "--executor-policy", "always",
            ])

    def test_baseline_scheduler_simulation(self, capsys):
        code = main([
            "simulate", "--machines", "6", "--duration", "40",
            "--scheduler", "sparrow", "--seed", "2",
        ])
        assert code == 0
        assert "sparrow" in capsys.readouterr().out

    def test_failure_injection_reported(self, capsys):
        code = main([
            "simulate", "--machines", "8", "--duration", "120",
            "--failure-mtbf", "20", "--seed", "3",
        ])
        assert code == 0
        assert "machine failures injected" in capsys.readouterr().out

    def test_invalid_machine_count_fails(self, capsys):
        assert main(["simulate", "--machines", "0"]) == 1
        assert "error" in capsys.readouterr().err.lower()

    def test_invalid_utilization_fails(self, capsys):
        assert main(["simulate", "--machines", "4", "--utilization", "2.0"]) == 1
        assert "error" in capsys.readouterr().err.lower()

    def test_round_deadline_reported_in_summary(self, capsys):
        # PR 6's round_deadline_seconds reachable from the CLI: a generous
        # budget never degrades a small run, but the summary must report it.
        code = main([
            "simulate", "--machines", "8", "--duration", "40",
            "--utilization", "0.5", "--seed", "1", "--round-deadline", "30",
        ])
        assert code == 0
        output = capsys.readouterr().out
        assert "round deadline" in output
        assert "degraded rounds: 0" in output

    def test_round_deadline_sharded_accepted(self, capsys):
        code = main([
            "simulate", "--machines", "8", "--duration", "30",
            "--utilization", "0.5", "--seed", "1",
            "--cells", "2", "--round-deadline", "30",
        ])
        assert code == 0
        assert "degraded rounds" in capsys.readouterr().out

    def test_round_deadline_rejected_for_baselines(self, capsys):
        assert main([
            "simulate", "--machines", "4", "--scheduler", "sparrow",
            "--round-deadline", "1",
        ]) == 1
        assert "--round-deadline" in capsys.readouterr().err


class TestSchedulerKnobForwarding:
    """Regression: solver knobs must reach the sharded per-cell solvers
    and impossible knob combinations must fail loudly, not silently."""

    def test_cells_forward_price_refine_to_cell_solvers(self):
        from repro.cli.simulate_command import _make_scheduler
        from repro.core import ShardedScheduler

        scheduler = _make_scheduler(
            "firmament", "quincy", cells=2, price_refine="spfa",
        )
        assert isinstance(scheduler, ShardedScheduler)
        # The per-cell solver factory and the worker kwargs both carry the
        # knob (pre-fix, ShardedScheduler never received it and every cell
        # silently solved with the default).
        assert scheduler._solver_factory().price_refine == "spfa"
        assert scheduler._solver_kwargs == {"price_refine": "spfa"}

    def test_cells_forward_round_deadline(self):
        from repro.cli.simulate_command import _make_scheduler

        scheduler = _make_scheduler(
            "firmament", "quincy", cells=2, round_deadline_seconds=0.5,
        )
        assert scheduler.round_deadline_seconds == 0.5

    def test_cells_with_baseline_scheduler_fails_loudly(self, capsys):
        # Pre-fix, --cells was silently ignored for non-firmament
        # schedulers and the run reported baseline numbers as sharded.
        assert main([
            "simulate", "--machines", "4", "--duration", "10",
            "--scheduler", "sparrow", "--cells", "2",
        ]) == 1
        assert "--cells" in capsys.readouterr().err

    def test_cells_with_parallel_executor_fails_loudly(self, capsys):
        # Pre-fix, --executor parallel was silently dropped when --cells
        # was given (ShardedScheduler has no dual race to configure).
        assert main([
            "simulate", "--machines", "4", "--duration", "10",
            "--cells", "2", "--executor", "parallel",
        ]) == 1
        assert "--executor" in capsys.readouterr().err

    def test_cells_with_auto_executor_policy_fails_loudly(self, capsys):
        assert main([
            "simulate", "--machines", "4", "--duration", "10",
            "--cells", "2", "--executor-policy", "auto",
        ]) == 1
        assert "--executor-policy" in capsys.readouterr().err

    def test_cell_workers_without_cells_fails_loudly(self, capsys):
        assert main([
            "simulate", "--machines", "4", "--duration", "10",
            "--cell-workers",
        ]) == 1
        assert "--cell-workers" in capsys.readouterr().err

    def test_sharded_cli_run_with_knobs_succeeds(self, capsys):
        code = main([
            "simulate", "--machines", "8", "--duration", "30",
            "--utilization", "0.5", "--seed", "1",
            "--cells", "2", "--price-refine", "spfa",
        ])
        assert code == 0
        assert "cells: 2" in capsys.readouterr().out


class TestTraceCommand:
    def test_trace_summary(self, capsys):
        assert main(["trace", "--machines", "20", "--duration", "60", "--seed", "5"]) == 0
        output = capsys.readouterr().out
        assert "jobs:" in output
        assert "job size [tasks]" in output

    def test_trace_csv_export(self, tmp_path, capsys):
        csv_path = tmp_path / "trace.csv"
        assert main([
            "trace", "--machines", "20", "--duration", "60",
            "--seed", "5", "--csv", str(csv_path),
        ]) == 0
        with open(csv_path, newline="", encoding="utf-8") as stream:
            rows = list(csv.reader(stream))
        assert rows[0][0] == "job_id"
        assert len(rows) > 1


class TestServeSignals:
    """SIGTERM/SIGINT drain the service gracefully instead of killing it
    mid-round (ISSUE 10 satellite)."""

    def _spawn_serve(self, extra=()):
        import os
        import subprocess
        import sys

        env = dict(os.environ)
        repo_src = os.path.join(
            os.path.dirname(os.path.dirname(os.path.dirname(__file__))), "src"
        )
        env["PYTHONPATH"] = repo_src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli.main", "serve",
                "--machines", "4", "--round-interval", "0.01",
                "--time-scale", "0.01", "--serve-seconds", "30",
            ],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True, env=env,
        )
        handshake = proc.stdout.readline().strip()
        assert handshake.startswith("serving on "), handshake
        return proc, int(handshake.rsplit(":", 1)[1])

    def test_sigterm_drains_and_reports_conservation(self):
        import json
        import signal
        import socket

        proc, port = self._spawn_serve()
        try:
            # Leave work in flight so the drain actually has something to
            # account for.
            with socket.create_connection(("127.0.0.1", port), timeout=10) as sock:
                sock.sendall(
                    json.dumps({"op": "submit", "tasks": 3, "id": 1,
                                "job_type": "service"}).encode() + b"\n"
                )
                reply = json.loads(sock.makefile("r").readline())
                assert reply["event"] == "ack" and reply["accepted"] == 3
                proc.send_signal(signal.SIGTERM)
                returncode = proc.wait(timeout=30)
            output = proc.stdout.read()
            assert returncode == 0, (output, proc.stderr.read())
            assert "draining on SIGTERM" in output
            assert "service drained" in output
            assert "conservation: accepted == placed + pending + rejected" in output
            assert "accepted: 3" in output
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()

    def test_sigint_takes_the_same_drain_path(self):
        import signal

        proc, _port = self._spawn_serve()
        try:
            proc.send_signal(signal.SIGINT)
            returncode = proc.wait(timeout=30)
            output = proc.stdout.read()
            assert returncode == 0, (output, proc.stderr.read())
            assert "draining on SIGINT" in output
            assert "service drained" in output
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
