"""Tests for the CSV/JSON experiment-result exporters."""

from __future__ import annotations

import csv
import io
import json

import pytest

from repro.analysis.export import (
    FigureData,
    Series,
    read_figure_json,
    write_cdf_csv,
    write_figure_json,
    write_series_csv,
    write_table_csv,
)


def make_figure() -> FigureData:
    figure = FigureData(title="Figure 7", x_label="machines", y_label="runtime_s")
    relaxation = figure.add_series("relaxation")
    relaxation.append(50, 0.01)
    relaxation.append(100, 0.02)
    cost_scaling = figure.add_series("cost_scaling")
    cost_scaling.append(50, 0.2)
    cost_scaling.append(100, 0.7)
    return figure


class TestSeries:
    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            Series(name="bad", x=[1, 2], y=[1])

    def test_append_grows_both_axes(self):
        series = Series(name="s")
        series.append(1, 2.0)
        assert series.x == [1]
        assert series.y == [2.0]

    def test_series_by_name(self):
        figure = make_figure()
        assert figure.series_by_name("relaxation").y[0] == 0.01
        with pytest.raises(KeyError):
            figure.series_by_name("missing")


class TestCsvExports:
    def test_series_csv_has_one_row_per_point(self):
        text = write_series_csv(make_figure())
        rows = list(csv.reader(io.StringIO(text)))
        assert rows[0] == ["series", "machines", "runtime_s"]
        assert len(rows) == 1 + 4
        assert rows[1][0] == "relaxation"

    def test_series_csv_writes_to_stream(self):
        stream = io.StringIO()
        text = write_series_csv(make_figure(), stream)
        assert stream.getvalue() == text

    def test_cdf_csv_is_cumulative(self):
        text = write_cdf_csv({"firmament": [3.0, 1.0, 2.0]})
        rows = list(csv.reader(io.StringIO(text)))[1:]
        values = [float(row[1]) for row in rows]
        fractions = [float(row[2]) for row in rows]
        assert values == sorted(values)
        assert fractions == sorted(fractions)
        assert fractions[-1] == pytest.approx(1.0)

    def test_cdf_csv_multiple_series(self):
        text = write_cdf_csv({"a": [1.0], "b": [2.0, 3.0]})
        rows = list(csv.reader(io.StringIO(text)))[1:]
        assert {row[0] for row in rows} == {"a", "b"}
        assert len(rows) == 3

    def test_table_csv_round_trip(self):
        text = write_table_csv(["threshold", "locality"], [["14%", "56%"], ["2%", "71%"]])
        rows = list(csv.reader(io.StringIO(text)))
        assert rows == [["threshold", "locality"], ["14%", "56%"], ["2%", "71%"]]

    def test_table_csv_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            write_table_csv(["a", "b"], [["only one cell"]])


class TestJsonExports:
    def test_json_round_trip(self):
        figure = make_figure()
        restored = read_figure_json(write_figure_json(figure))
        assert restored.title == figure.title
        assert restored.x_label == figure.x_label
        assert [s.name for s in restored.series] == [s.name for s in figure.series]
        assert restored.series_by_name("cost_scaling").y == [0.2, 0.7]

    def test_json_document_is_valid_json(self):
        document = json.loads(write_figure_json(make_figure()))
        assert document["title"] == "Figure 7"
        assert len(document["series"]) == 2

    def test_json_read_from_stream(self):
        stream = io.StringIO(write_figure_json(make_figure()))
        restored = read_figure_json(stream)
        assert restored.title == "Figure 7"

    def test_json_write_to_stream(self):
        stream = io.StringIO()
        text = write_figure_json(make_figure(), stream)
        assert stream.getvalue() == text
