"""Unit tests for the statistics and reporting helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.reporting import format_cdf, format_series, format_table
from repro.analysis.stats import (
    boxplot_stats,
    cdf_points,
    fraction_below,
    mean,
    percentile,
)


class TestPercentile:
    def test_empty_sequence(self):
        assert percentile([], 50) == 0.0
        assert mean([]) == 0.0

    def test_single_value(self):
        assert percentile([7.0], 0) == 7.0
        assert percentile([7.0], 100) == 7.0

    def test_interpolation(self):
        data = [0.0, 10.0]
        assert percentile(data, 50) == pytest.approx(5.0)
        assert percentile(data, 25) == pytest.approx(2.5)

    def test_extremes(self):
        data = [5.0, 1.0, 9.0, 3.0]
        assert percentile(data, 0) == 1.0
        assert percentile(data, 100) == 9.0

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            percentile([1.0], 120)

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=50),
           st.floats(min_value=0, max_value=100))
    def test_property_percentile_within_range(self, data, q):
        value = percentile(data, q)
        assert min(data) <= value <= max(data)

    @given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=50))
    def test_property_percentiles_are_monotone(self, data):
        values = [percentile(data, q) for q in (1, 25, 50, 75, 99)]
        assert values == sorted(values)


class TestSummaries:
    def test_boxplot_stats(self):
        data = list(range(1, 101))
        stats = boxplot_stats(data)
        assert stats.p50 == pytest.approx(50.5)
        assert stats.maximum == 100
        assert stats.count == 100
        assert stats.p25 < stats.p50 < stats.p75 < stats.p99
        assert len(stats.as_row()) == 6

    def test_boxplot_stats_empty(self):
        stats = boxplot_stats([])
        assert stats.maximum == 0.0
        assert stats.count == 0

    def test_cdf_points(self):
        points = cdf_points([3.0, 1.0, 2.0])
        assert points == [(1.0, pytest.approx(1 / 3)), (2.0, pytest.approx(2 / 3)), (3.0, 1.0)]
        assert cdf_points([]) == []

    def test_fraction_below(self):
        data = [1.0, 2.0, 3.0, 4.0]
        assert fraction_below(data, 2.5) == 0.5
        assert fraction_below(data, 0.0) == 0.0
        assert fraction_below([], 1.0) == 0.0

    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0


class TestReporting:
    def test_format_table_alignment(self):
        table = format_table(
            ["name", "value"],
            [["relaxation", 0.123456], ["cost scaling", 12.0]],
        )
        lines = table.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("name")
        assert "relaxation" in lines[2]
        assert "0.1235" in lines[2]

    def test_format_series(self):
        text = format_series("runtime", [(100, 0.5), (200, 1.5)])
        assert "runtime:" in text
        assert "100 -> 0.5" in text

    def test_format_cdf(self):
        text = format_cdf("latency", [1.0, 2.0, 3.0, 4.0], points=4)
        assert "latency (n=4):" in text
        assert "p100.0" in text

    def test_format_cdf_empty(self):
        assert "no samples" in format_cdf("latency", [])
