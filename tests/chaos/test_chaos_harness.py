"""Chaos-injection harness: round deadlines, degradation, and recovery.

The suite drives the self-healing round pipeline under every fault class
of :mod:`repro.chaos` and asserts the robustness contract: a run always
completes (degraded rounds are recorded, never stalled), solver-fault
rounds produce the same answers as a fault-free oracle, and with a round
deadline set every round finishes within budget plus the watchdog period
or is recorded degraded with its epsilon-optimality validated.
"""

from __future__ import annotations

import time

import pytest

from repro.chaos import FAULT_KINDS, ChaosPolicy, corrupt_residual_potentials
from repro.core import FirmamentScheduler, QuincyPolicy
from repro.flow.changes import ChangeBatch
from repro.flow.validation import (
    check_feasibility,
    check_residual_epsilon_optimality,
)
from repro.simulation.simulator import ClusterSimulator, SimulationConfig
from repro.solvers import (
    CostScalingSolver,
    DualAlgorithmExecutor,
    IncrementalCostScalingSolver,
    ParallelDualExecutor,
    RoundDeadline,
    RoundDeadlineExceeded,
    SolveAborted,
    WorkerCircuitBreaker,
)
from repro.solvers.base import DEFAULT_WATCHDOG_PERIOD
from tests.conftest import (
    build_scheduling_network,
    make_cluster_state,
    make_job,
    reference_min_cost,
)
from tests.solvers.test_parallel_executor import perturbed_rounds


# --------------------------------------------------------------------- #
# The policy itself
# --------------------------------------------------------------------- #
class TestChaosPolicy:
    def test_seeded_draws_are_deterministic_and_order_independent(self):
        first = ChaosPolicy(seed=11, rates={f: 0.5 for f in FAULT_KINDS})
        second = ChaosPolicy(seed=11, rates={f: 0.5 for f in FAULT_KINDS})
        forward = [
            (f, r, first.fires(f, r)) for f in FAULT_KINDS for r in range(20)
        ]
        # Query the second policy in the reverse order: the draw is keyed
        # on (seed, fault, round), not on call sequence.
        backward = {
            (f, r): second.fires(f, r)
            for f in reversed(FAULT_KINDS)
            for r in reversed(range(20))
        }
        assert all(hit == backward[(f, r)] for f, r, hit in forward)
        assert first.injected == second.injected
        assert first.total_injected > 0

    def test_different_seeds_differ(self):
        rates = {"worker_kill": 0.5}
        a = ChaosPolicy(seed=1, rates=rates)
        b = ChaosPolicy(seed=2, rates=rates)
        assert [a.fires("worker_kill", r) for r in range(64)] != [
            b.fires("worker_kill", r) for r in range(64)
        ]

    def test_schedule_fires_exactly_and_counts(self):
        policy = ChaosPolicy(schedule={"pipe_break": [2, 5], "chain_break": [3]})
        fired = [
            (fault, r)
            for r in range(8)
            for fault in ("pipe_break", "chain_break")
            if policy.fires(fault, r)
        ]
        assert fired == [("pipe_break", 2), ("chain_break", 3), ("pipe_break", 5)]
        assert policy.injected == {"pipe_break": 2, "chain_break": 1}
        assert policy.injected_rounds == {
            "pipe_break": [2, 5],
            "chain_break": [3],
        }
        assert policy.total_injected == 3
        policy.reset_counters()
        assert policy.total_injected == 0

    def test_arms_and_validation(self):
        policy = ChaosPolicy(rates={"worker_delay": 0.1})
        assert policy.arms("worker_delay")
        assert not policy.arms("worker_kill")
        with pytest.raises(ValueError):
            ChaosPolicy(rates={"bogus_fault": 0.5})
        with pytest.raises(ValueError):
            ChaosPolicy(schedule={"bogus_fault": [1]})
        with pytest.raises(ValueError):
            ChaosPolicy(rates={"worker_kill": 1.5})
        with pytest.raises(ValueError):
            ChaosPolicy(delay_seconds=-1.0)
        with pytest.raises(ValueError):
            policy.fires("bogus_fault", 0)


# --------------------------------------------------------------------- #
# Round deadlines and graceful degradation
# --------------------------------------------------------------------- #
class TestRoundDeadline:
    def test_deadline_clock_and_validation(self):
        fake_now = [0.0]
        deadline = RoundDeadline(1.0, watchdog_period=0.5, clock=lambda: fake_now[0])
        assert not deadline.expired() and not deadline.hard_expired()
        fake_now[0] = 1.1
        assert deadline.expired() and not deadline.hard_expired()
        fake_now[0] = 1.6
        assert deadline.hard_expired()
        assert deadline() is True  # __call__ aliases hard_expired
        with pytest.raises(ValueError):
            RoundDeadline(0.0)
        with pytest.raises(ValueError):
            RoundDeadline(1.0, watchdog_period=-0.1)
        # Default watchdog: a quarter of the budget, floored at the global
        # watchdog period.
        assert RoundDeadline(10.0).watchdog_period == pytest.approx(2.5)
        assert RoundDeadline(0.01).watchdog_period == DEFAULT_WATCHDOG_PERIOD

    def test_epsilon_truncation_is_feasible_and_validated(self):
        network = build_scheduling_network(seed=80, num_tasks=12)
        solver = CostScalingSolver()
        solver.deadline_check = lambda: True  # budget exhausted immediately
        result = solver.solve(network)
        # The flow is feasible and epsilon-optimal at the coarser epsilon
        # the ladder stopped at -- degraded, recorded, never a stall.
        assert check_feasibility(network) == []
        assert not result.optimal
        assert result.statistics.deadline_hits == 1
        assert result.statistics.degraded_round == 1
        assert solver.last_degradation is not None
        assert solver.last_degradation["validated"] is True
        assert solver.last_degradation["problems"] == []
        assert solver.last_degradation["epsilon"] >= 1
        assert result.total_cost >= reference_min_cost(network)
        # Without the deadline the same solver is exactly optimal again.
        solver.deadline_check = None
        fresh = build_scheduling_network(seed=80, num_tasks=12)
        assert solver.solve(fresh).total_cost == reference_min_cost(fresh)

    def test_relaxation_ascent_cap_aborts(self):
        executor = DualAlgorithmExecutor(relaxation_ascent_cap=0)
        network = build_scheduling_network(seed=81, num_tasks=10)
        result = executor.solve_detailed(network)
        # The capped relaxation leg died; cost scaling served the round.
        assert result.winner.algorithm != "relaxation"
        assert result.winner.total_cost == reference_min_cost(network)
        assert check_feasibility(network) == []

    def test_no_leg_in_budget_raises_round_deadline_exceeded(self, monkeypatch):
        executor = DualAlgorithmExecutor(round_deadline_seconds=0.05)

        def abort(*args, **kwargs):
            raise SolveAborted("leg killed by test")

        monkeypatch.setattr(executor.relaxation, "solve", abort)
        monkeypatch.setattr(executor.incremental, "solve", abort)
        with pytest.raises(RoundDeadlineExceeded):
            executor.solve_detailed(build_scheduling_network(seed=82))
        assert executor.deadline_exceeded_rounds == 1

    def test_round_wall_clock_bounded_under_deadline(self):
        budget = 0.2
        instance = ParallelDualExecutor(
            round_deadline_seconds=budget, delta_solo_threshold=0
        )
        watchdog = RoundDeadline(budget).watchdog_period
        try:
            for network, changes, expected in perturbed_rounds(seed=83, rounds=3):
                started = time.perf_counter()
                try:
                    result = instance.solve(network, changes=changes)
                except RoundDeadlineExceeded:
                    result = None
                elapsed = time.perf_counter() - started
                # Budget + watchdog is the contract; the extra slack only
                # absorbs CI scheduling jitter around the abort polls.
                assert elapsed <= budget + watchdog + 0.5
                if result is not None and result.optimal:
                    assert result.total_cost == expected
        finally:
            instance.close()


class TestSchedulerDegradation:
    class _DeadlineStubSolver:
        """Solver stub whose every solve blows the round budget."""

        accepts_change_batches = False
        round_deadline_seconds = None

        def solve(self, network, changes=None):
            raise RoundDeadlineExceeded("stubbed: no leg finished in budget")

    def test_degraded_round_reuses_previous_placements(self):
        state = make_cluster_state(num_machines=4, slots_per_machine=2)
        healthy = FirmamentScheduler(QuincyPolicy())
        state.submit_job(make_job(job_id=1, num_tasks=3, submit_time=0.0))
        healthy.schedule_and_apply(state, now=0.0)
        running_before = {
            t.task_id: t.machine_id for t in state.tasks.values() if t.is_running
        }
        assert running_before  # the healthy round placed tasks

        # A second job arrives, but now every solve blows the budget.
        degraded_scheduler = FirmamentScheduler(
            QuincyPolicy(),
            solver=self._DeadlineStubSolver(),
            round_deadline_seconds=0.001,
        )
        state.submit_job(make_job(job_id=2, num_tasks=2, submit_time=1.0))
        decision = degraded_scheduler.schedule(state, now=1.0)
        assert decision.degraded is True
        assert decision.degraded_reason == "round_deadline"
        # Previous feasible placements are reused: nothing moves, nothing
        # is preempted, the new tasks simply wait a round.
        assert decision.placements == {}
        assert decision.migrations == {}
        assert decision.preemptions == []
        assert set(decision.unscheduled) == {2000, 2001}
        degraded_scheduler.apply(state, decision, now=1.0)
        running_after = {
            t.task_id: t.machine_id for t in state.tasks.values() if t.is_running
        }
        assert running_after == running_before
        assert degraded_scheduler.statistics.degraded_rounds == 1
        assert degraded_scheduler.statistics.deadline_abandoned_rounds == 1

    def test_epsilon_truncated_round_is_marked_degraded(self, monkeypatch):
        state = make_cluster_state(num_machines=4, slots_per_machine=2)
        scheduler = FirmamentScheduler(QuincyPolicy())
        # Kill the relaxation leg and exhaust the cost-scaling budget at
        # once, so the round is deterministically served by a truncated
        # (feasible, coarser-epsilon) cost-scaling result.
        def abort(*args, **kwargs):
            raise SolveAborted("leg killed by test")

        monkeypatch.setattr(scheduler.solver.relaxation, "solve", abort)
        scheduler.solver.incremental.deadline_check = lambda: True
        state.submit_job(make_job(job_id=1, num_tasks=3, submit_time=0.0))
        decision = scheduler.schedule(state, now=0.0)
        assert decision.solver_result.algorithm != "relaxation"
        assert len(decision.placements) == 3
        assert decision.degraded is True
        assert decision.degraded_reason == "epsilon_truncated"
        assert scheduler.statistics.degraded_rounds == 1
        assert scheduler.statistics.deadline_abandoned_rounds == 0

    def test_deadline_requires_capable_solver(self):
        with pytest.raises(ValueError, match="deadline"):
            FirmamentScheduler(
                QuincyPolicy(),
                solver=CostScalingSolver(),
                round_deadline_seconds=1.0,
            )


# --------------------------------------------------------------------- #
# Solver-state faults: revision-chain breaks and residual corruption
# --------------------------------------------------------------------- #
class TestSolverStateFaults:
    def test_chain_break_forces_recovery_and_stays_optimal(self):
        chaos = ChaosPolicy(schedule={"chain_break": [1, 3]})
        scheduler = FirmamentScheduler(QuincyPolicy(), chaos=chaos)
        state = make_cluster_state(num_machines=6, slots_per_machine=2)
        try:
            for round_index in range(5):
                state.submit_job(
                    make_job(
                        job_id=round_index + 1,
                        num_tasks=2,
                        submit_time=float(round_index),
                    )
                )
                decision = scheduler.schedule_and_apply(state, now=float(round_index))
                assert len(decision.placements) == 2
                assert check_feasibility(scheduler.last_network) == []
            assert scheduler.graph_manager.chain_breaks_injected == 2
            assert chaos.injected.get("chain_break") == 2
        finally:
            scheduler.close()

    def test_corrupt_residual_potentials_violates_zero_optimality(self):
        solver = IncrementalCostScalingSolver()
        network = build_scheduling_network(seed=84, num_tasks=10)
        solver.solve(network)
        residual = solver.persistent_residual
        assert residual is not None
        assert check_residual_epsilon_optimality(residual, 0) == []
        assert corrupt_residual_potentials(residual, seed=3) is True
        assert check_residual_epsilon_optimality(residual, 0) != []

    def test_residual_corruption_is_caught_and_rebuilt(self, monkeypatch):
        chaos = ChaosPolicy(schedule={"residual_corruption": [1, 3]})
        executor = DualAlgorithmExecutor(chaos=chaos)
        # Kill the relaxation leg so the incremental leg serves (and its
        # persistent residual survives) every round -- which leg wins the
        # modeled race is wall-clock-dependent, and a relaxation win would
        # leave no residual for the corruption to land in.
        def abort(*args, **kwargs):
            raise SolveAborted("leg killed by test")

        monkeypatch.setattr(executor.relaxation, "solve", abort)
        for network, changes, expected in perturbed_rounds(seed=85, rounds=4):
            result = executor.solve(network, changes=changes)
            assert result.total_cost == expected
            assert check_feasibility(network) == []
        # Both injected corruptions were delivered into a live residual,
        # caught by the pre-delta validation, and recovered from by warm
        # rebuild -- placement quality never moved.
        assert chaos.injected.get("residual_corruption") == 2
        assert executor.incremental.residual_validation_failures == 2


# --------------------------------------------------------------------- #
# Fault-free oracle equivalence under transport faults
# --------------------------------------------------------------------- #
class TestFaultOracle:
    def test_pipe_breaks_every_round_match_fault_free_flows(self):
        # Break the pipe under every single ship: the worker never
        # participates, so the parent-side incremental solver must produce
        # *exactly* the flows of an identically-configured solo solver fed
        # the same change batches -- not just the same cost.
        chaos = ChaosPolicy(schedule={"pipe_break": range(16)})
        breaker = WorkerCircuitBreaker(
            failure_threshold=10**9, backoff_max_rounds=0
        )
        instance = ParallelDualExecutor(
            chaos=chaos, breaker=breaker, delta_solo_threshold=0
        )
        oracle = IncrementalCostScalingSolver(price_refine="auto")
        try:
            for network, changes, expected in perturbed_rounds(seed=86, rounds=5):
                chaotic = instance.solve(network, changes=changes)
                reference = oracle.solve(network, changes=changes)
                assert chaotic.algorithm == reference.algorithm
                assert chaotic.total_cost == expected
                assert chaotic.flows == reference.flows
            assert chaos.injected.get("pipe_break") == 6
            assert instance.fallback_rounds == 0
            assert instance.breaker.is_closed
            assert instance.worker_respawns >= 5
        finally:
            instance.close()

    def test_mixed_fault_storm_stays_optimal_with_matching_counters(self):
        schedule = {
            "worker_kill": [1, 4],
            "corrupt_message": [2],
            "worker_delay": [3],
        }
        chaos = ChaosPolicy(schedule=schedule, delay_seconds=0.01)
        instance = ParallelDualExecutor(chaos=chaos, delta_solo_threshold=0)
        try:
            for network, changes, expected in perturbed_rounds(seed=87, rounds=6):
                result = instance.solve(network, changes=changes)
                assert result.total_cost == expected
                assert check_feasibility(network) == []
            # Every delivered fault is recorded against the round it hit
            # (rounds where the worker sat out deliver nothing, so compare
            # against the policy's own injection log, not the schedule).
            for fault, rounds in chaos.injected_rounds.items():
                assert set(rounds) <= set(schedule[fault])
            assert instance.fallback_rounds == 0
            assert instance.breaker.is_closed
        finally:
            instance.close()


# --------------------------------------------------------------------- #
# Fig14-style closed-loop simulations under each fault class
# --------------------------------------------------------------------- #
def run_chaos_simulation(fault: str):
    chaos = ChaosPolicy(seed=13, rates={fault: 0.6}, delay_seconds=0.01)
    state = make_cluster_state(num_machines=6, slots_per_machine=2)
    # delta_solo_threshold=0 consults the worker every round, so the
    # worker-transport fault classes actually get a chance to fire in a
    # short simulation (solo rounds never touch the pipe).
    solver = ParallelDualExecutor(delta_solo_threshold=0)
    scheduler = FirmamentScheduler(QuincyPolicy(), solver=solver, chaos=chaos)
    simulator = ClusterSimulator(state, scheduler, SimulationConfig(max_time=60.0))
    for job_id in range(1, 4):
        simulator.submit_job(
            make_job(
                job_id=job_id,
                num_tasks=4,
                duration=6.0,
                submit_time=float(job_id - 1) * 3.0,
            )
        )
    try:
        result = simulator.run()
    finally:
        simulator.close()
    return result, chaos


class TestChaosSimulation:
    @pytest.mark.parametrize("fault", FAULT_KINDS)
    def test_simulation_completes_under_each_fault_class(self, fault):
        result, chaos = run_chaos_simulation(fault)
        metrics = result.metrics
        # The run completes: every task placed and finished, zero rounds
        # unserved, no stall regardless of the injected fault class.
        assert metrics.tasks_placed == 12
        assert metrics.tasks_completed == 12
        assert metrics.tasks_unplaced == 0
        assert len(result.schedule_records) >= 1
        # No deadline was configured, so no round may report degradation.
        assert metrics.degraded_round_count() == 0
        assert sum(metrics.deadline_hits) == 0

    def test_worker_kill_simulation_actually_injected_and_recovered(self):
        # Deterministic variant: kill the worker on the first round and keep
        # the breaker pinned closed, so a respawn is guaranteed at the next
        # consulted round no matter how the SIGTERM races the reply.
        chaos = ChaosPolicy(schedule={"worker_kill": [0]})
        state = make_cluster_state(num_machines=6, slots_per_machine=2)
        solver = ParallelDualExecutor(
            breaker=WorkerCircuitBreaker(
                failure_threshold=10**9, backoff_max_rounds=0
            ),
            delta_solo_threshold=0,
        )
        scheduler = FirmamentScheduler(QuincyPolicy(), solver=solver, chaos=chaos)
        simulator = ClusterSimulator(state, scheduler, SimulationConfig(max_time=60.0))
        for job_id in range(1, 4):
            simulator.submit_job(
                make_job(
                    job_id=job_id,
                    num_tasks=4,
                    duration=6.0,
                    submit_time=float(job_id - 1) * 3.0,
                )
            )
        try:
            result = simulator.run()
            assert chaos.injected.get("worker_kill", 0) == 1
            assert result.metrics.tasks_unplaced == 0
            assert result.metrics.tasks_completed == 12
            assert solver.fallback_rounds == 0
            # The respawn counters thread through ScheduleRecord into
            # MetricsSummary verbatim.
            assert result.metrics.worker_respawns == [
                r.worker_respawns for r in result.schedule_records
            ]
            assert result.metrics.breaker_open_rounds == [
                r.breaker_open for r in result.schedule_records
            ]
            if result.metrics.total_worker_respawns() == 0:
                # The simulation's few scheduler rounds can all land inside
                # the few-ms window before the SIGTERM'd worker is
                # observably dead.  The recovery contract is "the next
                # consulted round after the death is observable respawns":
                # wait the death out and drive one more round.
                if solver._process is not None:
                    solver._process.join(timeout=5.0)
                state.submit_job(make_job(job_id=9, num_tasks=2, submit_time=50.0))
                scheduler.schedule_and_apply(state, now=50.0)
            assert solver.worker_respawns >= 1
            assert solver.breaker.is_closed
        finally:
            simulator.close()

    def test_deadline_simulation_records_rounds_in_budget_or_degraded(self):
        budget = 0.25
        state = make_cluster_state(num_machines=6, slots_per_machine=2)
        scheduler = FirmamentScheduler(
            QuincyPolicy(), executor="sequential", round_deadline_seconds=budget
        )
        simulator = ClusterSimulator(
            state, scheduler, SimulationConfig(max_time=60.0)
        )
        for job_id in range(1, 4):
            simulator.submit_job(
                make_job(job_id=job_id, num_tasks=4, duration=6.0, submit_time=0.0)
            )
        try:
            result = simulator.run()
        finally:
            simulator.close()
        assert result.metrics.tasks_unplaced == 0
        assert result.metrics.tasks_completed == 12
        watchdog = RoundDeadline(budget).watchdog_period
        for record in result.schedule_records:
            # Every round finished within budget + watchdog or was
            # recorded degraded -- never silently late, never a stall.
            assert (
                record.algorithm_runtime <= budget + watchdog
                or record.degraded_round == 1
            )
        assert result.metrics.degraded_rounds == [
            r.degraded_round for r in result.schedule_records
        ]
