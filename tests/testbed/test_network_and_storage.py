"""Unit tests for the flow-level network model and the HDFS storage model."""

import pytest

from repro.testbed.network import BackgroundFlow, FlowLevelNetwork, TransferRequest
from repro.testbed.storage import HdfsStorage


class TestFlowLevelNetwork:
    def test_single_transfer_runs_at_line_rate(self):
        network = FlowLevelNetwork([0, 1], nic_capacity_mbps=10_000)
        transfers = [TransferRequest(transfer_id=1, dst=0, size_gb=5.0, start_time=0.0)]
        completion = network.simulate_transfers(transfers)
        expected = 5.0 * FlowLevelNetwork.MBITS_PER_GB / 10_000
        assert completion[1] == pytest.approx(expected, rel=1e-3)

    def test_two_transfers_share_the_destination_nic(self):
        network = FlowLevelNetwork([0], nic_capacity_mbps=10_000)
        transfers = [
            TransferRequest(transfer_id=1, dst=0, size_gb=5.0, start_time=0.0),
            TransferRequest(transfer_id=2, dst=0, size_gb=5.0, start_time=0.0),
        ]
        completion = network.simulate_transfers(transfers)
        expected_alone = 5.0 * FlowLevelNetwork.MBITS_PER_GB / 10_000
        # Both finish in roughly twice the isolated time.
        assert completion[1] == pytest.approx(2 * expected_alone, rel=1e-2)
        assert completion[2] == pytest.approx(2 * expected_alone, rel=1e-2)

    def test_transfers_on_different_machines_do_not_interfere(self):
        network = FlowLevelNetwork([0, 1], nic_capacity_mbps=10_000)
        transfers = [
            TransferRequest(transfer_id=1, dst=0, size_gb=5.0, start_time=0.0),
            TransferRequest(transfer_id=2, dst=1, size_gb=5.0, start_time=0.0),
        ]
        completion = network.simulate_transfers(transfers)
        expected = 5.0 * FlowLevelNetwork.MBITS_PER_GB / 10_000
        assert completion[1] == pytest.approx(expected, rel=1e-3)
        assert completion[2] == pytest.approx(expected, rel=1e-3)

    def test_late_arrival_slows_down_the_first_transfer(self):
        network = FlowLevelNetwork([0], nic_capacity_mbps=10_000)
        alone = network.simulate_transfers(
            [TransferRequest(transfer_id=1, dst=0, size_gb=8.0, start_time=0.0)]
        )[1]
        shared = network.simulate_transfers(
            [
                TransferRequest(transfer_id=1, dst=0, size_gb=8.0, start_time=0.0),
                TransferRequest(transfer_id=2, dst=0, size_gb=8.0, start_time=1.0),
            ]
        )[1]
        assert shared > alone

    def test_background_flow_reduces_available_bandwidth(self):
        network = FlowLevelNetwork([0, 1], nic_capacity_mbps=10_000)
        network.add_background_flow(BackgroundFlow(src=1, dst=0, demand_mbps=8_000))
        assert network.background_ingress_mbps(0) == pytest.approx(8_000)
        assert network.background_egress_mbps(1) == pytest.approx(8_000)
        completion = network.simulate_transfers(
            [TransferRequest(transfer_id=1, dst=0, size_gb=2.0, start_time=0.0)]
        )
        expected = 2.0 * FlowLevelNetwork.MBITS_PER_GB / 2_000
        assert completion[1] == pytest.approx(expected, rel=1e-2)

    def test_background_flows_share_fairly_among_themselves(self):
        network = FlowLevelNetwork([0, 1, 2], nic_capacity_mbps=10_000)
        network.add_background_flow(BackgroundFlow(src=1, dst=0, demand_mbps=8_000))
        network.add_background_flow(BackgroundFlow(src=2, dst=0, demand_mbps=8_000))
        # Two 8 Gb/s demands into one 10 Gb/s NIC: they cannot both get 8.
        ingress = network.background_ingress_mbps(0)
        assert ingress <= 10_000 + 1e-6
        assert ingress > 9_000

    def test_zero_size_transfer_completes_instantly(self):
        network = FlowLevelNetwork([0])
        completion = network.simulate_transfers(
            [TransferRequest(transfer_id=1, dst=0, size_gb=0.0, start_time=3.0)]
        )
        assert completion[1] == 3.0

    def test_fully_saturated_machine_still_terminates(self):
        network = FlowLevelNetwork([0, 1], nic_capacity_mbps=1_000)
        network.add_background_flow(BackgroundFlow(src=1, dst=0, demand_mbps=1_000))
        completion = network.simulate_transfers(
            [TransferRequest(transfer_id=1, dst=0, size_gb=0.001, start_time=0.0)]
        )
        assert 1 in completion

    def test_empty_transfer_list(self):
        network = FlowLevelNetwork([0])
        assert network.simulate_transfers([]) == {}


class TestHdfsStorage:
    def test_store_input_places_blocks_with_replication(self):
        storage = HdfsStorage(list(range(10)), block_size_gb=1.0, replication=3, seed=1)
        stored = storage.store_input(4.0)
        assert stored.num_blocks == 4
        for replicas in stored.block_replicas:
            assert len(replicas) == 3
            assert len(set(replicas)) == 3

    def test_locality_fractions_sum_to_replication(self):
        storage = HdfsStorage(list(range(20)), block_size_gb=0.5, replication=3, seed=2)
        stored = storage.store_input(6.0)
        fractions = stored.locality_fractions()
        assert sum(fractions.values()) == pytest.approx(3.0, rel=1e-6)
        assert all(0 < f <= 1.0 for f in fractions.values())

    def test_remote_gb(self):
        storage = HdfsStorage([0, 1, 2], block_size_gb=1.0, replication=3, seed=3)
        stored = storage.store_input(3.0)
        # With three machines and three replicas, every machine holds every
        # block, so nothing is remote.
        for machine in (0, 1, 2):
            assert storage.remote_gb(stored.input_id, machine) == pytest.approx(0.0)
        assert storage.remote_gb(stored.input_id, 99) == pytest.approx(3.0)

    def test_replication_capped_by_cluster_size(self):
        storage = HdfsStorage([0, 1], replication=3)
        stored = storage.store_input(1.0)
        assert all(len(r) == 2 for r in stored.block_replicas)

    def test_input_lookup_and_validation(self):
        storage = HdfsStorage([0, 1, 2, 3])
        stored = storage.store_input(2.0, input_id=77)
        assert storage.input(77) is stored
        with pytest.raises(ValueError):
            storage.store_input(0.0)
        with pytest.raises(ValueError):
            HdfsStorage([])
