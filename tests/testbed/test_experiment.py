"""Integration tests for the Section 7.5 testbed experiment."""

import pytest

from repro.baselines import SparrowScheduler, SwarmKitScheduler
from repro.core import FirmamentScheduler, NetworkAwarePolicy
from repro.testbed.experiment import TestbedConfig, TestbedExperiment
from repro.testbed.workload import (
    make_batch_analytics_jobs,
    make_iperf_background,
    make_nginx_background,
)
from repro.testbed.storage import HdfsStorage


SMALL_CONFIG = TestbedConfig(num_jobs=6, tasks_per_job=6, with_background=False)
BG_CONFIG = TestbedConfig(num_jobs=6, tasks_per_job=6, with_background=True)


def firmament():
    return FirmamentScheduler(NetworkAwarePolicy(), allow_migrations=False)


class TestWorkloadBuilders:
    def test_batch_analytics_jobs_are_deterministic(self):
        storage_a = HdfsStorage(list(range(40)), seed=5)
        storage_b = HdfsStorage(list(range(40)), seed=5)
        jobs_a, compute_a = make_batch_analytics_jobs(storage_a, num_jobs=3, seed=5)
        jobs_b, compute_b = make_batch_analytics_jobs(storage_b, num_jobs=3, seed=5)
        assert compute_a == compute_b
        assert [t.input_size_gb for j in jobs_a for t in j.tasks] == [
            t.input_size_gb for j in jobs_b for t in j.tasks
        ]

    def test_batch_analytics_inputs_in_range(self):
        storage = HdfsStorage(list(range(40)), seed=6)
        jobs, compute = make_batch_analytics_jobs(storage, num_jobs=4, seed=6)
        for job in jobs:
            for task in job.tasks:
                assert 4.0 <= task.input_size_gb <= 8.0
                assert task.input_locality
                assert 0.4 <= compute[task.task_id] <= 1.0

    def test_iperf_background_layout(self):
        flows = make_iperf_background(list(range(40)), num_clients=14, num_servers=7)
        assert len(flows) == 14
        sources = {f.src for f in flows}
        destinations = {f.dst for f in flows}
        assert len(sources) == 14
        assert len(destinations) == 7
        assert sources.isdisjoint(destinations)
        assert all(f.demand_mbps == 4_000 for f in flows)

    def test_iperf_background_requires_enough_machines(self):
        with pytest.raises(ValueError):
            make_iperf_background(list(range(10)), num_clients=14, num_servers=7)

    def test_nginx_background_layout(self):
        flows = make_nginx_background(list(range(40)), num_servers=3, num_clients=7)
        assert len(flows) == 7
        assert len({f.src for f in flows}) == 3


class TestExperimentRuns:
    def test_idle_baseline_matches_line_rate(self):
        experiment = TestbedExperiment(SMALL_CONFIG)
        result = experiment.run_idle_baseline()
        assert len(result.response_times) == 36
        # 4-8 GB at 10 Gb/s plus up to 1 s compute: roughly 3.6-7.7 s.
        assert 3.0 < result.percentile(50) < 8.0

    def test_every_scheduler_places_all_tasks(self):
        experiment = TestbedExperiment(SMALL_CONFIG)
        for scheduler, name in [
            (firmament(), "firmament"),
            (SparrowScheduler(), "sparrow"),
            (SwarmKitScheduler(), "swarmkit"),
        ]:
            result = experiment.run_with_scheduler(scheduler, name)
            assert result.scheduler_name == name
            assert result.unplaced_tasks == 0
            assert len(result.response_times) == 36
            assert all(r > 0 for r in result.response_times)

    def test_response_times_never_beat_the_idle_baseline_median(self):
        experiment = TestbedExperiment(SMALL_CONFIG)
        idle = experiment.run_idle_baseline()
        scheduled = experiment.run_with_scheduler(firmament(), "firmament")
        # Individual tasks can do better than the *average* idle task (they
        # may read mostly local data), but the medians should be comparable
        # and scheduled runs can only add contention, not remove work.
        assert scheduled.percentile(50) >= idle.percentile(50) * 0.7

    def test_network_aware_policy_beats_random_placement_under_background_load(self):
        experiment = TestbedExperiment(BG_CONFIG)
        network_aware = experiment.run_with_scheduler(firmament(), "firmament")
        random_placement = experiment.run_with_scheduler(
            SparrowScheduler(sample_size=1), "sparrow"
        )
        # The tail is where network-aware placement pays off (Figure 19b).
        assert network_aware.percentile(95) < random_placement.percentile(95)

    def test_background_traffic_inflates_the_tail(self):
        idle_exp = TestbedExperiment(SMALL_CONFIG)
        bg_exp = TestbedExperiment(BG_CONFIG)
        idle_run = idle_exp.run_with_scheduler(SparrowScheduler(seed=7), "sparrow")
        bg_run = bg_exp.run_with_scheduler(SparrowScheduler(seed=7), "sparrow")
        assert bg_run.percentile(99) > idle_run.percentile(99)

    def test_runs_are_reproducible(self):
        experiment = TestbedExperiment(SMALL_CONFIG)
        first = experiment.run_with_scheduler(SwarmKitScheduler(), "swarmkit")
        second = experiment.run_with_scheduler(SwarmKitScheduler(), "swarmkit")
        assert first.response_times == second.response_times
        assert first.placements == second.placements
