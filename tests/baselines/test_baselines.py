"""Unit tests for the queue-based comparator schedulers."""

import pytest

from repro.baselines import (
    KubernetesScheduler,
    MesosScheduler,
    SparrowScheduler,
    SwarmKitScheduler,
    make_quincy_scheduler,
)
from repro.core.scheduler import FirmamentScheduler
from repro.solvers.cost_scaling import CostScalingSolver
from tests.conftest import make_cluster_state, make_job

ALL_BASELINES = [SparrowScheduler, SwarmKitScheduler, KubernetesScheduler, MesosScheduler]


@pytest.mark.parametrize("scheduler_class", ALL_BASELINES)
class TestCommonBehaviour:
    def test_places_all_tasks_when_capacity_allows(self, scheduler_class, small_state):
        small_state.submit_job(make_job(job_id=1, num_tasks=6))
        scheduler = scheduler_class()
        decision = scheduler.schedule_and_apply(small_state, now=0.0)
        assert len(decision.placements) == 6
        assert decision.unscheduled == []
        assert scheduler.tasks_scheduled == 6
        assert scheduler.runs == 1

    def test_never_overcommits_slots(self, scheduler_class):
        state = make_cluster_state(num_machines=2, slots_per_machine=2)
        state.submit_job(make_job(job_id=1, num_tasks=10))
        scheduler = scheduler_class()
        decision = scheduler.schedule_and_apply(state, now=0.0)
        assert len(decision.placements) == 4
        assert len(decision.unscheduled) == 6
        for machine_id in state.topology.machines:
            assert state.task_count_on_machine(machine_id) <= 2

    def test_per_task_latency_is_monotone_in_queue_position(self, scheduler_class, small_state):
        small_state.submit_job(make_job(job_id=1, num_tasks=4))
        scheduler = scheduler_class(per_task_decision_seconds=0.01)
        decision = scheduler.schedule(small_state, now=0.0)
        latencies = [decision.per_task_latency[t] for t in sorted(decision.per_task_latency)]
        assert latencies == sorted(latencies)
        assert decision.algorithm_runtime == pytest.approx(0.04)

    def test_skips_failed_machines(self, scheduler_class):
        state = make_cluster_state(num_machines=2, slots_per_machine=4)
        state.topology.machine(0).fail()
        state.submit_job(make_job(job_id=1, num_tasks=3))
        decision = scheduler_class().schedule_and_apply(state, now=0.0)
        assert set(decision.placements.values()) == {1}

    def test_never_migrates_or_preempts(self, scheduler_class, loaded_state):
        loaded_state.submit_job(make_job(job_id=2, num_tasks=2))
        decision = scheduler_class().schedule(loaded_state, now=1.0)
        assert decision.migrations == {}
        assert decision.preemptions == []


class TestSparrow:
    def test_sample_size_validation(self):
        with pytest.raises(ValueError):
            SparrowScheduler(sample_size=0)

    def test_probes_limit_choice_quality(self):
        """With a single probe, Sparrow is blind to load and piles tasks onto
        whatever machine it sampled; with many probes it behaves like a
        global least-loaded scheduler."""
        state = make_cluster_state(num_machines=8, slots_per_machine=8)
        state.submit_job(make_job(job_id=1, num_tasks=16))
        wide = SparrowScheduler(sample_size=8, seed=1)
        decision = wide.schedule_and_apply(state, now=0.0)
        counts = [state.task_count_on_machine(m) for m in range(8)]
        assert max(counts) - min(counts) <= 1

    def test_deterministic_given_seed(self, small_state):
        small_state.submit_job(make_job(job_id=1, num_tasks=5))
        first = SparrowScheduler(seed=3).schedule(small_state, now=0.0)
        second = SparrowScheduler(seed=3).schedule(small_state, now=0.0)
        assert first.placements == second.placements


class TestSwarmKit:
    def test_spreads_by_task_count(self):
        state = make_cluster_state(num_machines=4, slots_per_machine=4)
        state.submit_job(make_job(job_id=1, num_tasks=8))
        SwarmKitScheduler().schedule_and_apply(state, now=0.0)
        counts = [state.task_count_on_machine(m) for m in range(4)]
        assert max(counts) - min(counts) <= 1

    def test_prefers_less_loaded_machine(self):
        state = make_cluster_state(num_machines=2, slots_per_machine=4)
        seed_job = make_job(job_id=1, num_tasks=2)
        state.submit_job(seed_job)
        state.place_task(seed_job.tasks[0].task_id, 0, 0.0)
        state.place_task(seed_job.tasks[1].task_id, 0, 0.0)
        new_job = make_job(job_id=2, num_tasks=1)
        state.submit_job(new_job)
        decision = SwarmKitScheduler().schedule(state, now=0.0)
        assert decision.placements[new_job.tasks[0].task_id] == 1


class TestKubernetes:
    def test_least_requested_prefers_empty_machines(self):
        state = make_cluster_state(num_machines=2, slots_per_machine=4)
        seed_job = make_job(job_id=1, num_tasks=3)
        state.submit_job(seed_job)
        for task in seed_job.tasks:
            state.place_task(task.task_id, 0, 0.0)
        new_job = make_job(job_id=2, num_tasks=1)
        state.submit_job(new_job)
        decision = KubernetesScheduler().schedule(state, now=0.0)
        assert decision.placements[new_job.tasks[0].task_id] == 1

    def test_score_is_higher_for_emptier_machine(self, small_state):
        job = make_job(job_id=1, num_tasks=1)
        small_state.submit_job(job)
        seed_job = make_job(job_id=2, num_tasks=2)
        small_state.submit_job(seed_job)
        small_state.place_task(seed_job.tasks[0].task_id, 0, 0.0)
        scheduler = KubernetesScheduler()
        machine0 = small_state.topology.machine(0)
        machine1 = small_state.topology.machine(1)
        assert scheduler.score(job.tasks[0], machine1, small_state) > scheduler.score(
            job.tasks[0], machine0, small_state
        )


class TestMesos:
    def test_offer_fraction_validation(self):
        with pytest.raises(ValueError):
            MesosScheduler(offer_fraction=0.0)
        with pytest.raises(ValueError):
            MesosScheduler(offer_fraction=1.5)

    def test_accepts_any_fitting_offer(self, small_state):
        small_state.submit_job(make_job(job_id=1, num_tasks=4))
        decision = MesosScheduler(offer_fraction=1.0).schedule_and_apply(small_state, 0.0)
        assert len(decision.placements) == 4


class TestQuincyFactory:
    def test_returns_cost_scaling_firmament(self):
        scheduler = make_quincy_scheduler()
        assert isinstance(scheduler, FirmamentScheduler)
        assert isinstance(scheduler.solver, CostScalingSolver)
        assert scheduler.policy.name == "quincy"

    def test_alpha_passthrough(self):
        scheduler = make_quincy_scheduler(alpha=9)
        assert scheduler.solver.alpha == 9

    def test_schedules_like_firmament(self, small_state):
        small_state.submit_job(make_job(job_id=1, num_tasks=5))
        decision = make_quincy_scheduler().schedule_and_apply(small_state, now=0.0)
        assert len(decision.placements) == 5
