"""End-to-end integration tests exercising the full stack.

These tests drive the public API exactly like the examples and benchmarks
do: build a cluster, generate a workload, run a scheduler (Firmament with
the dual solver, Quincy, and the queue-based baselines) through the
simulator or testbed harness, and check the high-level invariants the paper
relies on.
"""

import pytest

from repro.baselines import SparrowScheduler, make_quincy_scheduler
from repro.core import FirmamentScheduler, QuincyPolicy
from repro.simulation import (
    ClusterSimulator,
    GoogleTraceGenerator,
    SimulationConfig,
    TraceConfig,
    fill_cluster_to_utilization,
)
from repro.solvers import CostScalingSolver, DualAlgorithmExecutor
from tests.conftest import make_cluster_state, make_job


class TestFirmamentVersusQuincyQuality:
    def test_same_policy_same_flow_cost(self):
        """Firmament (dual solver) and Quincy (cost scaling only) find flows
        of identical cost -- placement quality is preserved (Section 7.2)."""
        def build_state():
            state = make_cluster_state(num_machines=10, machines_per_rack=5,
                                       slots_per_machine=2)
            fill_cluster_to_utilization(state, utilization=0.5)
            state.submit_job(
                make_job(job_id=900, num_tasks=6, input_size_gb=6.0,
                         input_locality={1: 0.4, 5: 0.3})
            )
            return state

        firmament_cost = FirmamentScheduler(QuincyPolicy()).schedule(
            build_state(), now=10.0
        ).total_cost
        quincy_cost = make_quincy_scheduler().schedule(build_state(), now=10.0).total_cost
        assert firmament_cost == quincy_cost

    def test_dual_solver_effective_latency_never_worse_than_components(self):
        state = make_cluster_state(num_machines=12, machines_per_rack=6)
        fill_cluster_to_utilization(state, utilization=0.4)
        state.submit_job(make_job(job_id=900, num_tasks=10))
        scheduler = FirmamentScheduler(QuincyPolicy())
        scheduler.schedule(state, now=0.0)
        detailed = scheduler.solver.last_result
        assert detailed.effective_runtime_seconds <= detailed.relaxation.runtime_seconds
        assert detailed.effective_runtime_seconds <= detailed.cost_scaling.runtime_seconds


class TestTraceReplayEndToEnd:
    @pytest.mark.parametrize("scheduler_factory", [
        lambda: FirmamentScheduler(QuincyPolicy()),
        lambda: make_quincy_scheduler(),
        lambda: SparrowScheduler(),
    ])
    def test_trace_replay_conserves_tasks(self, scheduler_factory):
        """No task is lost or duplicated by any scheduler: every submitted
        batch task is eventually placed exactly once and completes."""
        config = TraceConfig(num_machines=12, slots_per_machine=4,
                             target_utilization=0.4, duration=60.0, seed=17,
                             service_job_fraction=0.0)
        jobs = GoogleTraceGenerator(config).generate()
        total_tasks = sum(j.num_tasks for j in jobs)

        state = make_cluster_state(num_machines=12, machines_per_rack=6,
                                   slots_per_machine=4)
        simulator = ClusterSimulator(
            state, scheduler_factory(), SimulationConfig(max_time=60.0)
        )
        simulator.submit_jobs(jobs)
        result = simulator.run()
        assert result.metrics.tasks_placed == total_tasks
        assert result.metrics.tasks_completed == total_tasks
        assert result.metrics.tasks_unplaced == 0

    def test_slot_capacity_never_violated_during_replay(self):
        config = TraceConfig(num_machines=8, slots_per_machine=2,
                             target_utilization=0.7, duration=40.0, seed=19)
        state = make_cluster_state(num_machines=8, machines_per_rack=4,
                                   slots_per_machine=2)
        scheduler = FirmamentScheduler(QuincyPolicy())
        simulator = ClusterSimulator(state, scheduler, SimulationConfig(max_time=40.0))
        simulator.submit_jobs(GoogleTraceGenerator(config).generate())
        simulator.run()
        for machine_id in state.topology.machines:
            assert state.task_count_on_machine(machine_id) <= 2


class TestOversubscribedCluster:
    def test_firmament_recovers_when_capacity_frees_up(self):
        """Tasks submitted to a full cluster are placed once earlier tasks
        complete (the demanding situation of Section 7.3, in miniature)."""
        state = make_cluster_state(num_machines=4, slots_per_machine=2)
        running = make_job(job_id=1, num_tasks=8, duration=10.0)
        state.submit_job(running)
        for index, task in enumerate(running.tasks):
            state.place_task(task.task_id, index % 4, now=0.0)

        simulator = ClusterSimulator(
            state, FirmamentScheduler(QuincyPolicy()), SimulationConfig(max_time=100.0)
        )
        simulator.submit_job(make_job(job_id=2, num_tasks=6, duration=5.0, submit_time=1.0))
        result = simulator.run()
        late_job_tasks = [t for t in state.tasks.values() if t.job_id == 2]
        assert all(t.state.value == "completed" for t in late_job_tasks)
        # They could not start before the first wave finished at t=10.
        assert min(t.start_time for t in late_job_tasks) >= 9.0


class TestAlgorithmChoiceAblation:
    def test_configurations_agree_on_cost(self):
        """Relaxation-only, cost-scaling-only, and the dual executor all find
        min-cost flows of the same cost on the same scheduling problem."""
        from repro.solvers import RelaxationSolver

        def build_state():
            state = make_cluster_state(num_machines=10, machines_per_rack=5)
            fill_cluster_to_utilization(state, utilization=0.6)
            state.submit_job(make_job(job_id=500, num_tasks=8))
            return state

        costs = set()
        for solver in (RelaxationSolver(), CostScalingSolver(), DualAlgorithmExecutor()):
            scheduler = FirmamentScheduler(QuincyPolicy(), solver=solver)
            costs.add(scheduler.schedule(build_state(), now=5.0).total_cost)
        assert len(costs) == 1
