"""Dirty-flow journal: O(changed) extraction must equal full extraction."""

from __future__ import annotations

import random

import pytest

from repro.flow.changes import ArcCapacityChange, ArcRemoval, ChangeBatch
from repro.flow.graph import FlowNetwork, NodeType
from repro.solvers.incremental import IncrementalCostScalingSolver
from repro.solvers.residual import ResidualNetwork
from tests.conftest import build_scheduling_network, reference_min_cost
from tests.solvers.equivalence_harness import generate_network, perturb_network


def build_small_network() -> FlowNetwork:
    network = FlowNetwork()
    source = network.add_node(NodeType.TASK, supply=3)
    middle = network.add_node(NodeType.OTHER)
    sink = network.add_node(NodeType.SINK, supply=-3)
    network.add_arc(source.node_id, middle.node_id, 3, 1)
    network.add_arc(middle.node_id, sink.node_id, 3, 1)
    network.add_arc(source.node_id, sink.node_id, 2, 5)
    return network


class TestJournalBookkeeping:
    def test_extraction_primes_journal_and_pushes_maintain_it(self):
        residual = ResidualNetwork(build_small_network())
        assert not residual.flow_journal_active
        assert residual.flows() == {}
        assert residual.flow_journal_active

        # Route two units source -> middle -> sink through journaled pushes.
        position = residual.arc_position[(0, 1)]
        residual.push(2 * position, 2)
        position = residual.arc_position[(1, 2)]
        residual.push(2 * position, 2)
        assert residual.flows() == {(0, 1): 2, (1, 2): 2}
        assert residual.flows() == residual.full_flows()

    def test_zero_flow_entries_are_dropped(self):
        residual = ResidualNetwork(build_small_network())
        residual.flows()
        position = residual.arc_position[(0, 2)]
        residual.push(2 * position, 2)
        assert residual.flows() == {(0, 2): 2}
        # Push back along the reverse residual arc: flow returns to zero and
        # the journaled extraction must drop the entry.
        residual.push(2 * position + 1, 2)
        assert residual.flows() == {}
        assert residual.full_flows() == {}

    def test_invalidation_falls_back_to_full_extraction(self):
        residual = ResidualNetwork(build_small_network())
        residual.flows()
        position = residual.arc_position[(0, 1)]
        residual.push(2 * position, 1)
        residual.invalidate_flow_journal()
        assert not residual.flow_journal_active
        assert residual.flows() == {(0, 1): 1}
        assert residual.flow_journal_active  # re-primed by the full scan

    def test_capacity_clamp_and_arc_removal_update_journal(self):
        network = build_small_network()
        residual = ResidualNetwork(network)
        residual.flows()
        direct = residual.arc_position[(0, 2)]
        residual.push(2 * direct, 2)
        assert residual.flows() == {(0, 2): 2}

        # Clamping capacity below the carried flow must journal the arc.
        residual.apply_changes([ArcCapacityChange(src=0, dst=2, new_capacity=1)])
        assert residual.flows() == {(0, 2): 1}
        assert residual.flows() == residual.full_flows()

        # Removing the arc purges the cached entry.
        residual.apply_changes([ArcRemoval(src=0, dst=2)])
        assert residual.flows() == {}
        assert residual.flows() == residual.full_flows()

    def test_write_flow_back_journal_path_matches_full_path(self):
        network = build_small_network()
        residual = ResidualNetwork(network)
        residual.flows()
        residual.push(2 * residual.arc_position[(0, 1)], 2)
        residual.push(2 * residual.arc_position[(1, 2)], 2)
        residual.push(2 * residual.arc_position[(0, 2)], 1)

        journaled = network.copy()
        assert residual.flow_journal_active
        residual.write_flow_back(journaled)

        full = network.copy()
        residual.invalidate_flow_journal()
        residual.write_flow_back(full)

        for arc in full.arcs():
            assert journaled.arc(arc.src, arc.dst).flow == arc.flow


class TestJournalOnDeltaRounds:
    """The journal-vs-full equivalence guard on the real delta path."""

    def test_incremental_rounds_extract_equivalently(self):
        rng = random.Random(7)
        network = generate_network(rng)
        solver = IncrementalCostScalingSolver()
        changes = None
        for round_index in range(6):
            result = solver.solve(network, changes=changes)
            assert result.total_cost == reference_min_cost(network)
            residual = solver._cost_scaling.last_residual
            assert residual is not None
            # The journal-served extraction must match a journal-bypassing
            # full scan of the same residual, arc for arc.
            assert residual.flows() == residual.full_flows()
            network, changes = perturb_network(rng, network)

    def test_delta_round_is_served_from_journal(self):
        previous = build_scheduling_network(seed=13, num_tasks=8)
        solver = IncrementalCostScalingSolver()
        solver.solve(previous)
        residual = solver._cost_scaling.last_residual
        assert residual is not None and residual.flow_journal_active

        network = previous.copy()
        arc = next(a for a in network.arcs() if a.cost > 0)
        network.set_arc_cost(arc.src, arc.dst, arc.cost + 3)
        network.revision = previous.revision + 1
        changes = ChangeBatch.diff(previous, network)

        result = solver.solve(network, changes=changes)
        assert solver.delta_solves == 1
        # The delta round kept the journal alive (no full-scan fallback) and
        # its extraction equals both the full scan and the oracle.
        residual = solver._cost_scaling.last_residual
        assert residual.flow_journal_active
        assert residual.flows() == residual.full_flows()
        assert result.total_cost == reference_min_cost(network)
