"""Unit tests for the array-based residual network representation."""

import pytest

from repro.flow.graph import FlowNetwork, NodeType
from repro.solvers.residual import ResidualNetwork


def small_network(flow_on_first_arc: int = 0):
    net = FlowNetwork()
    task = net.add_node(NodeType.TASK, supply=1)
    machine = net.add_node(NodeType.MACHINE)
    sink = net.add_node(NodeType.SINK, supply=-1)
    first = net.add_arc(task.node_id, machine.node_id, 2, 5)
    net.add_arc(machine.node_id, sink.node_id, 2, 0)
    first.flow = flow_on_first_arc
    return net, task, machine, sink


class TestConstruction:
    def test_arc_pairing(self):
        net, *_ = small_network()
        residual = ResidualNetwork(net)
        assert residual.num_nodes == 3
        assert residual.num_arcs == 4  # two original arcs, each paired
        for arc_index in range(0, residual.num_arcs, 2):
            assert residual.reverse(arc_index) == arc_index + 1
            assert residual.is_forward(arc_index)
            assert not residual.is_forward(arc_index + 1)

    def test_supplies_become_excesses(self):
        net, task, _, sink = small_network()
        residual = ResidualNetwork(net)
        assert residual.excess[residual.index[task.node_id]] == 1
        assert residual.excess[residual.index[sink.node_id]] == -1
        assert residual.total_excess() == 1
        assert residual.source_indices() == [residual.index[task.node_id]]
        assert residual.deficit_indices() == [residual.index[sink.node_id]]

    def test_warm_start_loads_existing_flow(self):
        net, task, machine, _ = small_network(flow_on_first_arc=1)
        residual = ResidualNetwork(net, use_existing_flow=True)
        task_index = residual.index[task.node_id]
        machine_index = residual.index[machine.node_id]
        # The task's supply has already been pushed one hop.
        assert residual.excess[task_index] == 0
        assert residual.excess[machine_index] == 1
        assert residual.flow_on_forward_arc(0) == 1

    def test_warm_start_rejects_invalid_flow(self):
        net, task, machine, _ = small_network()
        net.arc(task.node_id, machine.node_id).flow = 5  # above capacity
        with pytest.raises(ValueError):
            ResidualNetwork(net, use_existing_flow=True)


class TestOperations:
    def test_push_updates_residuals_and_excesses(self):
        net, task, machine, _ = small_network()
        residual = ResidualNetwork(net)
        residual.push(0, 1)
        assert residual.arc_residual[0] == 1
        assert residual.arc_residual[1] == 1
        assert residual.excess[residual.index[task.node_id]] == 0
        assert residual.excess[residual.index[machine.node_id]] == 1

    def test_push_rejects_overcapacity(self):
        net, *_ = small_network()
        residual = ResidualNetwork(net)
        with pytest.raises(ValueError):
            residual.push(0, 3)

    def test_push_rejects_negative_amount(self):
        net, *_ = small_network()
        residual = ResidualNetwork(net)
        with pytest.raises(ValueError):
            residual.push(0, -1)

    def test_reduced_cost_uses_potentials(self):
        net, task, machine, _ = small_network()
        residual = ResidualNetwork(net)
        assert residual.reduced_cost(0) == 5
        residual.potential[residual.index[task.node_id]] = 5
        assert residual.reduced_cost(0) == 0

    def test_potential_round_trip(self):
        net, task, machine, sink = small_network()
        residual = ResidualNetwork(net)
        residual.load_potentials({task.node_id: 7, machine.node_id: 2})
        exported = residual.export_potentials()
        assert exported[task.node_id] == 7
        assert exported[machine.node_id] == 2
        assert exported[sink.node_id] == 0

    def test_load_potentials_ignores_unknown_nodes(self):
        net, *_ = small_network()
        residual = ResidualNetwork(net)
        residual.load_potentials({999: 5})
        assert all(p == 0 for p in residual.potential)

    def test_write_flow_back_and_cost(self):
        net, task, machine, sink = small_network()
        residual = ResidualNetwork(net)
        residual.push(0, 1)
        residual.push(2, 1)
        residual.write_flow_back(net)
        assert net.arc(task.node_id, machine.node_id).flow == 1
        assert net.arc(machine.node_id, sink.node_id).flow == 1
        assert residual.total_cost() == 5
        assert residual.flows() == {
            (task.node_id, machine.node_id): 1,
            (machine.node_id, sink.node_id): 1,
        }

    def test_max_cost(self):
        net, *_ = small_network()
        residual = ResidualNetwork(net)
        assert residual.max_cost() == 5
