"""Fuzzed reduced-cost-optimality invariant suite for relaxation.

Relaxation's correctness hangs on one state invariant (Table 2 of the
paper): the pseudoflow satisfies *reduced-cost optimality* -- no residual
arc with remaining capacity has negative reduced cost -- before every
internal iteration.  Every dual ascent claims to preserve it (the ascent
delta is the minimum reduced cost leaving the tree) and every augmentation
pushes only along zero-reduced-cost arcs, so a silent violation surfaces
only later as a wrong optimum.  Mirroring the PR 4 epsilon-optimality
harness for cost scaling, this suite makes the invariant *continuously
enforced* under fuzzing:

* An instrumented :class:`RelaxationSolver` (via the solver's
  ``invariant_hook``) asserts reduced-cost optimality -- which for the
  maintained invariant is exactly complementary slackness of the
  pseudoflow -- after **every** dual ascent and augmentation, across
  randomized graphs, warm starts, and multi-round revision-chained change
  batches.
* The typed-array rewrite is pinned against the **old dict/deque-based
  implementation** (embedded below as the reference): both must agree with
  the oracle cost on the equivalence-harness graphs.
* The persistent-residual hand-off is pinned structurally: a patched
  residual must be arc-for-arc equivalent to one freshly built from the
  updated network.
* The worker resync path is pinned against the full-snapshot path: across
  forced chain breaks, a shadow network brought up to date by the
  composed incremental payload must equal the freshly parsed snapshot,
  and the parallel executor must ship *no* full snapshot after the cold
  start on a chained replay.
"""

from __future__ import annotations

import random
from collections import deque

import pytest

from repro.flow.changes import ChangeBatch
from repro.flow.dimacs import read_dimacs, read_incremental, write_dimacs, write_incremental
from repro.flow.graph import FlowNetwork
from repro.flow.validation import assert_epsilon_optimal
from repro.solvers import ParallelDualExecutor, RelaxationSolver, RevisionChainCache
from repro.solvers.base import InfeasibleProblemError
from repro.solvers.residual import ResidualNetwork
from tests.conftest import reference_min_cost
from tests.solvers.equivalence_harness import generate_network, perturb_network

#: Fuzz seeds for the instrumented and old-vs-new sweeps.
SEEDS = range(12)


# --------------------------------------------------------------------- #
# Reference: the pre-rewrite dict/deque relaxation implementation
# --------------------------------------------------------------------- #
class ReferenceRelaxationSolver:
    """The old implementation's algorithm, kept verbatim in spirit: fresh
    residual per solve, whole-tree re-traversal after every dual ascent.

    Deliberately independent of the production solver's internals so a bug
    in the rewrite cannot hide in shared code.
    """

    def solve_cost(self, network: FlowNetwork) -> int:
        residual = ResidualNetwork(network.copy())
        # Restore reduced-cost optimality (negative-cost test graphs).
        for arc_index in range(residual.num_arcs):
            if residual.arc_residual[arc_index] <= 0:
                continue
            if residual.reduced_cost(arc_index) < 0:
                residual.push(arc_index, residual.arc_residual[arc_index])
        max_cost = max(1, residual.max_cost())
        for source in range(residual.num_nodes):
            while residual.excess[source] > 0:
                self._route(residual, source, max_cost)
        return residual.total_cost()

    def _route(self, residual: ResidualNetwork, source: int, max_cost: int) -> None:
        n = residual.num_nodes
        in_tree = [False] * n
        pred_arc = [None] * n
        tree_nodes = [source]
        in_tree[source] = True
        frontier = deque([source])
        target = -1
        guard = 2 * n * max_cost + n + 16

        while target < 0:
            while frontier:
                u = frontier.popleft()
                for arc_index in residual.adjacency[u]:
                    if residual.arc_residual[arc_index] <= 0:
                        continue
                    v = residual.arc_to[arc_index]
                    if in_tree[v] or residual.reduced_cost(arc_index) != 0:
                        continue
                    in_tree[v] = True
                    pred_arc[v] = arc_index
                    tree_nodes.append(v)
                    if residual.excess[v] < 0:
                        target = v
                        break
                    frontier.append(v)
                if target >= 0:
                    break
            if target >= 0:
                break
            delta = None
            for u in tree_nodes:
                for arc_index in residual.adjacency[u]:
                    if residual.arc_residual[arc_index] <= 0:
                        continue
                    if in_tree[residual.arc_to[arc_index]]:
                        continue
                    rc = residual.reduced_cost(arc_index)
                    if delta is None or rc < delta:
                        delta = rc
            if delta is None:
                raise InfeasibleProblemError("no arc leaves the tree")
            for u in tree_nodes:
                residual.potential[u] += max(0, delta)
            guard -= 1
            if guard < 0:
                raise InfeasibleProblemError("ascent did not converge")
            frontier = deque(tree_nodes)

        amount = min(residual.excess[source], -residual.excess[target])
        node = target
        while node != source:
            arc_index = pred_arc[node]
            amount = min(amount, residual.arc_residual[arc_index])
            node = residual.arc_from[arc_index]
        node = target
        while node != source:
            arc_index = pred_arc[node]
            residual.push(arc_index, amount)
            node = residual.arc_from[arc_index]


def make_instrumented_solver(**kwargs) -> RelaxationSolver:
    """A relaxation solver asserting the invariant after every step."""
    solver = RelaxationSolver(**kwargs)

    def check(residual, event):
        assert_epsilon_optimal(residual, 0)

    solver.invariant_hook = check
    return solver


def assert_networks_structurally_equal(left: FlowNetwork, right: FlowNetwork) -> None:
    """Assert equal node sets/supplies and arc sets/capacities/costs."""
    left_nodes = {n.node_id: n.supply for n in left.nodes()}
    right_nodes = {n.node_id: n.supply for n in right.nodes()}
    assert left_nodes == right_nodes
    left_arcs = {a.key(): (a.capacity, a.cost) for a in left.arcs()}
    right_arcs = {a.key(): (a.capacity, a.cost) for a in right.arcs()}
    assert left_arcs == right_arcs


# --------------------------------------------------------------------- #
# Instrumented solver: invariant asserted after every ascent/augmentation
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("seed", SEEDS)
def test_invariant_holds_through_from_scratch_solves(seed):
    rng = random.Random(seed)
    network = generate_network(rng)
    solver = make_instrumented_solver()
    result = solver.solve(network.copy())
    assert result.total_cost == reference_min_cost(network)
    assert result.statistics.augmentations > 0


@pytest.mark.parametrize("seed", SEEDS)
def test_invariant_holds_through_chained_delta_solves(seed):
    """Multi-round churn on the persistent residual keeps the invariant and
    the patched residual stays arc-for-arc equal to a fresh build."""
    rng = random.Random(seed)
    network = generate_network(rng)
    solver = make_instrumented_solver()
    changes = None
    for round_index in range(4):
        expected = reference_min_cost(network)
        result = solver.solve(network.copy(), changes=changes)
        assert result.total_cost == expected, (
            f"seed {seed} round {round_index}: cost {result.total_cost} "
            f"!= oracle {expected}"
        )
        problems = solver.last_residual.consistency_errors(network)
        assert not problems, f"seed {seed} round {round_index}: {problems}"
        network, changes = perturb_network(rng, network)
    assert solver.residual_reuses >= 1


@pytest.mark.parametrize("seed", SEEDS[:6])
def test_invariant_holds_through_warm_starts(seed):
    rng = random.Random(seed)
    network = generate_network(rng)
    solver = make_instrumented_solver()
    first = solver.solve(network.copy())
    changed, _ = perturb_network(rng, network)
    expected = reference_min_cost(changed)
    warm = solver.solve_warm(changed.copy(), first.flows, first.potentials)
    assert warm.total_cost == expected


def test_hook_actually_fires():
    """The instrumentation is not a no-op: a broken invariant is caught."""
    rng = random.Random(1)
    network = generate_network(rng)
    solver = RelaxationSolver()
    events = []
    solver.invariant_hook = lambda residual, event: events.append(event)
    solver.solve(network.copy())
    assert "augment" in events


# --------------------------------------------------------------------- #
# Old-vs-new implementation equality
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("seed", SEEDS)
def test_rewrite_matches_old_implementation_cost(seed):
    rng = random.Random(seed)
    network = generate_network(rng)
    expected = reference_min_cost(network)
    old_cost = ReferenceRelaxationSolver().solve_cost(network)
    new_cost = RelaxationSolver().solve(network.copy()).total_cost
    assert old_cost == expected
    assert new_cost == expected


@pytest.mark.parametrize("seed", SEEDS[:6])
def test_rewrite_matches_old_implementation_across_rounds(seed):
    rng = random.Random(seed)
    network = generate_network(rng)
    solver = RelaxationSolver()
    changes = None
    for _ in range(3):
        old_cost = ReferenceRelaxationSolver().solve_cost(network)
        new_cost = solver.solve(network.copy(), changes=changes).total_cost
        assert new_cost == old_cost
        network, changes = perturb_network(rng, network)


# --------------------------------------------------------------------- #
# Worker resync == full snapshot
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("seed", range(6))
def test_resync_payload_reproduces_full_snapshot_state(seed):
    """Across forced chain breaks, applying the composed incremental
    payload to a stale shadow yields exactly the fresh snapshot's state --
    and the relaxation solve on either agrees with the oracle."""
    rng = random.Random(seed)
    network = generate_network(rng)

    # The worker's view: a shadow parsed from the cold-start snapshot.
    shadow = read_dimacs(write_dimacs(network, include_node_types=False))
    shadow.revision = network.revision
    worker_solver = RelaxationSolver()
    worker_solver.solve(shadow)

    cache = RevisionChainCache()
    for _ in range(4):  # chain break: none of these rounds are shipped
        network, batch = perturb_network(rng, network)
        cache.record(batch)

    base_revision = shadow.revision
    composed = cache.compose(base_revision, network.revision)
    assert composed is not None, "recorded chain must compose across the gap"
    text = write_incremental(
        composed, base_revision=base_revision, target_revision=network.revision
    )
    parsed = read_incremental(text)
    for change in parsed:
        change.apply(shadow)
    shadow.revision = network.revision

    fresh = read_dimacs(write_dimacs(network, include_node_types=False))
    assert_networks_structurally_equal(shadow, fresh)

    # Solve exactly as the worker does: hand the parsed payload over as a
    # revision-chained batch so the persistent residual is patched, then
    # check the answer against the oracle and the snapshot path.
    expected = reference_min_cost(network)
    resynced = worker_solver.solve(
        shadow,
        changes=ChangeBatch(
            changes=parsed,
            base_revision=base_revision,
            target_revision=network.revision,
        ),
    )
    assert resynced.total_cost == expected
    assert worker_solver.residual_reuses >= 1, "resync must patch, not rebuild"
    assert RelaxationSolver().solve(fresh).total_cost == expected


def test_revision_chain_cache_gaps_and_bounds():
    cache = RevisionChainCache(max_entries=3)
    batches = []
    for base in range(1, 6):
        batch = ChangeBatch(base_revision=base, target_revision=base + 1)
        cache.record(batch)
        batches.append(batch)
    # Only the 3 most recent entries are retained.
    assert len(cache) == 3
    assert cache.compose(3, 6) == []  # batches 3->4->5->6 retained, all empty
    assert cache.compose(1, 6) is None  # 1->2 was evicted: gap
    assert cache.compose(4, 4) == []
    # Unrevisioned batches are not resyncable and must be ignored.
    cache.record(ChangeBatch(base_revision=None, target_revision=9))
    cache.record(ChangeBatch(base_revision=9, target_revision=None))
    assert len(cache) == 3


def test_forced_chain_breaks_ship_deltas_not_snapshots():
    """End to end: solo-delta rounds break the worker's chain; the next
    raced round must resync with an incremental payload, leaving the cold
    start as the only full DIMACS ship."""
    rng = random.Random(3)
    network = generate_network(rng)
    executor = ParallelDualExecutor()
    try:
        assert executor.solve(network.copy()).total_cost == reference_min_cost(
            network
        )
        # If relaxation won the photo finish, the seed dropped the
        # incremental solver's persistent residual; re-arm it so the solo
        # rounds below take the delta path deterministically.
        executor.incremental.solve(network.copy())
        for _ in range(3):  # small chained batches: solved solo, not shipped
            network, batch = perturb_network(rng, network)
            result = executor.solve(network.copy(), changes=batch)
            assert result.total_cost == reference_min_cost(network)
        assert executor.solo_delta_rounds == 3
        # Force the race back on: the worker is 3 revisions behind.
        executor.delta_solo_threshold = 0
        for _ in range(2):
            network, batch = perturb_network(rng, network)
            result = executor.solve(network.copy(), changes=batch)
            assert result.total_cost == reference_min_cost(network)
        assert executor.full_payloads == 1, (
            "every post-cold-start ship must be incremental "
            f"(full={executor.full_payloads}, delta={executor.delta_payloads})"
        )
        assert executor.delta_payloads >= 2
        assert executor.resync_payloads >= 1
        assert executor.snapshot_ships == executor.full_payloads
        assert executor.delta_ships == executor.delta_payloads
    finally:
        executor.close()
