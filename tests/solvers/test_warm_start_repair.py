"""Edge-case tests for cost scaling's warm-start repair path (Section 5.2).

The incremental cost scaling solver hands ``CostScalingSolver.solve_warm`` a
previous solution plus an updated graph; the repair must restore feasibility
and optimality for every kind of change Table 3 enumerates -- new supply
(task submission), removed supply (task completion/removal), capacity
reductions below the carried flow (machine failure), and cost changes in
either direction.
"""

from __future__ import annotations

import pytest

from repro.flow.graph import NodeType
from repro.flow.validation import check_feasibility
from repro.solvers import CostScalingSolver, IncrementalCostScalingSolver

from tests.conftest import build_scheduling_network, reference_min_cost


def warm_resolve(before, after, **solver_kwargs):
    """Solve ``before`` from scratch, then ``after`` via the warm-start path."""
    solver = IncrementalCostScalingSolver(**solver_kwargs)
    solver.solve(before)
    return solver.solve(after)


class TestWarmStartRepair:
    def test_unchanged_problem_returns_same_cost(self):
        network = build_scheduling_network(seed=21)
        result = warm_resolve(network.copy(), network.copy())
        assert result.statistics.warm_start
        assert result.total_cost == reference_min_cost(network)

    def test_new_task_supply_is_routed(self):
        before = build_scheduling_network(seed=22)
        after = before.copy()
        sink = after.nodes_of_type(NodeType.SINK)[0]
        unscheduled = after.nodes_of_type(NodeType.UNSCHEDULED_AGGREGATOR)[0]
        machine = after.nodes_of_type(NodeType.MACHINE)[0]
        new_task = after.add_node(NodeType.TASK, supply=1, name="Tnew")
        after.add_arc(new_task.node_id, machine.node_id, 1, 1)
        after.add_arc(new_task.node_id, unscheduled.node_id, 1, 50)
        after.set_supply(sink.node_id, sink.supply - 1)

        result = warm_resolve(before, after)
        assert result.total_cost == reference_min_cost(after)
        assert not check_feasibility(after)

    def test_task_removal_is_drained(self):
        before = build_scheduling_network(seed=23)
        after = before.copy()
        sink = after.nodes_of_type(NodeType.SINK)[0]
        task = after.nodes_of_type(NodeType.TASK)[0]
        after.remove_node(task.node_id)
        after.set_supply(sink.node_id, sink.supply + 1)

        result = warm_resolve(before, after)
        assert result.total_cost == reference_min_cost(after)
        assert not check_feasibility(after)

    def test_task_removal_without_drain_heuristic_still_correct(self):
        before = build_scheduling_network(seed=24)
        after = before.copy()
        sink = after.nodes_of_type(NodeType.SINK)[0]
        task = after.nodes_of_type(NodeType.TASK)[-1]
        after.remove_node(task.node_id)
        after.set_supply(sink.node_id, sink.supply + 1)

        result = warm_resolve(before, after, efficient_task_removal=False)
        assert result.total_cost == reference_min_cost(after)

    def test_capacity_reduction_below_carried_flow(self):
        before = build_scheduling_network(seed=25, num_tasks=8, num_machines=3)
        solver = IncrementalCostScalingSolver()
        first = solver.solve(before)

        after = before.copy()
        # Find a machine arc that carried flow and halve its capacity to
        # below the carried amount (machine shrank / partially failed).
        reduced = False
        for (src, dst), flow in sorted(first.flows.items()):
            if not after.has_arc(src, dst):
                continue
            arc = after.arc(src, dst)
            if after.node(dst).node_type is NodeType.SINK and flow >= 2:
                after.set_arc_capacity(src, dst, flow - 1)
                reduced = True
                break
        if not reduced:
            pytest.skip("no machine arc carried at least two units of flow")

        result = solver.solve(after)
        assert result.statistics.warm_start
        assert result.total_cost == reference_min_cost(after)
        assert not check_feasibility(after)

    def test_cost_increase_and_decrease_reoptimize(self):
        before = build_scheduling_network(seed=26)
        solver = IncrementalCostScalingSolver()
        solver.solve(before)

        after = before.copy()
        task_arcs = [
            arc for arc in after.arcs()
            if after.node(arc.src).node_type is NodeType.TASK
            and after.node(arc.dst).node_type is NodeType.MACHINE
        ]
        after.set_arc_cost(task_arcs[0].src, task_arcs[0].dst, 0)
        after.set_arc_cost(task_arcs[-1].src, task_arcs[-1].dst, task_arcs[-1].cost + 40)

        result = solver.solve(after)
        assert result.total_cost == reference_min_cost(after)

    def test_price_refine_disabled_still_correct(self):
        network = build_scheduling_network(seed=27)
        solver = IncrementalCostScalingSolver(apply_price_refine=False)
        solver.solve(network.copy())
        result = solver.solve(network.copy())
        assert result.total_cost == reference_min_cost(network)

    def test_repeated_warm_solves_stay_optimal(self):
        solver = IncrementalCostScalingSolver()
        scratch = CostScalingSolver()
        for round_index in range(4):
            network = build_scheduling_network(seed=30 + round_index)
            warm = solver.solve(network.copy())
            reference = scratch.solve(network.copy())
            assert warm.total_cost == reference.total_cost
