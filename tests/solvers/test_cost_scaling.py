"""Unit tests for the cost scaling solver, price refine, and warm starts."""

import pytest

from repro.flow.validation import check_feasibility
from repro.solvers.base import InfeasibleProblemError
from repro.solvers.cost_scaling import (
    DEFAULT_ALPHA,
    TUNED_ALPHA,
    CostScalingSolver,
    price_refine,
)
from repro.solvers.relaxation import RelaxationSolver
from repro.solvers.residual import ResidualNetwork
from repro.flow.graph import FlowNetwork, NodeType
from tests.conftest import build_scheduling_network, reference_min_cost


class TestBasicSolving:
    def test_optimal_on_small_graph(self):
        network = build_scheduling_network(seed=5)
        expected = reference_min_cost(network)
        result = CostScalingSolver().solve(network)
        assert result.total_cost == expected
        assert result.optimal
        assert result.statistics.epsilon_phases >= 1

    def test_alpha_validation(self):
        with pytest.raises(ValueError):
            CostScalingSolver(alpha=1)

    @pytest.mark.parametrize("alpha", [DEFAULT_ALPHA, 4, TUNED_ALPHA])
    def test_alpha_variants_reach_same_cost(self, alpha):
        network = build_scheduling_network(seed=9, num_tasks=12)
        expected = reference_min_cost(network)
        result = CostScalingSolver(alpha=alpha).solve(network)
        assert result.total_cost == expected

    def test_larger_alpha_uses_fewer_phases(self):
        network = build_scheduling_network(seed=11, num_tasks=12, max_cost=200)
        few = CostScalingSolver(alpha=TUNED_ALPHA).solve(network.copy())
        many = CostScalingSolver(alpha=2).solve(network.copy())
        assert few.statistics.epsilon_phases <= many.statistics.epsilon_phases

    def test_infeasible_problem_raises(self):
        network = FlowNetwork()
        task = network.add_node(NodeType.TASK, supply=1)
        sink = network.add_node(NodeType.SINK, supply=-1)
        # Zero-capacity arc: the supply cannot reach the sink.
        network.add_arc(task.node_id, sink.node_id, 0, 1)
        with pytest.raises(InfeasibleProblemError):
            CostScalingSolver().solve(network)

    def test_early_termination_marks_result_non_optimal(self):
        network = build_scheduling_network(seed=2, num_tasks=12, max_cost=500)
        result = CostScalingSolver(max_phases=1).solve(network)
        assert not result.optimal
        # Even a truncated run must leave a feasible flow behind.
        assert check_feasibility(network) == []


class TestPriceRefine:
    def test_price_refine_on_optimal_flow_installs_valid_potentials(self):
        network = build_scheduling_network(seed=4, num_tasks=10)
        RelaxationSolver().solve(network)
        residual = ResidualNetwork(network, use_existing_flow=True)
        assert price_refine(residual)
        # No residual arc may have negative reduced cost afterwards.
        for arc_index in range(residual.num_arcs):
            if residual.arc_residual[arc_index] > 0:
                assert residual.reduced_cost(arc_index) >= 0

    def test_price_refine_detects_non_optimal_flow(self):
        network = FlowNetwork()
        task = network.add_node(NodeType.TASK, supply=1)
        good = network.add_node(NodeType.MACHINE)
        bad = network.add_node(NodeType.MACHINE)
        sink = network.add_node(NodeType.SINK, supply=-1)
        network.add_arc(task.node_id, good.node_id, 1, 1)
        network.add_arc(task.node_id, bad.node_id, 1, 50)
        network.add_arc(good.node_id, sink.node_id, 1, 0)
        network.add_arc(bad.node_id, sink.node_id, 1, 0)
        # Deliberately non-optimal flow through the expensive machine.
        network.arc(task.node_id, bad.node_id).flow = 1
        network.arc(bad.node_id, sink.node_id).flow = 1
        residual = ResidualNetwork(network, use_existing_flow=True)
        assert not price_refine(residual)

    def test_price_refine_empty_network(self):
        residual = ResidualNetwork(FlowNetwork())
        assert price_refine(residual)


class TestWarmStart:
    def test_warm_start_from_own_solution_is_immediate(self):
        network = build_scheduling_network(seed=7, num_tasks=10)
        solver = CostScalingSolver()
        first = solver.solve(network)
        warm = solver.solve_warm(network.copy(), first.flows, first.potentials)
        assert warm.total_cost == first.total_cost
        # Nothing changed, so no scaling phase should have been needed.
        assert warm.statistics.epsilon_phases == 0

    def test_warm_start_after_cost_change_reoptimizes(self):
        network = build_scheduling_network(seed=8, num_tasks=8)
        solver = CostScalingSolver()
        first = solver.solve(network.copy())
        changed = network.copy()
        # Make one previously attractive task->machine arc very expensive.
        task_arc = next(
            arc for arc in changed.arcs()
            if changed.node(arc.src).node_type.value == "task" and arc.cost <= 2
        )
        changed.set_arc_cost(task_arc.src, task_arc.dst, 90)
        expected = reference_min_cost(changed)
        warm = solver.solve_warm(changed, first.flows, first.potentials)
        assert warm.total_cost == expected
        assert check_feasibility(changed) == []

    def test_warm_start_with_new_task(self):
        from repro.flow.graph import NodeType

        network = build_scheduling_network(seed=10, num_tasks=6)
        solver = CostScalingSolver()
        first = solver.solve(network.copy())

        grown = network.copy()
        machine = grown.nodes_of_type(NodeType.MACHINE)[0]
        unscheduled = grown.nodes_of_type(NodeType.UNSCHEDULED_AGGREGATOR)[0]
        sink = grown.nodes_of_type(NodeType.SINK)[0]
        new_task = grown.add_node(NodeType.TASK, supply=1, name="new")
        grown.add_arc(new_task.node_id, machine.node_id, 1, 1)
        grown.add_arc(new_task.node_id, unscheduled.node_id, 1, 30)
        grown.set_supply(sink.node_id, sink.supply - 1)
        grown.set_arc_capacity(unscheduled.node_id, sink.node_id, 7)

        expected = reference_min_cost(grown)
        warm = solver.solve_warm(grown, first.flows, first.potentials)
        assert warm.total_cost == expected
        assert check_feasibility(grown) == []
