"""Seeded random network generator and perturber for cross-solver fuzzing.

Multi-process solver state is exactly where silent divergence creeps in, so
the equivalence suite makes "every solver agrees on the optimal cost" a
continuously enforced invariant: the harness below generates feasible
scheduling-shaped networks of fuzzed size/capacity/cost structure
(including negative costs) and random multi-round change batches, and
:func:`solve_all_ways` runs every from-scratch algorithm, the incremental
solver, and both speculative executors over them.

The generated graphs are layered (task -> aggregator -> machine -> sink),
hence acyclic, so negative arc costs never create negative-cost cycles and
every algorithm's preconditions hold.  Feasibility is guaranteed by an
unscheduled-aggregator escape path whose capacity always covers the total
supply, mirroring real scheduling networks.
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from repro.flow.changes import ChangeBatch
from repro.flow.graph import FlowNetwork, NodeType


def generate_network(rng: random.Random) -> FlowNetwork:
    """Generate a random feasible scheduling-shaped flow network."""
    num_tasks = rng.randint(2, 12)
    num_machines = rng.randint(2, 6)
    num_aggregators = rng.randint(0, 2)
    slots = rng.randint(1, 3)

    network = FlowNetwork()
    sink = network.add_node(NodeType.SINK, name="S")
    machines = [
        network.add_node(NodeType.MACHINE, name=f"M{i}", ref=i)
        for i in range(num_machines)
    ]
    for machine in machines:
        network.add_arc(
            machine.node_id, sink.node_id, slots + rng.randint(0, 2), rng.randint(-5, 5)
        )
    aggregators = [
        network.add_node(NodeType.CLUSTER_AGGREGATOR, name=f"X{i}")
        for i in range(num_aggregators)
    ]
    for aggregator in aggregators:
        for machine in rng.sample(machines, k=rng.randint(1, num_machines)):
            network.add_arc(
                aggregator.node_id,
                machine.node_id,
                rng.randint(1, 4),
                rng.randint(-8, 10),
            )

    unscheduled = network.add_node(NodeType.UNSCHEDULED_AGGREGATOR, name="U")
    total_supply = 0
    for index in range(num_tasks):
        supply = rng.randint(1, 2)
        total_supply += supply
        task = network.add_node(
            NodeType.TASK, supply=supply, name=f"T{index}", ref=index
        )
        # Escape path: always enough capacity to leave the task unscheduled.
        network.add_arc(
            task.node_id, unscheduled.node_id, supply, rng.randint(20, 60)
        )
        targets: List[int] = [
            m.node_id for m in rng.sample(machines, k=rng.randint(0, num_machines))
        ]
        if aggregators and rng.random() < 0.6:
            targets.append(rng.choice(aggregators).node_id)
        for target in targets:
            network.add_arc(
                task.node_id, target, rng.randint(1, 3), rng.randint(-10, 15)
            )
    network.add_arc(unscheduled.node_id, sink.node_id, total_supply, 0)
    network.set_supply(sink.node_id, -total_supply)
    network.revision = 1
    return network


def _eligible_arcs(network: FlowNetwork):
    """Arcs safe to remove or shrink without endangering feasibility.

    The escape path (task -> unscheduled -> sink) must keep enough capacity
    for the full supply, so only preference/aggregation arcs are touched.
    """
    unscheduled_ids = {
        n.node_id for n in network.nodes_of_type(NodeType.UNSCHEDULED_AGGREGATOR)
    }
    return [
        arc
        for arc in network.arcs()
        if arc.src not in unscheduled_ids and arc.dst not in unscheduled_ids
    ]


def perturb_network(
    rng: random.Random, previous: FlowNetwork
) -> Tuple[FlowNetwork, ChangeBatch]:
    """Mutate a copy of ``previous`` and return it with its change batch.

    Applies a random mix of cost/capacity changes, arc additions/removals,
    and task-node additions/removals, always preserving feasibility and
    supply balance.  The batch is produced by :meth:`ChangeBatch.diff`, the
    same path the graph manager uses per scheduling round.
    """
    network = previous.copy()
    sink = network.nodes_of_type(NodeType.SINK)[0]
    unscheduled = network.nodes_of_type(NodeType.UNSCHEDULED_AGGREGATOR)[0]
    machines = network.nodes_of_type(NodeType.MACHINE)

    for _ in range(rng.randint(1, 6)):
        operation = rng.random()
        eligible = _eligible_arcs(network)
        if operation < 0.30 and eligible:
            arc = rng.choice(eligible)
            network.set_arc_cost(arc.src, arc.dst, rng.randint(-10, 15))
        elif operation < 0.45 and eligible:
            arc = rng.choice(eligible)
            network.set_arc_capacity(arc.src, arc.dst, rng.randint(0, 4))
        elif operation < 0.60 and eligible:
            arc = rng.choice(eligible)
            network.remove_arc(arc.src, arc.dst)
        elif operation < 0.75:
            # New preference arc between a random task and machine.
            tasks = network.nodes_of_type(NodeType.TASK)
            if tasks and machines:
                task = rng.choice(tasks)
                machine = rng.choice(machines)
                if not network.has_arc(task.node_id, machine.node_id):
                    network.add_arc(
                        task.node_id,
                        machine.node_id,
                        rng.randint(1, 3),
                        rng.randint(-10, 15),
                    )
        elif operation < 0.90:
            # Submit a task: new source node plus its escape and preference
            # arcs; the sink absorbs the extra supply.
            supply = rng.randint(1, 2)
            task = network.add_node(NodeType.TASK, supply=supply)
            network.add_arc(
                task.node_id, unscheduled.node_id, supply, rng.randint(20, 60)
            )
            for machine in rng.sample(machines, k=rng.randint(0, len(machines))):
                network.add_arc(
                    task.node_id, machine.node_id, rng.randint(1, 3), rng.randint(-10, 15)
                )
            network.set_arc_capacity(
                unscheduled.node_id,
                sink.node_id,
                network.arc(unscheduled.node_id, sink.node_id).capacity + supply,
            )
            network.set_supply(sink.node_id, sink.supply - supply)
        else:
            # Complete a task: drop the source node (and its arcs) and give
            # the supply back to the sink.
            tasks = network.nodes_of_type(NodeType.TASK)
            if len(tasks) > 1:
                task = rng.choice(tasks)
                network.set_supply(sink.node_id, sink.supply + task.supply)
                network.remove_node(task.node_id)

    network.revision = previous.revision + 1
    changes = ChangeBatch.diff(previous, network)
    return network, changes
