"""Unit tests for the relaxation solver and the arc-prioritization heuristic."""

import pytest

from repro.flow.graph import FlowNetwork, NodeType
from repro.flow.validation import assert_optimal, check_feasibility
from repro.solvers.base import InfeasibleProblemError
from repro.solvers.relaxation import RelaxationSolver
from tests.conftest import (
    build_contended_network,
    build_scheduling_network,
    reference_min_cost,
)


class TestBasicSolving:
    def test_optimal_on_small_graph(self):
        network = build_scheduling_network(seed=1)
        expected = reference_min_cost(network)
        result = RelaxationSolver().solve(network)
        assert result.total_cost == expected
        assert_optimal(network, result.potentials)

    def test_uncontested_graph_needs_no_augment_per_conflict(self):
        """With one slot per task and distinct preferences, every task is
        routed with a single augmentation (the common case the paper relies
        on for relaxation's speed)."""
        network = FlowNetwork()
        sink = network.add_node(NodeType.SINK, supply=-4)
        unsched = network.add_node(NodeType.UNSCHEDULED_AGGREGATOR)
        network.add_arc(unsched.node_id, sink.node_id, 4, 0)
        for index in range(4):
            machine = network.add_node(NodeType.MACHINE, name=f"M{index}")
            network.add_arc(machine.node_id, sink.node_id, 1, 0)
            task = network.add_node(NodeType.TASK, supply=1, name=f"T{index}")
            network.add_arc(task.node_id, machine.node_id, 1, 1)
            network.add_arc(task.node_id, unsched.node_id, 1, 20)
        result = RelaxationSolver().solve(network)
        assert result.total_cost == 4
        assert result.statistics.augmentations == 4

    def test_contended_graph_still_optimal(self):
        network = build_contended_network(num_tasks=25)
        expected = reference_min_cost(network)
        result = RelaxationSolver().solve(network)
        assert result.total_cost == expected

    def test_contention_increases_dual_ascent_work(self):
        """Contention forces extra dual-ascent steps per routed task -- the
        mechanism behind the slowdowns of Figures 8 and 9.

        In the uncontested graph every task has a dedicated machine one
        zero-reduced-cost hop behind a single ascent, so ascents per
        augmentation equal one.  In the contended graph most tasks find their
        preferred destinations saturated and need further ascents before the
        expensive unscheduled route opens up.
        """
        uncontended = FlowNetwork()
        sink = uncontended.add_node(NodeType.SINK, supply=-10)
        unsched = uncontended.add_node(NodeType.UNSCHEDULED_AGGREGATOR)
        uncontended.add_arc(unsched.node_id, sink.node_id, 10, 0)
        for index in range(10):
            machine = uncontended.add_node(NodeType.MACHINE)
            uncontended.add_arc(machine.node_id, sink.node_id, 1, 0)
            task = uncontended.add_node(NodeType.TASK, supply=1)
            uncontended.add_arc(task.node_id, machine.node_id, 1, 1)
            uncontended.add_arc(task.node_id, unsched.node_id, 1, 50)

        contended = build_contended_network(num_tasks=30, num_machines=2,
                                            slots_per_machine=2)
        easy = RelaxationSolver().solve(uncontended)
        hard = RelaxationSolver().solve(contended)
        easy_ascents = easy.statistics.potential_updates / max(1, easy.statistics.augmentations)
        hard_ascents = hard.statistics.potential_updates / max(1, hard.statistics.augmentations)
        assert hard_ascents > easy_ascents

    def test_infeasible_problem_raises(self):
        network = FlowNetwork()
        task = network.add_node(NodeType.TASK, supply=1)
        sink = network.add_node(NodeType.SINK, supply=-1)
        network.add_arc(task.node_id, sink.node_id, 0, 1)
        with pytest.raises(InfeasibleProblemError):
            RelaxationSolver().solve(network)

    def test_negative_cost_arcs_handled(self):
        """Initial saturation restores reduced-cost optimality for graphs
        with negative costs (not produced by our policies, but allowed)."""
        network = FlowNetwork()
        task = network.add_node(NodeType.TASK, supply=1)
        machine = network.add_node(NodeType.MACHINE)
        sink = network.add_node(NodeType.SINK, supply=-1)
        network.add_arc(task.node_id, machine.node_id, 1, -5)
        network.add_arc(machine.node_id, sink.node_id, 1, 0)
        result = RelaxationSolver().solve(network)
        assert result.total_cost == -5
        assert check_feasibility(network) == []


class TestArcPrioritization:
    def test_heuristic_preserves_optimality(self):
        network = build_contended_network(num_tasks=30)
        expected = reference_min_cost(network)
        for enabled in (True, False):
            result = RelaxationSolver(arc_prioritization=enabled).solve(network.copy())
            assert result.total_cost == expected

    def test_heuristic_does_not_inflate_scanning_on_contended_graphs(self):
        """The probe must not materially increase scanning work.

        The typed-array rewrite scans each tree node's adjacency exactly
        once and extends trees from the candidate heap, which eliminated
        the post-ascent re-traversals the Section 5.3.1 probe used to
        save; its remaining effect is frontier *order* (finding a demand
        node before more of the tree is scanned), so the two modes now
        sit within a few arcs of each other instead of the old wide gap.
        The guard pins that the probe's bookkeeping never becomes a
        scanning regression.
        """
        network = build_contended_network(num_tasks=60, num_machines=6, slots_per_machine=3)
        with_heuristic = RelaxationSolver(arc_prioritization=True).solve(network.copy())
        without_heuristic = RelaxationSolver(arc_prioritization=False).solve(network.copy())
        assert (
            with_heuristic.statistics.arcs_scanned
            <= without_heuristic.statistics.arcs_scanned * 1.05
        )

    def test_probe_limit_caps_lookahead(self):
        solver = RelaxationSolver(arc_prioritization=True, priority_probe_limit=1)
        network = build_scheduling_network(seed=12, num_tasks=10)
        expected = reference_min_cost(network)
        assert solver.solve(network).total_cost == expected


class TestPersistentResidual:
    def test_unchained_solves_rebuild(self):
        solver = RelaxationSolver()
        network = build_scheduling_network(seed=21, num_tasks=8)
        solver.solve(network.copy())
        solver.solve(network.copy())
        assert solver.residual_rebuilds == 2
        assert solver.residual_reuses == 0

    def test_chained_batch_patches_instead_of_rebuilding(self):
        from repro.flow.changes import ChangeBatch

        solver = RelaxationSolver()
        previous = build_scheduling_network(seed=22, num_tasks=8)
        solver.solve(previous.copy())
        network = previous.copy()
        arc = next(a for a in network.arcs() if a.cost > 0)
        network.set_arc_cost(arc.src, arc.dst, arc.cost + 9)
        network.revision = previous.revision + 1
        changes = ChangeBatch.diff(previous, network)
        result = solver.solve(network.copy(), changes=changes)
        assert result.total_cost == reference_min_cost(network)
        assert solver.residual_reuses == 1
        assert result.statistics.arcs_patched >= 1
        # The patched residual mirrors the updated network exactly.
        assert solver.last_residual.consistency_errors(network) == []

    def test_mismatched_revision_falls_back_to_rebuild(self):
        from repro.flow.changes import ChangeBatch

        solver = RelaxationSolver()
        network = build_scheduling_network(seed=23, num_tasks=8)
        solver.solve(network.copy())
        stale = ChangeBatch(base_revision=999, target_revision=1000)
        result = solver.solve(network.copy(), changes=stale)
        assert result.total_cost == reference_min_cost(network)
        assert solver.residual_reuses == 0
        assert solver.residual_rebuilds == 2

    def test_invalidate_residual_forces_rebuild(self):
        solver = RelaxationSolver()
        network = build_scheduling_network(seed=24, num_tasks=8)
        solver.solve(network.copy())
        assert solver.last_residual is not None
        solver.invalidate_residual()
        assert solver.last_residual is None

    def test_observability_counters_populated(self):
        network = build_contended_network(num_tasks=25)
        result = RelaxationSolver().solve(network)
        assert result.statistics.relaxation_tree_nodes > 0
        assert result.statistics.dual_ascents > 0
        assert result.statistics.dual_ascents == result.statistics.potential_updates


class TestWarmStart:
    def test_warm_start_reaches_optimum_after_change(self):
        network = build_scheduling_network(seed=13, num_tasks=8)
        solver = RelaxationSolver()
        first = solver.solve(network.copy())
        changed = network.copy()
        arc = next(a for a in changed.arcs() if changed.node(a.src).node_type is NodeType.TASK)
        changed.set_arc_cost(arc.src, arc.dst, arc.cost + 15)
        expected = reference_min_cost(changed)
        warm = solver.solve_warm(changed, first.flows, first.potentials)
        assert warm.total_cost == expected
        assert warm.statistics.warm_start

    def test_warm_start_identical_graph_does_no_augmentation(self):
        network = build_scheduling_network(seed=14, num_tasks=8)
        solver = RelaxationSolver()
        first = solver.solve(network.copy())
        warm = solver.solve_warm(network.copy(), first.flows, first.potentials)
        assert warm.total_cost == first.total_cost
        assert warm.statistics.augmentations == 0
