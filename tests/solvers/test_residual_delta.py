"""Delta-patching tests: the persistent residual network must stay
arc-for-arc equivalent to one freshly built from the updated flow network,
and the incremental solver's delta path must never reconstruct a residual.
"""

from __future__ import annotations

import random

import pytest

from repro.flow.changes import (
    ArcAddition,
    ArcCapacityChange,
    ArcCostChange,
    ArcRemoval,
    ChangeBatch,
    NodeAddition,
    NodeRemoval,
    SupplyChange,
)
from repro.flow.graph import FlowNetwork, NodeType
from repro.solvers import cost_scaling as cost_scaling_module
from repro.solvers.cost_scaling import CostScalingSolver
from repro.solvers.incremental import IncrementalCostScalingSolver
from repro.solvers.residual import ResidualNetwork
from tests.conftest import build_scheduling_network, reference_min_cost


def random_change_batch(network: FlowNetwork, rng: random.Random) -> ChangeBatch:
    """Generate a random but consistent batch covering every change kind.

    The batch is applied to ``network`` in place as it is generated, so the
    returned batch transforms the caller's pre-mutation copy into
    ``network``'s final state.
    """
    batch = ChangeBatch()
    sink = network.nodes_of_type(NodeType.SINK)[0]
    unsched = network.nodes_of_type(NodeType.UNSCHEDULED_AGGREGATOR)[0]
    machines = network.nodes_of_type(NodeType.MACHINE)

    def emit(change):
        change.apply(network)
        batch.append(change)

    # Remove up to two tasks (with their arcs, then the supply rebalance).
    tasks = network.nodes_of_type(NodeType.TASK)
    for task in rng.sample(tasks, k=min(len(tasks), rng.randint(0, 2))):
        for arc in list(network.outgoing(task.node_id)):
            emit(ArcRemoval(src=arc.src, dst=arc.dst))
        emit(NodeRemoval(node_id=task.node_id))
        emit(SupplyChange(node_id=sink.node_id, delta=task.supply))

    # Add up to two tasks with preference arcs.
    for _ in range(rng.randint(0, 2)):
        emit(
            NodeAddition(
                node_type=NodeType.TASK,
                supply=1,
                node_id=max(network.node_ids()) + 1,
            )
        )
        new_id = max(network.node_ids())
        for machine in rng.sample(machines, k=min(2, len(machines))):
            emit(
                ArcAddition(
                    src=new_id,
                    dst=machine.node_id,
                    capacity=1,
                    cost=rng.randint(0, 5),
                )
            )
        emit(ArcAddition(src=new_id, dst=unsched.node_id, capacity=1, cost=10))
        emit(SupplyChange(node_id=sink.node_id, delta=-1))

    # Keep the fallback drain wide enough for every task (feasibility).
    num_tasks = len(network.nodes_of_type(NodeType.TASK))
    if network.arc(unsched.node_id, sink.node_id).capacity < num_tasks:
        emit(
            ArcCapacityChange(
                src=unsched.node_id, dst=sink.node_id, new_capacity=num_tasks
            )
        )

    # Cost drift and capacity changes on surviving arcs.
    for arc in list(network.arcs()):
        if rng.random() < 0.25:
            emit(
                ArcCostChange(
                    src=arc.src,
                    dst=arc.dst,
                    new_cost=max(0, arc.cost + rng.randint(-3, 3)),
                )
            )
    for machine in machines:
        if rng.random() < 0.25 and network.has_arc(machine.node_id, sink.node_id):
            emit(
                ArcCapacityChange(
                    src=machine.node_id,
                    dst=sink.node_id,
                    new_capacity=rng.randint(1, 4),
                )
            )
    return batch


class TestDeltaEquivalence:
    """A patched residual equals one freshly built from the updated network."""

    @pytest.mark.parametrize("seed", range(12))
    def test_patched_residual_matches_fresh_build(self, seed):
        rng = random.Random(seed)
        network = build_scheduling_network(
            seed=seed, num_tasks=rng.randint(3, 8), num_machines=rng.randint(2, 5)
        )
        residual = ResidualNetwork(network)
        batch = random_change_batch(network, rng)

        residual.apply_changes(batch)
        assert residual.consistency_errors(network) == []

        fresh = ResidualNetwork(network)
        live_arcs = {
            key: (
                residual.arc_residual[2 * p] + residual.arc_residual[2 * p + 1],
                residual.arc_cost[2 * p] // residual.cost_scale,
            )
            for key, p in residual.arc_position.items()
        }
        fresh_arcs = {
            key: (
                fresh.arc_residual[2 * p] + fresh.arc_residual[2 * p + 1],
                fresh.arc_cost[2 * p],
            )
            for key, p in fresh.arc_position.items()
        }
        assert live_arcs == fresh_arcs
        live_supplies = {
            nid: residual.supply[i]
            for nid, i in residual.index.items()
            if residual.node_alive[i]
        }
        assert live_supplies == {
            nid: fresh.supply[fresh.index[nid]] for nid in fresh.index
        }

    @pytest.mark.parametrize("seed", range(8))
    def test_patched_residual_matches_across_sequential_batches(self, seed):
        rng = random.Random(1000 + seed)
        network = build_scheduling_network(seed=seed, num_tasks=6, num_machines=3)
        residual = ResidualNetwork(network)
        for _ in range(4):
            batch = random_change_batch(network, rng)
            residual.apply_changes(batch)
            assert residual.consistency_errors(network) == []

    def test_scaled_residual_patches_in_scaled_units(self):
        network = build_scheduling_network(seed=3)
        residual = ResidualNetwork(network)
        residual.scale_costs(7)
        arc = next(iter(network.arcs()))
        batch = ChangeBatch([ArcCostChange(src=arc.src, dst=arc.dst, new_cost=13)])
        batch.apply_to(network)
        residual.apply_changes(batch)
        position = residual.arc_position[(arc.src, arc.dst)]
        assert residual.arc_cost[2 * position] == 13 * 7
        assert residual.consistency_errors(network) == []


class TestApplyChangesBookkeeping:
    def build(self):
        net = FlowNetwork()
        task = net.add_node(NodeType.TASK, supply=1)
        machine = net.add_node(NodeType.MACHINE)
        sink = net.add_node(NodeType.SINK, supply=-1)
        net.add_arc(task.node_id, machine.node_id, 2, 5)
        net.add_arc(machine.node_id, sink.node_id, 2, 0)
        return net, task, machine, sink

    def test_capacity_clamp_returns_flow_to_endpoints(self):
        net, task, machine, sink = self.build()
        net.arc(task.node_id, machine.node_id).flow = 2
        net.arc(machine.node_id, sink.node_id).flow = 2
        net.set_supply(task.node_id, 2)
        net.set_supply(sink.node_id, -2)
        residual = ResidualNetwork(net, use_existing_flow=True)
        t = residual.index[task.node_id]
        m = residual.index[machine.node_id]
        residual.apply_changes(
            ChangeBatch(
                [ArcCapacityChange(src=task.node_id, dst=machine.node_id, new_capacity=1)]
            )
        )
        # One clamped-off unit returns: excess at the task, deficit at the
        # machine (whose outflow to the sink still carries two units).
        assert residual.excess[t] == 1
        assert residual.excess[m] == -1

    def test_arc_removal_returns_flow_and_kills_slot(self):
        net, task, machine, sink = self.build()
        net.arc(task.node_id, machine.node_id).flow = 1
        net.arc(machine.node_id, sink.node_id).flow = 1
        residual = ResidualNetwork(net, use_existing_flow=True)
        residual.apply_changes(
            ChangeBatch([ArcRemoval(src=task.node_id, dst=machine.node_id)])
        )
        assert (task.node_id, machine.node_id) not in residual.arc_position
        assert residual.dead_arc_pairs == 1
        t = residual.index[task.node_id]
        assert residual.excess[t] == 1  # supply unit back at the task
        assert residual.flows() == {(machine.node_id, sink.node_id): 1}

    def test_node_removal_rejects_unbalanced_state(self):
        net, task, machine, sink = self.build()
        net.arc(task.node_id, machine.node_id).flow = 1
        net.arc(machine.node_id, sink.node_id).flow = 1
        residual = ResidualNetwork(net, use_existing_flow=True)
        # Simulate unresolved excess parked at the task (as after a failed
        # repair): removing the node would silently drop supply, so the
        # patch must refuse and force the caller back to a rebuild.
        residual.excess[residual.index[task.node_id]] += 1
        with pytest.raises(ValueError):
            residual.apply_changes(ChangeBatch([NodeRemoval(node_id=task.node_id)]))

    def test_max_cost_cache_tracks_mutations(self):
        net, task, machine, sink = self.build()
        residual = ResidualNetwork(net)
        assert residual.max_cost() == 5
        residual.apply_changes(
            ChangeBatch([ArcCostChange(src=task.node_id, dst=machine.node_id, new_cost=9)])
        )
        assert residual.max_cost() == 9
        residual.apply_changes(
            ChangeBatch(
                [ArcAddition(src=task.node_id, dst=sink.node_id, capacity=1, cost=50)]
            )
        )
        assert residual.max_cost() == 50
        residual.scale_costs(3)
        assert residual.max_cost() == 150

    def test_compaction_preserves_structure(self):
        rng = random.Random(7)
        network = build_scheduling_network(seed=7, num_tasks=8, num_machines=4)
        residual = ResidualNetwork(network)
        batch = random_change_batch(network, rng)
        residual.apply_changes(batch)
        residual.compact()
        assert residual.dead_arc_pairs == 0
        assert residual.dead_nodes == 0
        assert residual.consistency_errors(network) == []


class TestDeltaSolvePath:
    def evolve(self, network, rng, revision):
        updated = network.copy()
        updated.revision = revision
        batch = random_change_batch(updated, rng)
        batch.base_revision = network.revision
        batch.target_revision = revision
        return updated, batch

    def test_delta_solve_constructs_no_residual_network(self, monkeypatch):
        """Acceptance: a solve fed a change batch must not rebuild."""
        network = build_scheduling_network(seed=41)
        network.revision = 1
        solver = IncrementalCostScalingSolver()
        solver.solve(network.copy())

        updated, batch = self.evolve(network, random.Random(41), revision=2)

        def forbidden(*args, **kwargs):
            raise AssertionError(
                "delta solve must not construct a ResidualNetwork"
            )

        monkeypatch.setattr(cost_scaling_module, "ResidualNetwork", forbidden)
        result = solver.solve(updated.copy(), changes=batch)
        assert solver.delta_solves == 1
        assert solver.delta_fallbacks == 0
        assert result.total_cost == reference_min_cost(updated)

    @pytest.mark.parametrize("seed", range(8))
    def test_delta_solves_match_oracle_over_rounds(self, seed):
        rng = random.Random(seed)
        network = build_scheduling_network(
            seed=seed, num_tasks=rng.randint(4, 9), num_machines=rng.randint(2, 5)
        )
        network.revision = 1
        solver = IncrementalCostScalingSolver()
        solver.solve(network.copy())
        for revision in range(2, 6):
            updated, batch = self.evolve(network, rng, revision)
            result = solver.solve(updated.copy(), changes=batch)
            assert result.total_cost == reference_min_cost(updated)
            retained = solver._cost_scaling.last_residual
            assert retained is not None
            assert retained.consistency_errors(updated) == []
            network = updated
        assert solver.delta_solves == 4
        assert solver.delta_fallbacks == 0

    def test_revision_mismatch_falls_back_to_rebuild(self):
        network = build_scheduling_network(seed=43)
        network.revision = 1
        solver = IncrementalCostScalingSolver()
        solver.solve(network.copy())

        rng = random.Random(43)
        skipped, _ = self.evolve(network, rng, revision=2)
        updated, batch = self.evolve(skipped, rng, revision=3)
        # The solver never saw revision 2, so the 2->3 batch must not be
        # patched onto its revision-1 residual.
        result = solver.solve(updated.copy(), changes=batch)
        assert solver.delta_solves == 0
        assert result.total_cost == reference_min_cost(updated)

    def test_seed_drops_persistent_residual(self):
        from repro.solvers.relaxation import RelaxationSolver

        network = build_scheduling_network(seed=44)
        network.revision = 1
        solver = IncrementalCostScalingSolver()
        solver.solve(network.copy())
        assert solver._cost_scaling.last_residual is not None
        relaxed = RelaxationSolver().solve(network.copy())
        solver.seed(relaxed.flows, relaxed.potentials)
        assert solver._cost_scaling.last_residual is None

    def test_scheduler_drives_delta_path_end_to_end(self):
        from repro.core import FirmamentScheduler, QuincyPolicy
        from tests.conftest import make_cluster_state, make_job

        state = make_cluster_state()
        state.submit_job(make_job(job_id=1, num_tasks=4))
        incremental = IncrementalCostScalingSolver()
        scheduler = FirmamentScheduler(QuincyPolicy(), solver=incremental)
        scheduler.schedule_and_apply(state, now=0.0)
        state.submit_job(make_job(job_id=2, num_tasks=2))
        scheduler.schedule_and_apply(state, now=10.0)
        scheduler.schedule_and_apply(state, now=20.0)
        assert incremental.delta_solves >= 1
        assert incremental.delta_fallbacks == 0
