"""Unit tests for the speculative dual-algorithm executor."""

import pytest

from repro.flow.validation import check_feasibility
from repro.solvers.base import COMPLEXITY_TABLE, PRECONDITION_TABLE, SolverStatistics
from repro.solvers.dual_executor import DualAlgorithmExecutor
from repro.solvers.incremental import IncrementalCostScalingSolver
from repro.solvers.relaxation import RelaxationSolver
from tests.conftest import build_scheduling_network, reference_min_cost


class TestDualExecution:
    def test_winner_is_optimal_and_applied_to_network(self):
        executor = DualAlgorithmExecutor()
        network = build_scheduling_network(seed=41, num_tasks=10)
        expected = reference_min_cost(network)
        detailed = executor.solve_detailed(network)
        assert detailed.winner.total_cost == expected
        assert detailed.relaxation.total_cost == expected
        assert detailed.cost_scaling.total_cost == expected
        assert check_feasibility(network) == []

    def test_effective_runtime_is_min_and_work_is_sum(self):
        executor = DualAlgorithmExecutor()
        network = build_scheduling_network(seed=42, num_tasks=10)
        detailed = executor.solve_detailed(network)
        assert detailed.effective_runtime_seconds == pytest.approx(
            min(
                detailed.relaxation.runtime_seconds,
                detailed.cost_scaling.runtime_seconds,
            )
        )
        assert detailed.total_work_seconds == pytest.approx(
            detailed.relaxation.runtime_seconds + detailed.cost_scaling.runtime_seconds
        )
        assert detailed.winning_algorithm in (
            "relaxation",
            "incremental_cost_scaling",
        )

    def test_solve_returns_winner(self):
        executor = DualAlgorithmExecutor()
        network = build_scheduling_network(seed=43)
        result = executor.solve(network)
        assert result is executor.last_result.winner

    def test_relaxation_win_seeds_incremental_state(self):
        executor = DualAlgorithmExecutor()
        network = build_scheduling_network(seed=44, num_tasks=12)
        detailed = executor.solve_detailed(network)
        if detailed.winning_algorithm == "relaxation":
            assert executor.incremental.has_state

    def test_repeated_solving_stays_optimal(self):
        executor = DualAlgorithmExecutor()
        base = build_scheduling_network(seed=45, num_tasks=10)
        for round_index in range(3):
            network = base.copy()
            # Perturb one cost each round, as monitoring updates would.
            arc = next(a for a in network.arcs() if a.cost > 0)
            network.set_arc_cost(arc.src, arc.dst, arc.cost + round_index)
            expected = reference_min_cost(network)
            result = executor.solve(network)
            assert result.total_cost == expected

    def test_custom_component_solvers_are_used(self):
        relaxation = RelaxationSolver(arc_prioritization=False)
        incremental = IncrementalCostScalingSolver(alpha=9)
        executor = DualAlgorithmExecutor(relaxation=relaxation, incremental=incremental)
        assert executor.relaxation is relaxation
        assert executor.incremental is incremental
        network = build_scheduling_network(seed=46)
        assert executor.solve(network).total_cost == reference_min_cost(network)


class TestStaticTables:
    def test_complexity_table_covers_all_algorithms(self):
        assert set(COMPLEXITY_TABLE) == {
            "relaxation",
            "cycle_canceling",
            "cost_scaling",
            "successive_shortest_path",
        }

    def test_precondition_table_matches_paper(self):
        assert PRECONDITION_TABLE["cost_scaling"]["feasibility"]
        assert PRECONDITION_TABLE["cost_scaling"]["epsilon_optimality"]
        assert PRECONDITION_TABLE["relaxation"]["reduced_cost_optimality"]
        assert not PRECONDITION_TABLE["relaxation"]["feasibility"]
        assert PRECONDITION_TABLE["cycle_canceling"]["feasibility"]
        assert PRECONDITION_TABLE["successive_shortest_path"]["reduced_cost_optimality"]

    def test_statistics_merge(self):
        first = SolverStatistics(iterations=2, pushes=3)
        second = SolverStatistics(iterations=1, relabels=4, warm_start=True)
        merged = first.merge(second)
        assert merged.iterations == 3
        assert merged.pushes == 3
        assert merged.relabels == 4
        assert merged.warm_start
