"""Unit tests for the speculative dual-algorithm executor."""

import pytest

from repro.flow.validation import check_feasibility
from repro.solvers.base import COMPLEXITY_TABLE, PRECONDITION_TABLE, SolverStatistics
from repro.solvers.dual_executor import DualAlgorithmExecutor, RaceCostModel
from repro.solvers.incremental import IncrementalCostScalingSolver
from repro.solvers.relaxation import RelaxationSolver
from tests.conftest import build_scheduling_network, reference_min_cost


def make_result(algorithm: str, runtime: float, **stats) -> "object":
    from repro.solvers.base import SolverResult

    return SolverResult(
        algorithm=algorithm,
        total_cost=0,
        flows={},
        potentials={},
        runtime_seconds=runtime,
        statistics=SolverStatistics(**stats),
    )


class TestDualExecution:
    def test_winner_is_optimal_and_applied_to_network(self):
        executor = DualAlgorithmExecutor()
        network = build_scheduling_network(seed=41, num_tasks=10)
        expected = reference_min_cost(network)
        detailed = executor.solve_detailed(network)
        assert detailed.winner.total_cost == expected
        assert detailed.relaxation.total_cost == expected
        assert detailed.cost_scaling.total_cost == expected
        assert check_feasibility(network) == []

    def test_effective_runtime_is_min_and_work_is_sum(self):
        executor = DualAlgorithmExecutor()
        network = build_scheduling_network(seed=42, num_tasks=10)
        detailed = executor.solve_detailed(network)
        assert detailed.effective_runtime_seconds == pytest.approx(
            min(
                detailed.relaxation.runtime_seconds,
                detailed.cost_scaling.runtime_seconds,
            )
        )
        assert detailed.total_work_seconds == pytest.approx(
            detailed.relaxation.runtime_seconds + detailed.cost_scaling.runtime_seconds
        )
        assert detailed.winning_algorithm in (
            "relaxation",
            "incremental_cost_scaling",
        )

    def test_solve_returns_winner(self):
        executor = DualAlgorithmExecutor()
        network = build_scheduling_network(seed=43)
        result = executor.solve(network)
        assert result is executor.last_result.winner

    def test_relaxation_win_seeds_incremental_state(self):
        executor = DualAlgorithmExecutor()
        network = build_scheduling_network(seed=44, num_tasks=12)
        detailed = executor.solve_detailed(network)
        if detailed.winning_algorithm == "relaxation":
            assert executor.incremental.has_state

    def test_repeated_solving_stays_optimal(self):
        executor = DualAlgorithmExecutor()
        base = build_scheduling_network(seed=45, num_tasks=10)
        for round_index in range(3):
            network = base.copy()
            # Perturb one cost each round, as monitoring updates would.
            arc = next(a for a in network.arcs() if a.cost > 0)
            network.set_arc_cost(arc.src, arc.dst, arc.cost + round_index)
            expected = reference_min_cost(network)
            result = executor.solve(network)
            assert result.total_cost == expected

    def test_custom_component_solvers_are_used(self):
        relaxation = RelaxationSolver(arc_prioritization=False)
        incremental = IncrementalCostScalingSolver(alpha=9)
        executor = DualAlgorithmExecutor(relaxation=relaxation, incremental=incremental)
        assert executor.relaxation is relaxation
        assert executor.incremental is incremental
        network = build_scheduling_network(seed=46)
        assert executor.solve(network).total_cost == reference_min_cost(network)


class TestRaceCostModel:
    def observe_rounds(self, model, relax_s, scaling_s, rounds=3, **relax_stats):
        for _ in range(rounds):
            model.observe(
                make_result("relaxation", relax_s, augmentations=10, **relax_stats),
                make_result("incremental_cost_scaling", scaling_s),
            )

    def test_races_until_both_legs_observed(self):
        model = RaceCostModel(min_observations=2)
        assert model.choose(batch_size=5, delta_armed=False) == "race"
        model.observe(make_result("relaxation", 0.001), None)
        model.observe(make_result("relaxation", 0.001), None)
        # Cost scaling still unobserved: keep racing.
        assert model.choose(batch_size=5, delta_armed=False) == "race"

    def test_rebuild_rounds_always_race(self):
        model = RaceCostModel()
        self.observe_rounds(model, relax_s=0.001, scaling_s=0.050)
        # Solo would be chosen for a small batch, but a no-batch round is
        # a rebuild round and must race.
        assert model.choose(batch_size=10, delta_armed=False) == "relaxation"
        assert model.choose(batch_size=None, delta_armed=False) == "race"

    def test_wide_relaxation_margin_picks_solo_relaxation(self):
        model = RaceCostModel()
        self.observe_rounds(model, relax_s=0.001, scaling_s=0.050)
        assert model.choose(batch_size=10, delta_armed=False) == "relaxation"

    def test_wide_cost_scaling_margin_picks_solo_cost_scaling(self):
        model = RaceCostModel()
        self.observe_rounds(model, relax_s=0.050, scaling_s=0.001)
        assert model.choose(batch_size=10, delta_armed=False) == "cost_scaling"

    def test_contention_disables_solo_relaxation(self):
        model = RaceCostModel(contention_limit=3.0)
        # 10 augmentations vs 100 ascents: the Figure 8/9 regime.
        self.observe_rounds(model, relax_s=0.001, scaling_s=0.050, dual_ascents=100)
        assert model.choose(batch_size=10, delta_armed=False) == "race"

    def test_probe_interval_forces_periodic_race(self):
        model = RaceCostModel(probe_interval=3)
        self.observe_rounds(model, relax_s=0.001, scaling_s=0.050)
        for _ in range(3):  # solo rounds: only the relaxation leg reports
            assert model.choose(batch_size=5, delta_armed=False) == "relaxation"
            model.observe(make_result("relaxation", 0.001, augmentations=10), None)
        assert model.choose(batch_size=5, delta_armed=False) == "race"

    def test_oversized_batches_always_race(self):
        model = RaceCostModel(always_race_batch_size=100)
        self.observe_rounds(model, relax_s=0.001, scaling_s=0.050)
        assert model.choose(batch_size=101, delta_armed=False) == "race"

    def test_delta_armed_faster_scaling_solos_without_margin(self):
        model = RaceCostModel(margin=100.0)
        self.observe_rounds(model, relax_s=0.002, scaling_s=0.001)
        assert model.choose(batch_size=10, delta_armed=True) == "cost_scaling"
        # Without the delta arm the margin gate applies and the race runs.
        assert model.choose(batch_size=10, delta_armed=False) == "race"


class TestAdaptivePolicy:
    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            DualAlgorithmExecutor(executor_policy="always")

    def test_race_policy_preserves_dual_leg_results(self):
        executor = DualAlgorithmExecutor(executor_policy="race")
        network = build_scheduling_network(seed=61, num_tasks=10)
        detailed = executor.solve_detailed(network)
        assert detailed.relaxation is not None
        assert detailed.cost_scaling is not None
        assert executor.solo_relaxation_rounds == 0
        assert executor.solo_cost_scaling_rounds == 0

    def test_auto_policy_solo_relaxation_round(self):
        from repro.flow.changes import ChangeBatch

        model = RaceCostModel()
        model.relaxation_seconds = 0.0001
        model.cost_scaling_seconds = 1.0
        model.relaxation_observations = 5
        model.cost_scaling_observations = 5
        executor = DualAlgorithmExecutor(executor_policy="auto", cost_model=model)
        network = build_scheduling_network(seed=62, num_tasks=10)
        expected = reference_min_cost(network)
        # Rebuild rounds (no batch) always race; a tracked batch arms the
        # policy decision.
        batch = ChangeBatch(changes=[], base_revision=7, target_revision=8)
        detailed = executor.solve_detailed(network, changes=batch)
        assert detailed.cost_scaling is None
        assert detailed.winner.total_cost == expected
        assert check_feasibility(network) == []
        assert executor.solo_relaxation_rounds == 1
        # The winning relaxation solution still seeds the warm state.
        assert executor.incremental.has_state
        assert detailed.effective_runtime_seconds == pytest.approx(
            detailed.relaxation.runtime_seconds
        )

    def test_auto_policy_solo_cost_scaling_round(self):
        model = RaceCostModel()
        model.relaxation_seconds = 1.0
        model.cost_scaling_seconds = 0.0001
        model.relaxation_observations = 5
        model.cost_scaling_observations = 5
        executor = DualAlgorithmExecutor(executor_policy="auto", cost_model=model)
        network = build_scheduling_network(seed=63, num_tasks=10)
        expected = reference_min_cost(network)
        from repro.flow.changes import ChangeBatch

        batch = ChangeBatch(changes=[], base_revision=7, target_revision=8)
        detailed = executor.solve_detailed(network, changes=batch)
        assert detailed.relaxation is None
        assert detailed.winner.total_cost == expected
        assert check_feasibility(network) == []
        assert executor.solo_cost_scaling_rounds == 1

    def test_auto_policy_stays_optimal_across_rounds(self):
        executor = DualAlgorithmExecutor(
            executor_policy="auto",
            cost_model=RaceCostModel(min_observations=1, probe_interval=2),
        )
        base = build_scheduling_network(seed=64, num_tasks=10)
        for round_index in range(6):
            network = base.copy()
            arc = next(a for a in network.arcs() if a.cost > 0)
            network.set_arc_cost(arc.src, arc.dst, arc.cost + round_index)
            expected = reference_min_cost(network)
            assert executor.solve(network).total_cost == expected
        assert executor.rounds == 6


class TestLegAttribution:
    def test_relaxation_loser_counters_fold_into_winner(self):
        executor = DualAlgorithmExecutor()
        relaxation = make_result(
            "relaxation", 0.5, relaxation_tree_nodes=40, dual_ascents=7
        )
        cost_scaling = make_result("incremental_cost_scaling", 0.001)
        from repro.solvers.dual_executor import DualExecutionResult

        executor._record_round(
            DualExecutionResult(
                winner=cost_scaling,
                relaxation=relaxation,
                cost_scaling=cost_scaling,
                effective_runtime_seconds=0.001,
                total_work_seconds=0.501,
            )
        )
        assert cost_scaling.statistics.relaxation_tree_nodes == 40
        assert cost_scaling.statistics.dual_ascents == 7


class TestStaticTables:
    def test_complexity_table_covers_all_algorithms(self):
        assert set(COMPLEXITY_TABLE) == {
            "relaxation",
            "cycle_canceling",
            "cost_scaling",
            "successive_shortest_path",
        }

    def test_precondition_table_matches_paper(self):
        assert PRECONDITION_TABLE["cost_scaling"]["feasibility"]
        assert PRECONDITION_TABLE["cost_scaling"]["epsilon_optimality"]
        assert PRECONDITION_TABLE["relaxation"]["reduced_cost_optimality"]
        assert not PRECONDITION_TABLE["relaxation"]["feasibility"]
        assert PRECONDITION_TABLE["cycle_canceling"]["feasibility"]
        assert PRECONDITION_TABLE["successive_shortest_path"]["reduced_cost_optimality"]

    def test_statistics_merge(self):
        first = SolverStatistics(iterations=2, pushes=3)
        second = SolverStatistics(iterations=1, relabels=4, warm_start=True)
        merged = first.merge(second)
        assert merged.iterations == 3
        assert merged.pushes == 3
        assert merged.relabels == 4
        assert merged.warm_start
