"""Unit tests for incremental cost scaling and the task-removal heuristic."""

import pytest

from repro.flow.graph import FlowNetwork, NodeType
from repro.flow.validation import check_feasibility
from repro.solvers.incremental import (
    IncrementalCostScalingSolver,
    drain_removed_task_flow,
)
from tests.conftest import build_scheduling_network, reference_min_cost


def quincy_like_network(num_tasks=6, num_machines=3):
    """Scheduling network with an explicit cluster aggregator layer."""
    net = FlowNetwork()
    sink = net.add_node(NodeType.SINK, supply=-num_tasks, name="S")
    aggregator = net.add_node(NodeType.CLUSTER_AGGREGATOR, name="X")
    machines = []
    for index in range(num_machines):
        machine = net.add_node(NodeType.MACHINE, name=f"M{index}", ref=index)
        machines.append(machine)
        net.add_arc(machine.node_id, sink.node_id, 2, 0)
        net.add_arc(aggregator.node_id, machine.node_id, 2, index + 1)
    unsched = net.add_node(NodeType.UNSCHEDULED_AGGREGATOR, name="U0")
    net.add_arc(unsched.node_id, sink.node_id, num_tasks, 0)
    tasks = []
    for index in range(num_tasks):
        task = net.add_node(NodeType.TASK, supply=1, name=f"T{index}", ref=index)
        tasks.append(task)
        net.add_arc(task.node_id, aggregator.node_id, 1, 0)
        net.add_arc(task.node_id, unsched.node_id, 1, 40)
    return net, tasks, machines, aggregator, unsched, sink


class TestStatefulSolving:
    def test_first_solve_runs_from_scratch(self):
        solver = IncrementalCostScalingSolver()
        network = build_scheduling_network(seed=31)
        expected = reference_min_cost(network)
        assert not solver.has_state
        result = solver.solve(network)
        assert result.total_cost == expected
        assert solver.has_state
        assert not result.statistics.warm_start

    def test_second_solve_warm_starts(self):
        solver = IncrementalCostScalingSolver()
        network = build_scheduling_network(seed=32)
        solver.solve(network.copy())
        second = solver.solve(network.copy())
        assert second.statistics.warm_start
        assert second.total_cost == reference_min_cost(network)

    def test_reset_discards_state(self):
        solver = IncrementalCostScalingSolver()
        solver.solve(build_scheduling_network(seed=33))
        solver.reset()
        assert not solver.has_state

    def test_seed_installs_external_solution(self):
        from repro.solvers.relaxation import RelaxationSolver

        network = build_scheduling_network(seed=34)
        relaxation = RelaxationSolver().solve(network.copy())
        solver = IncrementalCostScalingSolver()
        solver.seed(relaxation.flows, relaxation.potentials)
        assert solver.has_state
        result = solver.solve(network.copy())
        assert result.statistics.warm_start
        assert result.total_cost == relaxation.total_cost

    def test_reoptimizes_after_cost_changes(self):
        solver = IncrementalCostScalingSolver()
        network, tasks, machines, aggregator, unsched, sink = quincy_like_network()
        solver.solve(network)
        # Make machine 0 very expensive; the optimum must shift away from it.
        changed = network.copy()
        changed.set_arc_cost(aggregator.node_id, machines[0].node_id, 99)
        changed.clear_flow()
        expected = reference_min_cost(changed)
        result = solver.solve(changed)
        assert result.total_cost == expected
        assert check_feasibility(changed) == []

    def test_handles_task_arrivals_and_departures(self):
        solver = IncrementalCostScalingSolver()
        network, tasks, machines, aggregator, unsched, sink = quincy_like_network(num_tasks=4)
        solver.solve(network)

        # One task finishes (node removed), one new task arrives.
        evolved = network.copy()
        evolved.remove_node(tasks[0].node_id)
        new_task = evolved.add_node(NodeType.TASK, supply=1, name="Tnew")
        evolved.add_arc(new_task.node_id, aggregator.node_id, 1, 0)
        evolved.add_arc(new_task.node_id, unsched.node_id, 1, 40)
        evolved.set_supply(sink.node_id, -4)
        evolved.clear_flow()
        expected = reference_min_cost(evolved)
        result = solver.solve(evolved)
        assert result.total_cost == expected
        assert check_feasibility(evolved) == []


class TestTaskRemovalHeuristic:
    def test_drain_removes_stale_flow_path(self):
        network, tasks, machines, aggregator, unsched, sink = quincy_like_network(num_tasks=3)
        # Build a warm flow where task 0 ran via the aggregator on machine 0.
        warm_flows = {
            (tasks[0].node_id, aggregator.node_id): 1,
            (aggregator.node_id, machines[0].node_id): 1,
            (machines[0].node_id, sink.node_id): 1,
        }
        # The task node disappears (completion) before the next run.
        network.remove_node(tasks[0].node_id)
        network.set_supply(sink.node_id, -2)
        drained = drain_removed_task_flow(network, warm_flows)
        assert drained == 1
        assert warm_flows == {}

    def test_drain_keeps_flow_of_live_tasks(self):
        network, tasks, machines, aggregator, unsched, sink = quincy_like_network(num_tasks=2)
        warm_flows = {
            (tasks[0].node_id, aggregator.node_id): 1,
            (tasks[1].node_id, aggregator.node_id): 1,
            (aggregator.node_id, machines[0].node_id): 2,
            (machines[0].node_id, sink.node_id): 2,
        }
        drained = drain_removed_task_flow(network, dict_copy := dict(warm_flows))
        assert drained == 0
        assert dict_copy == warm_flows

    def test_heuristic_toggle_produces_same_cost(self):
        for enabled in (True, False):
            solver = IncrementalCostScalingSolver(efficient_task_removal=enabled)
            network, tasks, machines, aggregator, unsched, sink = quincy_like_network()
            solver.solve(network)
            evolved = network.copy()
            evolved.remove_node(tasks[0].node_id)
            evolved.set_supply(sink.node_id, sink.supply + 1)
            evolved.clear_flow()
            expected = reference_min_cost(evolved)
            assert solver.solve(evolved).total_cost == expected

    def test_price_refine_toggle_produces_same_cost(self):
        for enabled in (True, False):
            solver = IncrementalCostScalingSolver(apply_price_refine=enabled)
            network = build_scheduling_network(seed=36, num_tasks=10)
            solver.solve(network.copy())
            changed = network.copy()
            arc = next(a for a in changed.arcs() if a.cost > 0)
            changed.set_arc_cost(arc.src, arc.dst, arc.cost + 7)
            expected = reference_min_cost(changed)
            assert solver.solve(changed).total_cost == expected
