"""Tests for the stateful incremental relaxation solver (Section 5.2)."""

from __future__ import annotations

import pytest

from repro.flow.validation import check_feasibility, check_reduced_cost_optimality
from repro.solvers import (
    IncrementalRelaxationSolver,
    RelaxationSolver,
    make_solver,
)

from tests.conftest import (
    build_contended_network,
    build_scheduling_network,
    reference_min_cost,
)


class TestIncrementalRelaxation:
    def test_first_solve_runs_from_scratch_and_is_optimal(self):
        network = build_scheduling_network(seed=2)
        solver = IncrementalRelaxationSolver()
        assert not solver.has_state
        result = solver.solve(network)
        assert result.total_cost == reference_min_cost(network)
        assert solver.has_state

    def test_second_solve_warm_starts_and_stays_optimal(self):
        network = build_scheduling_network(seed=4)
        solver = IncrementalRelaxationSolver()
        solver.solve(network.copy())
        result = solver.solve(network.copy())
        assert result.statistics.warm_start
        assert result.total_cost == reference_min_cost(network)
        assert result.algorithm == "incremental_relaxation"

    def test_warm_start_tracks_graph_changes(self):
        network = build_scheduling_network(seed=6)
        solver = IncrementalRelaxationSolver()
        solver.solve(network.copy())

        changed = network.copy()
        # Make one machine's slots cheaper and another unusable, then re-solve.
        machine_arcs = [
            arc for arc in changed.arcs()
            if changed.node(arc.dst).name.startswith("M")
        ]
        changed.set_arc_cost(machine_arcs[0].src, machine_arcs[0].dst, 0)
        result = solver.solve(changed)
        assert result.total_cost == reference_min_cost(changed)
        assert not check_feasibility(changed)

    def test_result_satisfies_reduced_cost_optimality(self):
        network = build_scheduling_network(seed=8)
        solver = IncrementalRelaxationSolver()
        solver.solve(network)
        second = build_scheduling_network(seed=8)
        result = solver.solve(second)
        violations = check_reduced_cost_optimality(second, result.potentials)
        assert not violations

    def test_reset_discards_state(self):
        solver = IncrementalRelaxationSolver()
        solver.solve(build_scheduling_network(seed=1))
        solver.reset()
        assert not solver.has_state
        result = solver.solve(build_scheduling_network(seed=1))
        assert not result.statistics.warm_start

    def test_seed_installs_external_state(self):
        network = build_scheduling_network(seed=9)
        from_scratch = RelaxationSolver().solve(network.copy())
        solver = IncrementalRelaxationSolver()
        solver.seed(from_scratch.flows, from_scratch.potentials)
        assert solver.has_state
        result = solver.solve(network.copy())
        assert result.statistics.warm_start
        assert result.total_cost == from_scratch.total_cost

    def test_contended_graph_still_optimal_when_warm(self):
        network = build_contended_network(num_tasks=30, num_machines=3)
        solver = IncrementalRelaxationSolver()
        solver.solve(network.copy())
        result = solver.solve(network.copy())
        assert result.total_cost == reference_min_cost(network)

    def test_available_through_make_solver(self):
        solver = make_solver("incremental_relaxation")
        assert isinstance(solver, IncrementalRelaxationSolver)


class TestSingleStatePath:
    """Seeding, resetting, and the post-solve update share one code path,
    and the wrapper's dicts are the only live copy of the solution."""

    def test_state_mutations_drop_underlying_residual(self):
        solver = IncrementalRelaxationSolver()
        network = build_scheduling_network(seed=11)
        solver.solve(network.copy())
        # The post-solve install must already have dropped the residual the
        # underlying solve created: one source of truth, not two.
        assert solver._relaxation.last_residual is None

        from_scratch = RelaxationSolver().solve(network.copy())
        solver.seed(from_scratch.flows, from_scratch.potentials)
        assert solver._relaxation.last_residual is None
        assert solver.has_state

        solver.reset()
        assert not solver.has_state
        assert solver._relaxation.last_residual is None

    def test_seed_copies_its_inputs(self):
        solver = IncrementalRelaxationSolver()
        network = build_scheduling_network(seed=12)
        from_scratch = RelaxationSolver().solve(network.copy())
        flows = dict(from_scratch.flows)
        solver.seed(flows, from_scratch.potentials)
        flows.clear()  # caller's dict must not alias the installed state
        result = solver.solve(network.copy())
        assert result.statistics.warm_start
        assert result.total_cost == from_scratch.total_cost
