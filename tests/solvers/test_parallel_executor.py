"""Unit tests for the subprocess-racing speculative dual executor."""

from __future__ import annotations

import time
from collections import deque

import pytest

from repro.chaos import ChaosPolicy
from repro.flow.changes import ChangeBatch
from repro.flow.dimacs import read_dimacs
from repro.flow.validation import check_feasibility
from repro.solvers.base import SolveAborted
from repro.solvers.cost_scaling import CostScalingSolver
from repro.solvers.parallel_executor import (
    ParallelDualExecutor,
    _RoundRace,
)
from repro.solvers.relaxation import RelaxationSolver
from repro.solvers.worker_health import BREAKER_OPEN, WorkerCircuitBreaker
from tests.conftest import build_scheduling_network, reference_min_cost


@pytest.fixture
def executor():
    """A real ParallelDualExecutor, shut down after the test."""
    instance = ParallelDualExecutor()
    yield instance
    instance.close()


def perturbed_rounds(seed: int, rounds: int):
    """Yield ``(network, changes, expected_cost)`` rounds of small edits."""
    previous = build_scheduling_network(seed=seed, num_tasks=10)
    yield previous, None, reference_min_cost(previous)
    for index in range(rounds):
        network = previous.copy()
        arc = next(a for a in network.arcs() if a.cost > 0)
        network.set_arc_cost(arc.src, arc.dst, arc.cost + index + 1)
        network.revision = previous.revision + 1
        changes = ChangeBatch.diff(previous, network)
        changes.base_revision = previous.revision
        changes.target_revision = network.revision
        yield network, changes, reference_min_cost(network)
        previous = network


class TestParallelRace:
    def test_winner_is_optimal_and_applied_to_network(self, executor):
        network = build_scheduling_network(seed=41, num_tasks=10)
        expected = reference_min_cost(network)
        detailed = executor.solve_detailed(network)
        assert detailed.executor == "parallel"
        assert detailed.winner.total_cost == expected
        assert check_feasibility(network) == []
        assert executor.rounds == 1
        assert executor.relaxation_wins + executor.cost_scaling_wins == 1

    def test_multi_round_with_change_batches_stays_optimal(self, executor):
        solo_armed_rounds = 0
        for network, changes, expected in perturbed_rounds(seed=45, rounds=4):
            if changes is not None and executor.incremental.can_solve_delta(changes):
                solo_armed_rounds += 1
            result = executor.solve(network, changes=changes)
            assert result.total_cost == expected
            assert check_feasibility(network) == []
        assert executor.rounds == 5
        assert executor.fallback_rounds == 0
        assert executor.full_payloads >= 1
        # Delta-armed rounds with small batches skip speculation entirely.
        assert executor.solo_delta_rounds == solo_armed_rounds

    def test_delta_wire_protocol_used_when_every_round_races(self):
        # Forcing every round to race (threshold 0) exercises the
        # incremental wire protocol: revision-chained rounds must cross the
        # process boundary as deltas, not full snapshots.
        instance = ParallelDualExecutor(delta_solo_threshold=0)
        try:
            for network, changes, expected in perturbed_rounds(seed=44, rounds=4):
                result = instance.solve(network, changes=changes)
                assert result.total_cost == expected
            assert instance.full_payloads >= 1
            assert (
                instance.delta_payloads >= 1
                or instance.skipped_worker_rounds > 0
            )
        finally:
            instance.close()

    def test_wall_clock_is_measured_not_summed(self, executor):
        network = build_scheduling_network(seed=46, num_tasks=10)
        detailed = executor.solve_detailed(network)
        assert detailed.wall_clock_seconds > 0
        assert detailed.effective_runtime_seconds == detailed.wall_clock_seconds
        # The race returns when the first finisher is done, so the round can
        # never have cost the sum of two full solo runs plus slack.
        if detailed.relaxation is not None and detailed.cost_scaling is not None:
            total = (
                detailed.relaxation.runtime_seconds
                + detailed.cost_scaling.runtime_seconds
            )
            assert detailed.wall_clock_seconds < total + 1.0

    def test_close_terminates_worker_and_is_idempotent(self):
        instance = ParallelDualExecutor()
        network = build_scheduling_network(seed=47)
        instance.solve(network)
        process = instance._process
        assert process is not None and process.is_alive()
        instance.close()
        assert not process.is_alive()
        instance.close()  # idempotent

    def test_worker_death_triggers_transparent_respawn(self):
        instance = ParallelDualExecutor(spawn_retries=1)
        try:
            network = build_scheduling_network(seed=48, num_tasks=8)
            expected = reference_min_cost(network)
            assert instance.solve(network.copy()).total_cost == expected

            # Kill the worker; the next round must respawn transparently
            # (the breaker backs an isolated first failure off zero rounds).
            instance._process.terminate()
            instance._process.join(timeout=5.0)
            assert instance.solve(network.copy()).total_cost == expected
            assert instance.fallback_rounds == 0
            assert instance.worker_respawns == 1
            assert instance.breaker.is_closed

            # A second isolated death respawns again: the served round in
            # between reset the consecutive-failure count.  (The old
            # one-shot spawn budget fell back permanently here.)
            instance._process.terminate()
            instance._process.join(timeout=5.0)
            result = instance.solve_detailed(network.copy())
            assert result.executor == "parallel"
            assert result.winner.total_cost == expected
            assert instance.worker_respawns == 2
            assert instance.fallback_rounds == 0
            assert instance.breaker.is_closed
        finally:
            instance.close()


def drain_until_idle(instance, timeout=5.0):
    """Wait until the worker has answered every shipped round."""
    deadline = time.perf_counter() + timeout
    while instance._unanswered and time.perf_counter() < deadline:
        time.sleep(0.01)
        instance._drain_pending()
    assert not instance._unanswered


class TestRecoveryPaths:
    """Worker death mid-round, broken pipe during delta ship, and the
    breaker's fallback -> probe respawn -> recovery cycle."""

    def test_chaos_worker_kill_mid_round_recovers(self):
        chaos = ChaosPolicy(schedule={"worker_kill": [0]})
        instance = ParallelDualExecutor(chaos=chaos, delta_solo_threshold=0)
        try:
            for network, changes, expected in perturbed_rounds(seed=60, rounds=3):
                result = instance.solve(network, changes=changes)
                assert result.total_cost == expected
                assert check_feasibility(network) == []
            assert chaos.injected.get("worker_kill") == 1
            # One injected kill is an isolated failure: respawn, never
            # fallback, breaker stays closed.
            assert instance.worker_respawns >= 1
            assert instance.fallback_rounds == 0
            assert instance.breaker.is_closed
        finally:
            instance.close()

    def test_chaos_pipe_break_during_delta_ship_recovers(self):
        # Draining between rounds keeps the worker's revision chain intact,
        # so round 2's payload is an incremental delta -- and the injected
        # fault breaks the pipe out from under exactly that send.
        chaos = ChaosPolicy(schedule={"pipe_break": [2]})
        instance = ParallelDualExecutor(chaos=chaos, delta_solo_threshold=0)
        try:
            for index, (network, changes, expected) in enumerate(
                perturbed_rounds(seed=61, rounds=4)
            ):
                result = instance.solve(network, changes=changes)
                assert result.total_cost == expected
                drain_until_idle(instance)
            assert chaos.injected.get("pipe_break") == 1
            assert instance.delta_payloads >= 1
            # The respawned worker has no shadow; the post-break round
            # ships a full snapshot (cold start's plus the resync's).
            assert instance.full_payloads >= 2
            assert instance.fallback_rounds == 0
            assert instance.breaker.is_closed
        finally:
            instance.close()

    def test_breaker_trips_to_fallback_then_probe_recovers(self, monkeypatch):
        import multiprocessing

        real_get_context = multiprocessing.get_context
        broken = {"on": True}

        def flaky_get_context(*args, **kwargs):
            if broken["on"]:
                raise OSError("spawn refused")
            return real_get_context(*args, **kwargs)

        monkeypatch.setattr(multiprocessing, "get_context", flaky_get_context)
        breaker = WorkerCircuitBreaker(failure_threshold=1, probe_interval_rounds=2)
        instance = ParallelDualExecutor(breaker=breaker)
        try:
            network = build_scheduling_network(seed=62, num_tasks=8)
            expected = reference_min_cost(network)

            # Round 1: the spawn fails, the breaker (threshold 1) trips
            # open, and the round is served by the sequential fallback.
            result = instance.solve_detailed(network.copy())
            assert result.executor == "sequential_fallback"
            assert result.winner.total_cost == expected
            assert breaker.state == BREAKER_OPEN
            assert result.winner.statistics.breaker_open == 1
            assert instance.charges_wall_clock is False

            # Round 2: still open, not yet the probe window -- fallback
            # again, with no spawn attempt burned.
            result = instance.solve_detailed(network.copy())
            assert result.executor == "sequential_fallback"
            assert breaker.probes == 0

            # Round 3: probe window.  The environment recovered, the probe
            # respawn succeeds, and the served round re-closes the breaker.
            broken["on"] = False
            result = instance.solve_detailed(network.copy())
            assert result.executor == "parallel"
            assert result.winner.total_cost == expected
            assert breaker.is_closed
            assert breaker.trips == 1
            assert breaker.probes == 1
            assert breaker.reclosures == 1
            assert instance.fallback_rounds == 2
            assert instance.charges_wall_clock is True
        finally:
            instance.close()

    def test_close_with_already_dead_worker(self):
        instance = ParallelDualExecutor()
        instance.solve(build_scheduling_network(seed=63))
        instance._process.terminate()
        instance._process.join(timeout=5.0)
        instance.close()  # must not raise on the dead pipe
        instance.close()  # and stays idempotent

    def test_solve_after_close_raises_instead_of_hanging(self):
        instance = ParallelDualExecutor()
        network = build_scheduling_network(seed=64)
        instance.solve(network)
        instance.close()
        with pytest.raises(RuntimeError, match="closed"):
            instance.solve(network.copy())


class TestAdaptivePolicy:
    def test_auto_solo_relaxation_waits_on_worker(self):
        from repro.solvers.dual_executor import RaceCostModel

        model = RaceCostModel()
        model.relaxation_seconds = 0.0001
        model.cost_scaling_seconds = 10.0
        model.relaxation_observations = 5
        model.cost_scaling_observations = 5
        instance = ParallelDualExecutor(executor_policy="auto", cost_model=model)
        try:
            network = build_scheduling_network(seed=54, num_tasks=10)
            expected = reference_min_cost(network)
            batch = ChangeBatch(changes=[], base_revision=7, target_revision=8)
            detailed = instance.solve_detailed(network, changes=batch)
            assert detailed.winner.total_cost == expected
            assert detailed.winning_algorithm == "relaxation"
            assert detailed.cost_scaling is None
            assert instance.solo_relaxation_rounds == 1
            assert check_feasibility(network) == []
            # The idle parent contributed no speculation work.
            assert detailed.total_work_seconds == pytest.approx(
                detailed.relaxation.runtime_seconds
            )
        finally:
            instance.close()

    def test_auto_solo_cost_scaling_leaves_worker_idle(self):
        from repro.solvers.dual_executor import RaceCostModel

        model = RaceCostModel()
        model.relaxation_seconds = 10.0
        model.cost_scaling_seconds = 0.0001
        model.relaxation_observations = 5
        model.cost_scaling_observations = 5
        instance = ParallelDualExecutor(executor_policy="auto", cost_model=model)
        try:
            network = build_scheduling_network(seed=55, num_tasks=10)
            expected = reference_min_cost(network)
            batch = ChangeBatch(changes=[], base_revision=7, target_revision=8)
            detailed = instance.solve_detailed(network, changes=batch)
            assert detailed.winner.total_cost == expected
            assert detailed.relaxation is None
            assert instance.solo_cost_scaling_rounds == 1
            assert instance.full_payloads + instance.delta_payloads == 0
        finally:
            instance.close()

    def test_equal_revision_hand_built_networks_both_ship_full(self):
        """Two unrelated networks sharing the default revision must not be
        bridged by an empty delta: without a revision-chained batch the
        worker's shadow lineage is unproven and the round ships full."""
        net_a = build_scheduling_network(seed=101, num_tasks=8)
        net_b = build_scheduling_network(seed=202, num_tasks=12)
        assert net_a.revision == net_b.revision
        instance = ParallelDualExecutor()
        try:
            assert instance.solve(net_a).total_cost == reference_min_cost(net_a)
            assert instance.solve(net_b).total_cost == reference_min_cost(net_b)
            # The second round may be skipped entirely when the worker's
            # first answer has not drained yet (the documented busy-worker
            # path); what must never happen is an incremental bridge
            # between the two unrelated graphs.
            assert instance.delta_payloads == 0
            assert instance.full_payloads >= 1
            assert (
                instance.full_payloads + instance.skipped_worker_rounds == 2
            )
        finally:
            instance.close()

    def test_fallback_rounds_keep_solo_counters_live(self, monkeypatch):
        import multiprocessing

        from repro.solvers.dual_executor import RaceCostModel

        monkeypatch.setattr(
            multiprocessing,
            "get_context",
            lambda *a, **k: (_ for _ in ()).throw(OSError("unavailable")),
        )
        model = RaceCostModel()
        model.relaxation_seconds = 0.0001
        model.cost_scaling_seconds = 1.0
        model.relaxation_observations = 5
        model.cost_scaling_observations = 5
        instance = ParallelDualExecutor(executor_policy="auto", cost_model=model)
        try:
            network = build_scheduling_network(seed=57, num_tasks=8)
            batch = ChangeBatch(changes=[], base_revision=7, target_revision=8)
            detailed = instance.solve_detailed(network, changes=batch)
            assert detailed.executor == "sequential_fallback"
            # The inner sequential executor served the round solo; the
            # outer executor's documented counters must reflect it.
            assert instance.solo_relaxation_rounds == 1
            assert instance.rounds == 1
        finally:
            instance.close()

    def test_race_policy_is_default_and_unchanged(self):
        instance = ParallelDualExecutor()
        try:
            assert instance.executor_policy == "race"
            network = build_scheduling_network(seed=56, num_tasks=8)
            instance.solve(network)
            assert instance.solo_relaxation_rounds == 0
            assert instance.solo_cost_scaling_rounds == 0
        finally:
            instance.close()


class TestSequentialFallback:
    def test_fallback_when_multiprocessing_unavailable(self, monkeypatch):
        import multiprocessing

        def broken_get_context(*args, **kwargs):
            raise OSError("no process support in this environment")

        monkeypatch.setattr(multiprocessing, "get_context", broken_get_context)
        instance = ParallelDualExecutor()
        try:
            network = build_scheduling_network(seed=49, num_tasks=8)
            expected = reference_min_cost(network)
            detailed = instance.solve_detailed(network)
            assert detailed.executor == "sequential_fallback"
            assert detailed.winner.total_cost == expected
            # Both component results exist on the sequential path.
            assert detailed.relaxation is not None
            assert detailed.cost_scaling is not None
        finally:
            instance.close()

    def test_fallback_reverts_to_modeled_runtime_charging(self, monkeypatch):
        import multiprocessing

        monkeypatch.setattr(
            multiprocessing,
            "get_context",
            lambda *a, **k: (_ for _ in ()).throw(OSError("unavailable")),
        )
        instance = ParallelDualExecutor()
        try:
            # While racing for real the scheduler must charge measured wall
            # clock; once sequential fallback kicks in the rounds run back
            # to back again and wall clock would double-charge the loser.
            assert instance.charges_wall_clock is True
            instance.solve(build_scheduling_network(seed=53))
            assert instance.charges_wall_clock is False
        finally:
            instance.close()

    def test_fallback_shares_component_solvers(self, monkeypatch):
        import multiprocessing

        monkeypatch.setattr(
            multiprocessing,
            "get_context",
            lambda *a, **k: (_ for _ in ()).throw(OSError("unavailable")),
        )
        instance = ParallelDualExecutor()
        try:
            instance.solve(build_scheduling_network(seed=50))
            assert instance._fallback is not None
            assert instance._fallback.incremental is instance.incremental
            assert instance._fallback.relaxation is instance.relaxation
        finally:
            instance.close()


class _InstantWorkerConn:
    """Pipe stand-in whose 'worker' answers each request synchronously.

    The response's ``finished_at`` stamp predates any parent-side work, so
    the relaxation side deterministically wins the race -- exercising the
    parent-side cancellation path without real subprocess timing.
    """

    def __init__(self):
        self.responses = deque()
        self.requests = 0

    def send(self, message):
        kind, round_id, text = message[0], message[1], message[2]
        assert kind == "full"  # no revision chain exists in these tests
        self.requests += 1
        result = RelaxationSolver().solve(read_dimacs(text))
        self.responses.append(
            (
                "result",
                round_id,
                {
                    "total_cost": result.total_cost,
                    "flows": result.flows,
                    "potentials": result.potentials,
                    "runtime_seconds": result.runtime_seconds,
                    "iterations": result.statistics.iterations,
                    "augmentations": result.statistics.augmentations,
                    "relaxation_tree_nodes": result.statistics.relaxation_tree_nodes,
                    "dual_ascents": result.statistics.dual_ascents,
                    "finished_at": float("-inf"),
                },
            )
        )

    def poll(self, timeout=0):
        return bool(self.responses)

    def recv(self):
        return self.responses.popleft()

    def close(self):
        pass


class TestLoserCancellation:
    def test_relaxation_win_cancels_parent_and_seeds_warm_start(self):
        instance = ParallelDualExecutor()
        instance._conn = _InstantWorkerConn()
        instance._process = None  # treated as alive by _ensure_worker
        try:
            network = build_scheduling_network(seed=51, num_tasks=10)
            expected = reference_min_cost(network)
            detailed = instance.solve_detailed(network)
            assert detailed.winning_algorithm == "relaxation"
            assert detailed.winner.total_cost == expected
            assert check_feasibility(network) == []
            # The winning relaxation solution seeded the warm-start state.
            assert instance.incremental.has_state
            assert instance.relaxation_wins == 1
        finally:
            instance._conn = None
            instance.close()

    def test_abort_check_cancels_cost_scaling_run(self):
        solver = CostScalingSolver()
        solver.abort_check = lambda: True
        network = build_scheduling_network(seed=52, num_tasks=10)
        with pytest.raises(SolveAborted):
            solver.solve(network)
        # Clearing the hook restores normal operation.
        solver.abort_check = None
        result = solver.solve(network)
        assert result.total_cost == reference_min_cost(network)


class TestRoundRace:
    def test_stale_responses_are_discarded(self):
        conn = _InstantWorkerConn()
        # Queue a stale round-1 response and a current round-2 response.
        conn.responses.append(("result", 1, {"finished_at": 0.0}))
        payload = {"finished_at": 1.0}
        conn.responses.append(("result", 2, payload))
        unanswered = {1, 2}
        race = _RoundRace(conn, round_id=2, unanswered=unanswered)
        assert race() is True
        assert race.payload is payload
        assert unanswered == set()

    def test_worker_error_does_not_abort_parent(self):
        conn = _InstantWorkerConn()
        conn.responses.append(("error", 7, "InfeasibleProblemError: nope"))
        race = _RoundRace(conn, round_id=7, unanswered={7})
        assert race() is False
        assert race.worker_error is not None

    def test_wait_times_out(self):
        race = _RoundRace(_InstantWorkerConn(), round_id=1, unanswered=set())
        start = time.perf_counter()
        assert race.wait(0.05) is False
        assert time.perf_counter() - start < 2.0
