"""Fuzzed epsilon-optimality invariant suite for the price-refine variants.

Cost scaling's correctness hangs on one state invariant: whenever the
solver believes its potentials prove (epsilon-)optimality, no residual arc
with remaining capacity may have reduced cost below ``-epsilon``.  Every
refine, price-refine, and repair step claims to establish or preserve it,
and a silent violation surfaces only rounds later as a wrong optimum --
the hardest kind of bug to attribute.  In the spirit of state-invariant
checking for debugging complex systems (Xiang et al., OSDI operational
debugging literature), this suite makes the invariant *continuously
enforced* under fuzzing: an instrumented solver asserts epsilon-optimality
after every internal step, across randomized graphs and multi-round change
batches, for every price-refine variant.

Covered:

* ``price_refine_spfa`` and ``price_refine_dijkstra`` agree on whether the
  flow is optimal, and both leave 0-optimal potentials on success and
  untouched potentials on failure.
* The instrumented :class:`CostScalingSolver` (epsilon asserted after every
  ``_refine`` phase, price refine, and warm repair) solves fuzzed networks
  from scratch and via warm handoffs.
* The incremental solver's *persistence contract*: after every multi-round
  delta/warm solve the retained residual is 0-optimal -- the precondition
  the next round's ``solve_delta`` builds on.
"""

from __future__ import annotations

import random

import pytest

from repro.flow.changes import ChangeBatch
from repro.flow.validation import (
    assert_epsilon_optimal,
    check_residual_epsilon_optimality,
)
from repro.solvers import (
    IncrementalCostScalingSolver,
    RelaxationSolver,
)
from repro.solvers.base import SolverStatistics
from repro.solvers.cost_scaling import (
    PRICE_REFINE_MODES,
    CostScalingSolver,
    price_refine_dijkstra,
    price_refine_spfa,
)
from repro.solvers.residual import ResidualNetwork
from tests.conftest import reference_min_cost
from tests.solvers.equivalence_harness import generate_network, perturb_network

VARIANTS = ("spfa", "dijkstra")

#: Fuzz seeds for the function-level and solver-level sweeps.
SEEDS = range(12)


class InvariantCheckingSolver(CostScalingSolver):
    """Cost scaling with the epsilon-optimality invariant asserted after
    every internal step that claims to establish or preserve it."""

    def _refine(self, residual, epsilon, stats):
        super()._refine(residual, epsilon, stats)
        assert_epsilon_optimal(residual, epsilon)

    def _price_refine(self, residual, stats, seed_arcs=None):
        ok = super()._price_refine(residual, stats, seed_arcs=seed_arcs)
        if ok:
            assert_epsilon_optimal(residual, 0)
        return ok

    def _repair_warm_solution(self, residual, stats):
        super()._repair_warm_solution(residual, stats)
        assert_epsilon_optimal(residual, 0)

    def _route_excesses(self, residual, stats):
        super()._route_excesses(residual, stats)
        assert_epsilon_optimal(residual, 0)


def make_invariant_checked_incremental(mode: str) -> IncrementalCostScalingSolver:
    """An incremental solver whose inner cost scaling asserts the invariant."""
    solver = IncrementalCostScalingSolver(price_refine=mode)
    solver._cost_scaling = InvariantCheckingSolver(
        polish_potentials=True, price_refine=mode
    )
    return solver


def build_warm_residual(network, flows) -> ResidualNetwork:
    """Build a scaled residual carrying ``flows``, zero potentials."""
    net = network.copy()
    for arc in net.arcs():
        arc.flow = min(flows.get(arc.key(), 0), arc.capacity)
    residual = ResidualNetwork(net, use_existing_flow=True)
    residual.scale_costs(residual.num_nodes + 1)
    return residual


# --------------------------------------------------------------------- #
# Function-level equivalence of the two variants
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("seed", SEEDS)
def test_variants_agree_and_leave_zero_optimal_potentials(seed):
    """Both variants detect optimality identically; success => 0-optimal."""
    rng = random.Random(seed)
    network = generate_network(rng)
    flows = RelaxationSolver().solve(network.copy()).flows

    spfa_residual = build_warm_residual(network, flows)
    dijkstra_residual = build_warm_residual(network, flows)

    stats = SolverStatistics()
    ok_spfa = price_refine_spfa(spfa_residual, stats=stats)
    ok_dijkstra = price_refine_dijkstra(dijkstra_residual, stats=stats)
    assert ok_spfa and ok_dijkstra, (
        f"seed {seed}: refine rejected an optimal relaxation flow "
        f"(spfa={ok_spfa}, dijkstra={ok_dijkstra})"
    )
    assert_epsilon_optimal(spfa_residual, 0)
    assert_epsilon_optimal(dijkstra_residual, 0)
    assert stats.price_refine_passes > 0


@pytest.mark.parametrize("seed", SEEDS)
def test_seeded_refine_repairs_only_violations(seed):
    """Seeding from near-valid potentials restores 0-optimality."""
    rng = random.Random(seed)
    network = generate_network(rng)
    result = RelaxationSolver().solve(network.copy())

    residual = build_warm_residual(network, result.flows)
    # Relaxation's potentials are exact under scaling: load them and then
    # perturb a few nodes so a bounded violation set appears.
    residual.load_potentials(result.potentials)
    scale = residual.cost_scale
    for i in range(residual.num_nodes):
        residual.potential[i] *= scale
    indices = rng.sample(range(residual.num_nodes), min(3, residual.num_nodes))
    for i in indices:
        residual.potential[i] += rng.randint(1, 4) * scale

    worst, violated = CostScalingSolver()._scan_violations(residual)
    ok = price_refine_dijkstra(residual, seed_arcs=violated)
    assert ok, f"seed {seed}: seeded refine rejected an optimal flow"
    assert_epsilon_optimal(residual, 0)


def test_dijkstra_detects_negative_cycle_and_leaves_potentials_untouched():
    """A residual with a negative cycle is rejected without side effects."""
    from repro.flow.graph import FlowNetwork, NodeType

    network = FlowNetwork()
    a = network.add_node(NodeType.TASK, supply=0, name="a")
    b = network.add_node(NodeType.MACHINE, name="b")
    network.add_arc(a.node_id, b.node_id, 1, -5)
    network.add_arc(b.node_id, a.node_id, 1, 2)
    residual = ResidualNetwork(network)
    before = list(residual.potential)
    assert not price_refine_dijkstra(residual)
    assert list(residual.potential) == before
    assert not price_refine_spfa(residual)
    assert list(residual.potential) == before


def test_dijkstra_pop_budget_gives_up_without_side_effects():
    """An exhausted ``max_pops`` budget returns False, potentials intact."""
    rng = random.Random(3)
    network = generate_network(rng)
    flows = RelaxationSolver().solve(network.copy()).flows
    residual = build_warm_residual(network, flows)
    before = list(residual.potential)
    assert not price_refine_dijkstra(residual, max_pops=1)
    assert list(residual.potential) == before
    # Without the budget the same refine succeeds.
    assert price_refine_dijkstra(residual)
    assert_epsilon_optimal(residual, 0)


def test_empty_network_both_variants():
    from repro.flow.graph import FlowNetwork

    assert price_refine_spfa(ResidualNetwork(FlowNetwork()))
    assert price_refine_dijkstra(ResidualNetwork(FlowNetwork()))


# --------------------------------------------------------------------- #
# Solver-level: invariant asserted after every internal step
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("mode", PRICE_REFINE_MODES)
@pytest.mark.parametrize("seed", SEEDS)
def test_invariant_holds_through_multi_round_solves(seed, mode):
    """Fuzzed multi-round churn: every refine/price-refine/repair step of
    every round preserves epsilon-optimality, the retained residual honours
    the 0-optimality persistence contract, and costs match the oracle."""
    rng = random.Random(seed)
    network = generate_network(rng)
    solver = make_invariant_checked_incremental(mode)

    changes = None
    for round_index in range(4):
        expected = reference_min_cost(network)
        result = solver.solve(network.copy(), changes=changes)
        assert result.total_cost == expected, (
            f"seed {seed} round {round_index} mode {mode}: cost "
            f"{result.total_cost} != oracle {expected}"
        )
        retained = solver._cost_scaling.last_residual
        assert retained is not None
        assert_epsilon_optimal(retained, 0)
        network, changes = perturb_network(rng, network)


@pytest.mark.parametrize("mode", PRICE_REFINE_MODES)
def test_invariant_holds_through_relaxation_handoffs(mode):
    """Post-seed rounds (relaxation wins, cost scaling warm-starts from its
    flow and potentials) keep the invariant for every variant."""
    rng = random.Random(17)
    network = generate_network(rng)
    solver = make_invariant_checked_incremental(mode)

    for round_index in range(3):
        relaxation = RelaxationSolver().solve(network.copy())
        solver.seed(relaxation.flows, relaxation.potentials)
        network, _ = perturb_network(rng, network)
        expected = reference_min_cost(network)
        result = solver.solve(network.copy(), changes=None)
        assert result.total_cost == expected
        retained = solver._cost_scaling.last_residual
        assert retained is not None
        assert_epsilon_optimal(retained, 0)


def test_checker_reports_violations():
    """The checker itself flags a violated residual (it is not a no-op)."""
    rng = random.Random(5)
    network = generate_network(rng)
    residual = ResidualNetwork(network)
    # Skew the tail of the first residual arc (a forward arc with full
    # capacity) hard enough that its reduced cost must turn negative.
    residual.potential[residual.arc_from[0]] += 10_000
    problems = check_residual_epsilon_optimality(residual, 0)
    assert problems, "checker failed to flag a residual with skewed potentials"
    with pytest.raises(AssertionError):
        assert_epsilon_optimal(residual, 0)
