"""Unit tests for the cycle canceling and successive shortest path solvers."""

import pytest

from repro.flow.graph import FlowNetwork, NodeType
from repro.flow.validation import assert_optimal, check_feasibility
from repro.solvers.base import InfeasibleProblemError
from repro.solvers.cycle_canceling import CycleCancelingSolver
from repro.solvers.successive_shortest_path import SuccessiveShortestPathSolver
from tests.conftest import build_scheduling_network, reference_min_cost


class TestCycleCanceling:
    def test_optimal_on_small_graph(self):
        network = build_scheduling_network(seed=21)
        expected = reference_min_cost(network)
        result = CycleCancelingSolver().solve(network)
        assert result.total_cost == expected
        assert_optimal(network)

    def test_counts_canceled_cycles(self):
        network = FlowNetwork()
        task = network.add_node(NodeType.TASK, supply=1)
        cheap = network.add_node(NodeType.MACHINE)
        costly = network.add_node(NodeType.MACHINE)
        sink = network.add_node(NodeType.SINK, supply=-1)
        # BFS feasibility will route through whatever it finds first; if that
        # is the expensive machine, exactly one cycle cancellation fixes it.
        network.add_arc(task.node_id, costly.node_id, 1, 10)
        network.add_arc(task.node_id, cheap.node_id, 1, 1)
        network.add_arc(costly.node_id, sink.node_id, 1, 0)
        network.add_arc(cheap.node_id, sink.node_id, 1, 0)
        result = CycleCancelingSolver().solve(network)
        assert result.total_cost == 1
        assert result.statistics.negative_cycles_canceled <= 2

    def test_iteration_limit_yields_feasible_but_suboptimal_flow(self):
        network = build_scheduling_network(seed=22, num_tasks=12, max_cost=50)
        limited = CycleCancelingSolver(max_iterations=0).solve(network)
        assert not limited.optimal
        assert check_feasibility(network) == []
        full = CycleCancelingSolver().solve(network.copy())
        assert limited.total_cost >= full.total_cost

    def test_infeasible_problem_raises(self):
        network = FlowNetwork()
        task = network.add_node(NodeType.TASK, supply=1)
        sink = network.add_node(NodeType.SINK, supply=-1)
        network.add_arc(task.node_id, sink.node_id, 0, 1)
        with pytest.raises(InfeasibleProblemError):
            CycleCancelingSolver().solve(network)


class TestSuccessiveShortestPath:
    def test_optimal_on_small_graph(self):
        network = build_scheduling_network(seed=23)
        expected = reference_min_cost(network)
        result = SuccessiveShortestPathSolver().solve(network)
        assert result.total_cost == expected
        assert_optimal(network, result.potentials)

    def test_one_augmentation_per_unit_of_supply_at_most(self):
        network = build_scheduling_network(seed=24, num_tasks=9)
        result = SuccessiveShortestPathSolver().solve(network)
        assert result.statistics.augmentations <= 9 * 2
        assert result.statistics.augmentations >= 1

    def test_handles_negative_costs_via_bellman_ford_init(self):
        network = FlowNetwork()
        task = network.add_node(NodeType.TASK, supply=1)
        machine = network.add_node(NodeType.MACHINE)
        sink = network.add_node(NodeType.SINK, supply=-1)
        network.add_arc(task.node_id, machine.node_id, 1, -3)
        network.add_arc(machine.node_id, sink.node_id, 1, 2)
        result = SuccessiveShortestPathSolver().solve(network)
        assert result.total_cost == -1
        assert check_feasibility(network) == []

    def test_infeasible_problem_raises(self):
        network = FlowNetwork()
        task = network.add_node(NodeType.TASK, supply=1)
        machine = network.add_node(NodeType.MACHINE)
        sink = network.add_node(NodeType.SINK, supply=-1)
        network.add_arc(machine.node_id, sink.node_id, 1, 0)  # task is isolated
        with pytest.raises(InfeasibleProblemError):
            SuccessiveShortestPathSolver().solve(network)

    def test_multi_unit_supplies(self):
        """Supplies larger than one (aggregated tasks) are routed correctly."""
        network = FlowNetwork()
        group = network.add_node(NodeType.TASK, supply=3)
        machine = network.add_node(NodeType.MACHINE)
        sink = network.add_node(NodeType.SINK, supply=-3)
        network.add_arc(group.node_id, machine.node_id, 3, 2)
        network.add_arc(machine.node_id, sink.node_id, 3, 0)
        result = SuccessiveShortestPathSolver().solve(network)
        assert result.total_cost == 6
        assert network.arc(group.node_id, machine.node_id).flow == 3
