"""Regression pin for the price-refine label-correcting degeneration.

PR 2 found plain FIFO SPFA degenerating to ~3.6 s/call on the post-seed
residuals of large accelerated-trace rounds (fig18 at 16x): long improving
chains whose node ids run *against* the propagation direction, fanning out
to wide zero-cost neighbourhoods.  FIFO re-relaxes the fan at every chain
level -- Theta(levels * fan) label churn -- which the SLF queue discipline
only mitigates and the backward-propagating Dijkstra variant avoids
entirely (the fan sits on the constraint side that never re-labels).

This test pins a deterministic graph of exactly that shape at test scale
and enforces **hard pass-count bounds** on every production price-refine
variant, with an in-test FIFO reference run proving the graph is genuinely
adversarial (so the bounds are meaningful, and re-introducing FIFO --
or any ordering with its churn profile -- trips the bound instead of
silently shipping a quadratic hot loop).
"""

from __future__ import annotations

from collections import deque

import pytest

from repro.flow.graph import FlowNetwork, NodeType
from repro.flow.validation import assert_epsilon_optimal
from repro.solvers.base import SolverStatistics
from repro.solvers.cost_scaling import (
    CostScalingSolver,
    price_refine_dijkstra,
    price_refine_spfa,
)
from repro.solvers.residual import ResidualNetwork

#: Chain depth and fan width of the pinned graph.  At this scale the FIFO
#: reference performs >4000 pops on a 101-node graph; the production
#: variants must stay well below.
LEVELS = 60
FAN = 40

#: Hard pass-count bounds (label-queue pops) on the pinned graph.  The SLF
#: sweep's churn grows with the chain depth (~LEVELS^2 / 2 here, roughly
#: half of FIFO's); the Dijkstra variant settles one label per chain node.
FIFO_MIN_POPS = 3500       # demonstrates the graph is adversarial
SPFA_MAX_POPS = 2600       # SLF today: ~1970; FIFO's ~4300 must trip this
DIJKSTRA_MAX_POPS = 300    # backward propagation: ~LEVELS pops


def build_adversarial_network() -> FlowNetwork:
    """Chain with ids running against the arc direction, plus wide fans.

    Arcs go from higher chain ids to lower ones at negative cost, so a
    label-correcting sweep that processes nodes in id order discovers one
    chain level per wave; every chain node also feeds ``FAN`` zero-cost
    arcs whose heads FIFO re-relaxes on every wave.
    """
    network = FlowNetwork()
    chain = [
        network.add_node(NodeType.TASK, name=f"c{i}") for i in range(LEVELS + 1)
    ]
    fans = [network.add_node(NodeType.MACHINE, name=f"f{i}") for i in range(FAN)]
    for i in range(LEVELS):
        network.add_arc(
            chain[LEVELS - i].node_id, chain[LEVELS - i - 1].node_id, 1, -100
        )
    for node in chain:
        for fan in fans:
            network.add_arc(node.node_id, fan.node_id, 1, 0)
    return network


def fifo_spfa_pops(residual: ResidualNetwork) -> int:
    """Plain FIFO SPFA (the PR 2 degeneration), returning its pop count.

    This is the pre-SLF queue discipline, reimplemented here as the
    adversarial reference: it must *not* exist in production code, and its
    pop count on the pinned graph documents what the bounds protect
    against.
    """
    n = residual.num_nodes
    adjacency = residual.adjacency
    arc_residual = residual.arc_residual
    arc_cost = residual.arc_cost
    arc_to = residual.arc_to
    dist = [0] * n
    queue = deque(range(n))
    in_queue = bytearray(b"\x01" * n)
    pops = 0
    while queue:
        u = queue.popleft()
        pops += 1
        du = dist[u]
        in_queue[u] = 0
        for a in adjacency[u]:
            if arc_residual[a] <= 0:
                continue
            v = arc_to[a]
            nd = du + arc_cost[a]
            if nd < dist[v]:
                dist[v] = nd
                if not in_queue[v]:
                    queue.append(v)
                    in_queue[v] = 1
        if pops > 100 * n:  # cap the reference; the point is long made
            break
    return pops


def test_pinned_graph_is_adversarial_for_fifo():
    """The FIFO reference churns far beyond the bound imposed on variants."""
    residual = ResidualNetwork(build_adversarial_network())
    pops = fifo_spfa_pops(residual)
    assert pops >= FIFO_MIN_POPS, (
        f"the pinned graph stopped being adversarial (FIFO pops {pops}); "
        "rebuild it or the variant bounds below prove nothing"
    )
    # And specifically: FIFO would trip the production SPFA bound, so a
    # regression to FIFO ordering cannot pass this file.
    assert pops > SPFA_MAX_POPS


def test_spfa_stays_within_pass_bound():
    residual = ResidualNetwork(build_adversarial_network())
    stats = SolverStatistics()
    assert price_refine_spfa(residual, stats=stats)
    assert_epsilon_optimal(residual, 0)
    assert stats.price_refine_passes <= SPFA_MAX_POPS, (
        f"SLF SPFA churned {stats.price_refine_passes} pops on the pinned "
        f"adversarial graph (bound {SPFA_MAX_POPS}); the PR 2 degeneration "
        "is creeping back"
    )


def test_dijkstra_stays_within_pass_bound():
    residual = ResidualNetwork(build_adversarial_network())
    stats = SolverStatistics()
    assert price_refine_dijkstra(residual, stats=stats)
    assert_epsilon_optimal(residual, 0)
    assert stats.price_refine_passes <= DIJKSTRA_MAX_POPS, (
        f"Dijkstra refine settled {stats.price_refine_passes} labels on the "
        f"pinned adversarial graph (bound {DIJKSTRA_MAX_POPS}); backward "
        "propagation lost its set-once behaviour"
    )


@pytest.mark.parametrize("mode", ("spfa", "dijkstra", "auto"))
def test_solver_level_refine_stays_bounded(mode):
    """The solver-facing dispatch obeys the same bounds for every mode.

    ``solve_warm`` with no usable potentials routes through the dispatcher
    exactly like production post-seed rounds; whatever variant the mode
    resolves to must stay within the loosest variant bound.
    """
    network = build_adversarial_network()
    solver = CostScalingSolver(price_refine=mode)
    stats = SolverStatistics()
    residual = ResidualNetwork(network)
    residual.scale_costs(residual.num_nodes + 1)
    assert solver._price_refine(residual, stats)
    assert_epsilon_optimal(residual, 0)
    assert stats.price_refine_passes <= SPFA_MAX_POPS
    assert stats.price_refine_seconds > 0.0
