"""Cross-solver equivalence and oracle tests.

Every MCMF solver must produce a feasible flow whose total cost equals the
optimum computed by networkx (an independent implementation).  These tests
are the backbone of the solver suite: the individual algorithm tests check
algorithm-specific behaviour, while this module checks the one property that
matters for the scheduler -- optimality.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.flow.validation import assert_optimal, check_feasibility, flow_cost
from repro.solvers import (
    CostScalingSolver,
    CycleCancelingSolver,
    IncrementalCostScalingSolver,
    RelaxationSolver,
    SuccessiveShortestPathSolver,
    make_solver,
)
from tests.conftest import (
    build_contended_network,
    build_scheduling_network,
    reference_min_cost,
)

ALL_SOLVERS = [
    CycleCancelingSolver,
    SuccessiveShortestPathSolver,
    CostScalingSolver,
    RelaxationSolver,
    IncrementalCostScalingSolver,
]


@pytest.mark.parametrize("solver_class", ALL_SOLVERS)
@pytest.mark.parametrize("seed", range(8))
def test_solver_matches_networkx_on_random_scheduling_graphs(solver_class, seed):
    network = build_scheduling_network(seed=seed, num_tasks=8, num_machines=5)
    expected = reference_min_cost(network)
    result = solver_class().solve(network)
    assert result.total_cost == expected
    assert result.total_cost == flow_cost(network)
    assert check_feasibility(network) == []
    assert_optimal(network)


@pytest.mark.parametrize("solver_class", ALL_SOLVERS)
def test_solver_on_contended_graph(solver_class):
    network = build_contended_network(num_tasks=30, num_machines=4, slots_per_machine=2)
    expected = reference_min_cost(network)
    result = solver_class().solve(network)
    assert result.total_cost == expected
    assert check_feasibility(network) == []


@pytest.mark.parametrize("solver_class", ALL_SOLVERS)
def test_solver_routes_all_supply(solver_class):
    network = build_scheduling_network(seed=3, num_tasks=10, num_machines=4)
    solver_class().solve(network)
    sink = [n for n in network.nodes() if n.supply < 0][0]
    inflow = sum(arc.flow for arc in network.incoming(sink.node_id))
    assert inflow == 10


@pytest.mark.parametrize("solver_class", ALL_SOLVERS)
def test_solver_handles_empty_workload(solver_class):
    """A network with no task nodes (zero supply) is trivially solved."""
    from repro.flow.graph import FlowNetwork, NodeType

    network = FlowNetwork()
    machine = network.add_node(NodeType.MACHINE)
    sink = network.add_node(NodeType.SINK, supply=0)
    network.add_arc(machine.node_id, sink.node_id, 4, 0)
    result = solver_class().solve(network)
    assert result.total_cost == 0
    assert result.flows == {}


@pytest.mark.parametrize("solver_class", ALL_SOLVERS)
def test_solver_prefers_cheap_machines(solver_class):
    """All solvers must pick the zero-cost machine over the expensive path."""
    from repro.flow.graph import FlowNetwork, NodeType

    network = FlowNetwork()
    task = network.add_node(NodeType.TASK, supply=1)
    good = network.add_node(NodeType.MACHINE)
    bad = network.add_node(NodeType.MACHINE)
    sink = network.add_node(NodeType.SINK, supply=-1)
    network.add_arc(task.node_id, good.node_id, 1, 1)
    network.add_arc(task.node_id, bad.node_id, 1, 50)
    network.add_arc(good.node_id, sink.node_id, 1, 0)
    network.add_arc(bad.node_id, sink.node_id, 1, 0)
    result = solver_class().solve(network)
    assert result.total_cost == 1
    assert network.arc(task.node_id, good.node_id).flow == 1
    assert network.arc(task.node_id, bad.node_id).flow == 0


@pytest.mark.parametrize("name", [
    "cycle_canceling",
    "successive_shortest_path",
    "cost_scaling",
    "relaxation",
    "incremental_cost_scaling",
])
def test_make_solver_registry(name):
    solver = make_solver(name)
    assert solver.name in (name, "incremental_cost_scaling")


def test_make_solver_rejects_unknown_name():
    with pytest.raises(ValueError):
        make_solver("simplex")


# --------------------------------------------------------------------- #
# Property-based tests
# --------------------------------------------------------------------- #
@st.composite
def scheduling_graph_params(draw):
    return dict(
        seed=draw(st.integers(min_value=0, max_value=10_000)),
        num_tasks=draw(st.integers(min_value=1, max_value=14)),
        num_machines=draw(st.integers(min_value=1, max_value=6)),
        slots_per_machine=draw(st.integers(min_value=1, max_value=3)),
        max_cost=draw(st.integers(min_value=2, max_value=40)),
        preference_arcs=draw(st.integers(min_value=1, max_value=4)),
    )


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(params=scheduling_graph_params())
def test_property_all_solvers_agree_with_oracle(params):
    """All four algorithms and the oracle agree on the optimal cost."""
    network = build_scheduling_network(**params)
    expected = reference_min_cost(network)
    for solver_class in (
        SuccessiveShortestPathSolver,
        CostScalingSolver,
        RelaxationSolver,
    ):
        candidate = network.copy()
        result = solver_class().solve(candidate)
        assert result.total_cost == expected
        assert check_feasibility(candidate) == []


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(params=scheduling_graph_params(), alpha=st.integers(min_value=2, max_value=16))
def test_property_cost_scaling_alpha_does_not_change_optimum(params, alpha):
    """The alpha scaling factor is a performance knob, never a quality knob."""
    network = build_scheduling_network(**params)
    expected = reference_min_cost(network)
    result = CostScalingSolver(alpha=alpha).solve(network)
    assert result.total_cost == expected


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(params=scheduling_graph_params())
def test_property_relaxation_heuristic_does_not_change_optimum(params):
    """Arc prioritization changes runtime, not the solution cost."""
    network = build_scheduling_network(**params)
    with_heuristic = RelaxationSolver(arc_prioritization=True).solve(network.copy())
    without_heuristic = RelaxationSolver(arc_prioritization=False).solve(network.copy())
    assert with_heuristic.total_cost == without_heuristic.total_cost
