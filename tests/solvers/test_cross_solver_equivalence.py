"""Randomized cross-solver equivalence suite.

Every MCMF implementation in the repository must agree on the optimal cost
of every network: the four from-scratch algorithms, the incremental
cost-scaling solver fed typed change batches across rounds, and both
speculative dual executors (sequential and subprocess-racing).  A seeded
generator fuzzes graph shapes -- sizes, capacities, negative costs, and
multi-round change batches -- so divergence introduced anywhere in the
solver stack (delta patching, warm starts, IPC serialization, race
plumbing) surfaces as a cost mismatch here.

Tier-1 runs a few dozen seeds on small graphs; the larger randomized sweep
lives in ``benchmarks/bench_equivalence_sweep.py`` (marked ``benchmark``).
"""

from __future__ import annotations

import random

import pytest

from repro.flow.validation import check_feasibility
from repro.solvers import (
    CostScalingSolver,
    CycleCancelingSolver,
    DualAlgorithmExecutor,
    IncrementalCostScalingSolver,
    ParallelDualExecutor,
    RelaxationSolver,
    SuccessiveShortestPathSolver,
)
from tests.conftest import reference_min_cost
from tests.solvers.equivalence_harness import generate_network, perturb_network

#: Tier-1 seed set: dozens of fuzzed networks, three rounds of changes each.
TIER1_SEEDS = range(24)

#: Seeds (a subset, for runtime) that also race the subprocess executor.
SUBPROCESS_SEEDS = frozenset({0, 5, 11, 17, 23})


def scratch_costs(network):
    """Optimal cost according to every from-scratch algorithm."""
    return {
        "cost_scaling": CostScalingSolver().solve(network.copy()).total_cost,
        "cost_scaling_dijkstra_refine": CostScalingSolver(
            polish_potentials=True, price_refine="dijkstra"
        ).solve(network.copy()).total_cost,
        "relaxation": RelaxationSolver().solve(network.copy()).total_cost,
        "ssp": SuccessiveShortestPathSolver().solve(network.copy()).total_cost,
        "cycle_canceling": CycleCancelingSolver().solve(network.copy()).total_cost,
    }


def run_equivalence_rounds(seed: int, rounds: int, include_subprocess: bool) -> None:
    """Assert all solvers agree on ``rounds`` perturbations of one network."""
    rng = random.Random(seed)
    network = generate_network(rng)

    incremental = IncrementalCostScalingSolver()
    # Same stateful multi-round path, but with the Dijkstra/incremental
    # price refine: its delta patches, seeded warm handoffs, and repairs
    # must agree with every other implementation on every round.
    incremental_dijkstra = IncrementalCostScalingSolver(price_refine="dijkstra")
    executors = [DualAlgorithmExecutor()]
    parallel = None
    if include_subprocess:
        parallel = ParallelDualExecutor()
        executors.append(parallel)
    try:
        changes = None
        for round_index in range(rounds + 1):
            assert network.validate_structure() == []
            expected = reference_min_cost(network)

            for name, cost in scratch_costs(network).items():
                assert cost == expected, (
                    f"seed {seed} round {round_index}: {name} found {cost}, "
                    f"oracle says {expected}"
                )

            incremental_result = incremental.solve(network.copy(), changes=None)
            assert incremental_result.total_cost == expected, (
                f"seed {seed} round {round_index}: incremental (warm) found "
                f"{incremental_result.total_cost}, oracle says {expected}"
            )

            dijkstra_result = incremental_dijkstra.solve(
                network.copy(), changes=changes
            )
            assert dijkstra_result.total_cost == expected, (
                f"seed {seed} round {round_index}: incremental "
                f"(dijkstra price refine) found {dijkstra_result.total_cost}, "
                f"oracle says {expected}"
            )

            for executor in executors:
                solved = network.copy()
                result = executor.solve(solved, changes=changes)
                assert result.total_cost == expected, (
                    f"seed {seed} round {round_index}: executor "
                    f"{type(executor).__name__} found {result.total_cost}, "
                    f"oracle says {expected}"
                )
                assert check_feasibility(solved) == []

            network, changes = perturb_network(rng, network)
    finally:
        if parallel is not None:
            parallel.close()


@pytest.mark.parametrize("seed", TIER1_SEEDS)
def test_all_solvers_agree_on_fuzzed_networks(seed):
    """Fuzzed networks and change batches: every solver, same optimal cost."""
    run_equivalence_rounds(
        seed, rounds=3, include_subprocess=seed in SUBPROCESS_SEEDS
    )
