"""Sharded multi-cell scheduling: partition, views, balancer, chaos.

Covers the sharding layer's structural guarantees:

* the rack-granular cell partition is deterministic and stable under
  machine additions, removals, and correlated rack storms;
* the per-cell topology views slice the cluster exactly and stay coherent
  across membership churn (version-keyed cache);
* the cross-cell balancer re-homes queued tasks from overloaded or
  infeasible home cells to cells with spare capacity, as ordinary
  dirty-set mutations bounded per round;
* in worker mode, a chaos ``worker_kill`` degrades only the targeted
  cell: its round is served by the parent-side fallback solver while the
  other cells' workers keep answering.
"""

from __future__ import annotations

import pytest

from repro.chaos import ChaosPolicy
from repro.cluster.machine import Machine
from repro.core import CellPartition, ShardedScheduler
from repro.core.policies import QuincyPolicy
from repro.core.sharding import CellTopologyView
from repro.simulation.failures import FailureInjector
from tests.conftest import make_cluster_state, make_job


def build_sharded(num_cells=4, **kwargs):
    return ShardedScheduler(QuincyPolicy, num_cells=num_cells, **kwargs)


# --------------------------------------------------------------------- #
# Partition determinism and stability
# --------------------------------------------------------------------- #
class TestCellPartition:
    def test_partition_is_rack_granular(self):
        state = make_cluster_state(num_machines=16, machines_per_rack=4)
        partition = CellPartition(4)
        for rack_id, rack in state.topology.racks.items():
            cells = {
                partition.cell_of_machine(state.topology.machine(m))
                for m in rack.machine_ids
            }
            assert cells == {partition.cell_of_rack(rack_id)}

    def test_partition_deterministic_across_instances(self):
        state = make_cluster_state(num_machines=24, machines_per_rack=3)
        a = CellPartition(4).assignment(state.topology)
        b = CellPartition(4).assignment(state.topology)
        assert a == b

    def test_partition_stable_under_add_and_remove(self):
        state = make_cluster_state(num_machines=16, machines_per_rack=4)
        partition = CellPartition(4)
        before = partition.assignment(state.topology)
        # A new machine in an existing rack and one opening a new rack.
        state.add_machine(Machine(machine_id=100, rack_id=1, num_slots=2))
        state.add_machine(Machine(machine_id=101, rack_id=9, num_slots=2))
        state.topology.remove_machine(0)
        after = partition.assignment(state.topology)
        for machine_id, cell in after.items():
            if machine_id in before:
                assert cell == before[machine_id], "surviving machine changed cells"
        assert after[100] == partition.cell_of_rack(1)
        assert after[101] == partition.cell_of_rack(9)
        assert 0 not in after

    def test_partition_stable_under_rack_storms(self):
        state = make_cluster_state(num_machines=16, machines_per_rack=4)
        partition = CellPartition(4)
        before = partition.assignment(state.topology)
        injector = FailureInjector(
            mean_time_between_failures=10.0, mean_time_to_repair=5.0, seed=7
        )
        schedule = injector.generate_rack_storms(
            state.topology, horizon=200.0, mean_time_between_storms=20.0
        )
        assert schedule.num_failures > 0, "storm schedule must exercise failures"
        for event in schedule.events:
            state.fail_machine(event.machine_id, event.fail_time)
            # Availability flips never move machines between cells.
            assert partition.assignment(state.topology) == before
            if event.recover_time is not None:
                state.recover_machine(event.machine_id, event.recover_time)
                assert partition.assignment(state.topology) == before

    def test_single_cell_partition_is_identity(self):
        state = make_cluster_state(num_machines=8, machines_per_rack=2)
        partition = CellPartition(1)
        assert set(partition.assignment(state.topology).values()) == {0}

    def test_zero_cells_rejected(self):
        with pytest.raises(ValueError):
            CellPartition(0)


class TestCellTopologyView:
    def test_views_partition_the_cluster_exactly(self):
        state = make_cluster_state(num_machines=20, machines_per_rack=4)
        partition = CellPartition(3)
        views = [CellTopologyView(state.topology, partition, c) for c in range(3)]
        seen_machines: set = set()
        seen_racks: set = set()
        for view in views:
            assert not (seen_machines & set(view.machines)), "machine in two cells"
            assert not (seen_racks & set(view.racks)), "rack in two cells"
            seen_machines |= set(view.machines)
            seen_racks |= set(view.racks)
        assert seen_machines == set(state.topology.machines)
        assert seen_racks == set(state.topology.racks)

    def test_view_tracks_membership_churn(self):
        state = make_cluster_state(num_machines=8, machines_per_rack=4)
        partition = CellPartition(2)
        view = CellTopologyView(state.topology, partition, 1)
        assert 4 in view.machines  # rack 1 -> cell 1
        state.topology.remove_machine(4)
        assert 4 not in view.machines
        state.topology.add_machine(Machine(machine_id=50, rack_id=3, num_slots=2))
        assert 50 in view.machines  # rack 3 -> cell 1

    def test_view_sees_availability_through_shared_references(self):
        state = make_cluster_state(num_machines=8, machines_per_rack=4)
        partition = CellPartition(2)
        view = CellTopologyView(state.topology, partition, 0)
        healthy_before = {m.machine_id for m in view.healthy_machines()}
        state.fail_machine(0, now=0.0)
        healthy_after = {m.machine_id for m in view.healthy_machines()}
        assert healthy_after == healthy_before - {0}


# --------------------------------------------------------------------- #
# Scheduling behavior
# --------------------------------------------------------------------- #
class TestShardedScheduling:
    def test_places_tasks_and_attributes_straggler(self):
        state = make_cluster_state(num_machines=16, machines_per_rack=4)
        state.submit_job(make_job(job_id=1, num_tasks=6))
        scheduler = build_sharded(num_cells=4)
        try:
            decision = scheduler.schedule_and_apply(state, now=0.0)
            assert len(decision.placements) == 6
            stats = decision.solver_result.statistics
            assert stats.cells_solved >= 1
            assert stats.straggler_cell >= 0
            assert stats.straggler_seconds >= 0.0
        finally:
            scheduler.close()

    def test_running_task_homed_to_cell_of_its_machine(self):
        state = make_cluster_state(num_machines=8, machines_per_rack=2)
        # Job 1 hashes to cell 1, but its running task sits on machine 0
        # (rack 0 -> cell 0); homing must follow the machine, because the
        # cell network's continuation arc resolves only there.
        state.submit_job(make_job(job_id=1, num_tasks=1))
        task = state.jobs[1].tasks[0]
        state.place_task(task.task_id, 0, now=0.0)
        scheduler = build_sharded(num_cells=4)
        try:
            scheduler.schedule(state, now=1.0)
            assert scheduler._home_cell(task) == 0
        finally:
            scheduler.close()

    def test_rebind_on_new_state(self):
        scheduler = build_sharded(num_cells=2)
        try:
            state1 = make_cluster_state(num_machines=8, machines_per_rack=4)
            state1.submit_job(make_job(job_id=1, num_tasks=2))
            d1 = scheduler.schedule_and_apply(state1, now=0.0)
            assert len(d1.placements) == 2
            state2 = make_cluster_state(num_machines=8, machines_per_rack=4)
            state2.submit_job(make_job(job_id=7, num_tasks=3))
            d2 = scheduler.schedule_and_apply(state2, now=0.0)
            assert len(d2.placements) == 3
        finally:
            scheduler.close()

    def test_idle_cells_are_skipped(self):
        state = make_cluster_state(num_machines=16, machines_per_rack=4)
        state.submit_job(make_job(job_id=0, num_tasks=2))  # cell 0 only
        scheduler = build_sharded(num_cells=4, balance=False)
        try:
            decision = scheduler.schedule(state, now=0.0)
            assert decision.solver_result.statistics.cells_solved == 1
        finally:
            scheduler.close()


class TestCrossCellBalancer:
    def test_overload_migrates_to_spare_cell(self):
        # 2 racks -> 2 cells of 2 machines x 2 slots = 4 slots each.  Job 0
        # homes to cell 0 with 6 tasks: 2 overflow, and the balancer must
        # re-home them to cell 1 so the next round places them.
        state = make_cluster_state(num_machines=4, machines_per_rack=2)
        state.submit_job(make_job(job_id=0, num_tasks=6))
        scheduler = build_sharded(num_cells=2)
        try:
            d1 = scheduler.schedule_and_apply(state, now=0.0)
            assert len(d1.placements) == 4
            assert len(d1.unscheduled) == 2
            assert d1.solver_result.statistics.cross_cell_migrations == 2
            d2 = scheduler.schedule_and_apply(state, now=5.0)
            assert len(d2.placements) == 2
            assert not d2.unscheduled
        finally:
            scheduler.close()

    def test_infeasible_home_cell_rehomes_instead_of_starving(self):
        # Cell 1 (rack 1) is entirely failed: a task homed there has no
        # feasible machine at all and must be re-homed, not starved.
        state = make_cluster_state(num_machines=4, machines_per_rack=2)
        state.fail_machine(2, now=0.0)
        state.fail_machine(3, now=0.0)
        state.submit_job(make_job(job_id=1, num_tasks=2))  # homes to cell 1
        scheduler = build_sharded(num_cells=2)
        try:
            d1 = scheduler.schedule_and_apply(state, now=0.0)
            assert len(d1.unscheduled) == 2
            assert d1.solver_result.statistics.cross_cell_migrations == 2
            d2 = scheduler.schedule_and_apply(state, now=5.0)
            assert len(d2.placements) == 2
        finally:
            scheduler.close()

    def test_migration_volume_bounded_per_round(self):
        state = make_cluster_state(
            num_machines=8, machines_per_rack=4, slots_per_machine=4
        )
        # Far more cell-0 overflow than the per-round migration ceiling.
        state.submit_job(make_job(job_id=0, num_tasks=40))
        scheduler = build_sharded(num_cells=2)
        scheduler.balancer.max_migrations_per_round = 4
        try:
            decision = scheduler.schedule_and_apply(state, now=0.0)
            assert decision.solver_result.statistics.cross_cell_migrations <= 4
        finally:
            scheduler.close()

    def test_balancer_disabled_leaves_tasks_queued(self):
        state = make_cluster_state(num_machines=4, machines_per_rack=2)
        state.submit_job(make_job(job_id=0, num_tasks=6))
        scheduler = build_sharded(num_cells=2, balance=False)
        try:
            d1 = scheduler.schedule_and_apply(state, now=0.0)
            assert len(d1.unscheduled) == 2
            d2 = scheduler.schedule_and_apply(state, now=5.0)
            assert len(d2.placements) == 0
            assert len(d2.unscheduled) == 2
        finally:
            scheduler.close()


# --------------------------------------------------------------------- #
# Worker mode and chaos
# --------------------------------------------------------------------- #
class TestWorkerMode:
    def test_worker_rounds_match_inline_placement_count(self):
        def run(workers):
            state = make_cluster_state(num_machines=16, machines_per_rack=4)
            state.submit_job(make_job(job_id=1, num_tasks=5))
            state.submit_job(make_job(job_id=2, num_tasks=4))
            scheduler = build_sharded(num_cells=4, workers=workers)
            placed = 0
            try:
                for round_index in range(3):
                    if round_index == 1:
                        state.submit_job(
                            make_job(job_id=3, num_tasks=3, submit_time=5.0)
                        )
                    decision = scheduler.schedule_and_apply(
                        state, now=round_index * 5.0
                    )
                    placed += len(decision.placements)
            finally:
                scheduler.close()
            return placed

        assert run(workers=True) == run(workers=False)

    def test_steady_state_ships_deltas(self):
        state = make_cluster_state(num_machines=8, machines_per_rack=2)
        state.submit_job(make_job(job_id=0, num_tasks=2))
        state.submit_job(make_job(job_id=1, num_tasks=2))
        scheduler = build_sharded(num_cells=2, workers=True)
        try:
            for round_index in range(4):
                if round_index == 2:
                    state.submit_job(
                        make_job(job_id=2, num_tasks=1, submit_time=10.0)
                    )
                scheduler.schedule_and_apply(state, now=round_index * 5.0)
            for transport in scheduler.cell_transport():
                consulted = transport["snapshot_ships"] + transport["delta_ships"]
                if consulted > 1:
                    assert transport["snapshot_ships"] == 1, (
                        "steady-state rounds must ship deltas, "
                        f"got {transport}"
                    )
                assert transport["fallback_rounds"] == 0
        finally:
            scheduler.close()

    def test_worker_kill_degrades_only_the_targeted_cell(self):
        # worker_kill always fires; the target is round_index % num_cells,
        # so round 1 (index 0) kills cell 0's worker only.  The round must
        # still place everything (the parent-side fallback serves cell 0)
        # and the other cells' workers must stay alive.
        state = make_cluster_state(num_machines=16, machines_per_rack=4)
        for job_id in range(4):  # one job per cell
            state.submit_job(make_job(job_id=job_id, num_tasks=2))
        chaos = ChaosPolicy(rates={"worker_kill": 1.0}, seed=3)
        scheduler = build_sharded(num_cells=4, workers=True, chaos=chaos)
        try:
            decision = scheduler.schedule_and_apply(state, now=0.0)
            assert len(decision.placements) == 8, "no cell may lose its round"
            transport = scheduler.cell_transport()
            assert transport[0]["fallback_rounds"] == 1
            for cell in (1, 2, 3):
                assert transport[cell]["fallback_rounds"] == 0, (
                    f"cell {cell} was degraded by cell 0's fault"
                )
        finally:
            scheduler.close()

    def test_killed_worker_respawns_next_round(self):
        state = make_cluster_state(num_machines=8, machines_per_rack=4)
        state.submit_job(make_job(job_id=0, num_tasks=2))
        state.submit_job(make_job(job_id=1, num_tasks=2))
        scheduler = build_sharded(num_cells=2, workers=True)
        try:
            scheduler.schedule_and_apply(state, now=0.0)
            scheduler._clients[0].kill()
            state.submit_job(make_job(job_id=2, num_tasks=1, submit_time=5.0))
            decision = scheduler.schedule_and_apply(state, now=5.0)
            assert decision.placements or not decision.unscheduled
            transport = scheduler.cell_transport()
            assert transport[0]["respawns"] >= 1 or transport[0]["fallback_rounds"] >= 1
        finally:
            scheduler.close()
