"""Unit tests for the three scheduling policies."""

import pytest

from repro.core.graph_manager import GraphManager
from repro.core.policies import (
    LoadSpreadingPolicy,
    NetworkAwarePolicy,
    QuincyPolicy,
)
from repro.core.scheduler import FirmamentScheduler
from repro.flow.graph import NodeType
from repro.solvers import CostScalingSolver
from tests.conftest import make_cluster_state, make_job


def build_network(state, policy, now=0.0):
    manager = GraphManager(policy)
    network = manager.update(state, now)
    return manager, network


class TestLoadSpreadingPolicy:
    def test_structure(self, small_state):
        small_state.submit_job(make_job(job_id=1, num_tasks=3))
        _, network = build_network(small_state, LoadSpreadingPolicy())
        aggs = network.nodes_of_type(NodeType.CLUSTER_AGGREGATOR)
        assert len(aggs) == 1
        # Every free slot in the cluster is reachable from the aggregator via
        # its own unit-capacity slot-level node.
        assert len(network.outgoing(aggs[0].node_id)) == small_state.total_free_slots()

    def test_cost_grows_with_machine_population(self, small_state):
        job = make_job(job_id=1, num_tasks=2)
        small_state.submit_job(job)
        small_state.place_task(job.tasks[0].task_id, 0, 0.0)
        policy = LoadSpreadingPolicy(cost_per_running_task=10)
        manager, network = build_network(small_state, policy)
        agg = network.nodes_of_type(NodeType.CLUSTER_AGGREGATOR)[0]

        def cheapest_route_to(machine_id):
            machine_node = manager.machine_nodes[machine_id]
            return min(
                arc.cost
                for arc in network.outgoing(agg.node_id)
                if any(a.dst == machine_node for a in network.outgoing(arc.dst))
            )

        # Machine 0 already runs a task, so its cheapest remaining slot costs
        # one occupancy increment more than an empty machine's.
        assert cheapest_route_to(0) == cheapest_route_to(1) + 10

    def test_spreads_tasks_evenly(self):
        state = make_cluster_state(num_machines=4, slots_per_machine=4)
        state.submit_job(make_job(job_id=1, num_tasks=8))
        scheduler = FirmamentScheduler(LoadSpreadingPolicy(), solver=CostScalingSolver())
        decision = scheduler.schedule_and_apply(state, now=0.0)
        assert len(decision.placements) == 8
        counts = [state.task_count_on_machine(m) for m in range(4)]
        assert max(counts) - min(counts) <= 1

    def test_running_task_prefers_to_stay(self):
        state = make_cluster_state(num_machines=4, slots_per_machine=4)
        job = make_job(job_id=1, num_tasks=2)
        state.submit_job(job)
        state.place_task(job.tasks[0].task_id, 2, 0.0)
        state.place_task(job.tasks[1].task_id, 3, 0.0)
        scheduler = FirmamentScheduler(LoadSpreadingPolicy(), solver=CostScalingSolver())
        decision = scheduler.schedule(state, now=1.0)
        assert decision.migrations == {}
        assert decision.preemptions == []


class TestQuincyPolicy:
    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            QuincyPolicy(machine_preference_threshold=0.0)
        with pytest.raises(ValueError):
            QuincyPolicy(machine_preference_threshold=1.5)

    def test_backbone_structure(self, small_state):
        small_state.submit_job(make_job(job_id=1, num_tasks=2))
        _, network = build_network(small_state, QuincyPolicy())
        assert len(network.nodes_of_type(NodeType.CLUSTER_AGGREGATOR)) == 1
        assert len(network.nodes_of_type(NodeType.RACK_AGGREGATOR)) == small_state.topology.num_racks
        assert len(network.nodes_of_type(NodeType.UNSCHEDULED_AGGREGATOR)) == 1

    def test_preference_arcs_respect_threshold(self, small_state):
        locality = {0: 0.6, 1: 0.1, 2: 0.02}
        job = make_job(job_id=1, num_tasks=1, input_size_gb=10.0, input_locality=locality)
        small_state.submit_job(job)
        policy = QuincyPolicy(machine_preference_threshold=0.14)
        manager, network = build_network(small_state, policy)
        task_node = manager.task_nodes[job.tasks[0].task_id]
        machine_targets = {
            arc.dst for arc in network.outgoing(task_node)
            if network.node(arc.dst).node_type is NodeType.MACHINE
        }
        assert manager.machine_nodes[0] in machine_targets
        assert manager.machine_nodes[1] not in machine_targets
        assert manager.machine_nodes[2] not in machine_targets

    def test_lower_threshold_creates_more_arcs(self, small_state):
        locality = {m: 0.12 for m in range(8)}
        job = make_job(job_id=1, num_tasks=1, input_size_gb=8.0, input_locality=locality)
        small_state.submit_job(job)
        _, strict = build_network(small_state, QuincyPolicy(machine_preference_threshold=0.14))
        _, loose = build_network(small_state, QuincyPolicy(machine_preference_threshold=0.02))
        assert loose.num_arcs > strict.num_arcs

    def test_preference_arc_cheaper_than_fallback(self, small_state):
        locality = {0: 0.9}
        job = make_job(job_id=1, num_tasks=1, input_size_gb=10.0, input_locality=locality)
        small_state.submit_job(job)
        policy = QuincyPolicy()
        manager, network = build_network(small_state, policy)
        task_node = manager.task_nodes[job.tasks[0].task_id]
        agg = network.nodes_of_type(NodeType.CLUSTER_AGGREGATOR)[0]
        pref_cost = network.arc(task_node, manager.machine_nodes[0]).cost
        fallback_cost = network.arc(task_node, agg.node_id).cost
        assert pref_cost < fallback_cost

    def test_scheduler_exploits_locality(self):
        state = make_cluster_state(num_machines=8, slots_per_machine=2)
        job = make_job(
            job_id=1, num_tasks=1, input_size_gb=10.0, input_locality={5: 0.8}
        )
        state.submit_job(job)
        scheduler = FirmamentScheduler(QuincyPolicy(), solver=CostScalingSolver())
        decision = scheduler.schedule_and_apply(state, now=0.0)
        assert decision.placements[job.tasks[0].task_id] == 5

    def test_unscheduled_cost_grows_with_wait_time(self):
        policy = QuincyPolicy()
        task = make_job(job_id=1, num_tasks=1).tasks[0]
        early = policy.unscheduled_cost(task, now=1.0)
        late = policy.unscheduled_cost(task, now=500.0)
        assert late > early

    def test_count_preference_arcs(self, small_state):
        locality = {0: 0.5, 1: 0.2, 2: 0.01}
        small_state.submit_job(
            make_job(job_id=1, num_tasks=1, input_size_gb=5.0, input_locality=locality)
        )
        policy = QuincyPolicy(machine_preference_threshold=0.14)
        assert policy.count_preference_arcs(small_state) == 2


class TestNetworkAwarePolicy:
    def test_bucket_rounding(self):
        policy = NetworkAwarePolicy(bandwidth_bucket_mbps=250)
        assert policy.request_bucket(0) == 0
        assert policy.request_bucket(1) == 250
        assert policy.request_bucket(250) == 250
        assert policy.request_bucket(251) == 500

    def test_bucket_validation(self):
        with pytest.raises(ValueError):
            NetworkAwarePolicy(bandwidth_bucket_mbps=0)

    def test_loaded_machines_excluded(self, small_state):
        capacity = small_state.topology.machine(0).network_bandwidth_mbps
        # Machine 0's NIC is almost entirely busy with background traffic.
        small_state.monitor.record_network_use(0, capacity - 100)
        job = make_job(job_id=1, num_tasks=1, network_request_mbps=500)
        small_state.submit_job(job)
        manager, network = build_network(small_state, NetworkAwarePolicy())
        aggs = network.nodes_of_type(NodeType.REQUEST_AGGREGATOR)
        assert len(aggs) == 1
        targets = {arc.dst for arc in network.outgoing(aggs[0].node_id)}
        assert manager.machine_nodes[0] not in targets
        assert manager.machine_nodes[1] in targets

    def test_cost_reflects_current_utilization(self, small_state):
        small_state.monitor.record_network_use(1, 4_000)
        job = make_job(job_id=1, num_tasks=1, network_request_mbps=500)
        small_state.submit_job(job)
        manager, network = build_network(small_state, NetworkAwarePolicy())
        agg = network.nodes_of_type(NodeType.REQUEST_AGGREGATOR)[0]
        idle_cost = network.arc(agg.node_id, manager.machine_nodes[0]).cost
        busy_cost = network.arc(agg.node_id, manager.machine_nodes[1]).cost
        assert busy_cost > idle_cost

    def test_scheduler_avoids_saturated_machines(self):
        state = make_cluster_state(num_machines=4, slots_per_machine=4)
        capacity = state.topology.machine(0).network_bandwidth_mbps
        state.monitor.record_network_use(0, capacity)
        state.monitor.record_network_use(1, capacity)
        job = make_job(job_id=1, num_tasks=4, network_request_mbps=2_000)
        state.submit_job(job)
        scheduler = FirmamentScheduler(NetworkAwarePolicy(), solver=CostScalingSolver())
        decision = scheduler.schedule_and_apply(state, now=0.0)
        used_machines = set(decision.placements.values())
        assert used_machines.issubset({2, 3})

    def test_zero_request_tasks_get_a_dedicated_aggregator(self, small_state):
        job = make_job(job_id=1, num_tasks=2, network_request_mbps=0)
        small_state.submit_job(job)
        _, network = build_network(small_state, NetworkAwarePolicy())
        aggs = network.nodes_of_type(NodeType.REQUEST_AGGREGATOR)
        assert len(aggs) == 1
        assert aggs[0].name == "RA0"
