"""Unit tests for task placement extraction (Listing 1)."""

import pytest

from repro.core.placement import extract_placements, unscheduled_tasks
from repro.flow.graph import FlowNetwork, NodeType


def solved_direct_network():
    """Two tasks scheduled directly on machines, one unscheduled."""
    net = FlowNetwork()
    sink = net.add_node(NodeType.SINK, supply=-3, name="S")
    m0 = net.add_node(NodeType.MACHINE, name="M0")
    m1 = net.add_node(NodeType.MACHINE, name="M1")
    u = net.add_node(NodeType.UNSCHEDULED_AGGREGATOR, name="U")
    t0 = net.add_node(NodeType.TASK, supply=1, name="T0")
    t1 = net.add_node(NodeType.TASK, supply=1, name="T1")
    t2 = net.add_node(NodeType.TASK, supply=1, name="T2")
    net.add_arc(m0.node_id, sink.node_id, 1, 0).flow = 1
    net.add_arc(m1.node_id, sink.node_id, 1, 0).flow = 1
    net.add_arc(u.node_id, sink.node_id, 3, 0).flow = 1
    net.add_arc(t0.node_id, m0.node_id, 1, 1).flow = 1
    net.add_arc(t1.node_id, m1.node_id, 1, 1).flow = 1
    net.add_arc(t2.node_id, u.node_id, 1, 5).flow = 1
    task_nodes = {0: t0.node_id, 1: t1.node_id, 2: t2.node_id}
    machine_nodes = {0: m0.node_id, 1: m1.node_id}
    return net, task_nodes, machine_nodes, sink.node_id


def solved_aggregated_network():
    """Tasks whose flow traverses a cluster aggregator before the machines."""
    net = FlowNetwork()
    sink = net.add_node(NodeType.SINK, supply=-3, name="S")
    agg = net.add_node(NodeType.CLUSTER_AGGREGATOR, name="X")
    m0 = net.add_node(NodeType.MACHINE, name="M0")
    m1 = net.add_node(NodeType.MACHINE, name="M1")
    tasks = [net.add_node(NodeType.TASK, supply=1, name=f"T{i}") for i in range(3)]
    net.add_arc(m0.node_id, sink.node_id, 2, 0).flow = 2
    net.add_arc(m1.node_id, sink.node_id, 1, 0).flow = 1
    net.add_arc(agg.node_id, m0.node_id, 2, 0).flow = 2
    net.add_arc(agg.node_id, m1.node_id, 1, 0).flow = 1
    for task in tasks:
        net.add_arc(task.node_id, agg.node_id, 1, 0).flow = 1
    task_nodes = {i: t.node_id for i, t in enumerate(tasks)}
    machine_nodes = {0: m0.node_id, 1: m1.node_id}
    return net, task_nodes, machine_nodes, sink.node_id


class TestExtraction:
    def test_direct_arcs(self):
        net, task_nodes, machine_nodes, sink = solved_direct_network()
        placements = extract_placements(net, task_nodes, machine_nodes, sink)
        assert placements == {0: 0, 1: 1}
        assert unscheduled_tasks(net, task_nodes, placements) == [2]

    def test_flow_through_aggregators(self):
        net, task_nodes, machine_nodes, sink = solved_aggregated_network()
        placements = extract_placements(net, task_nodes, machine_nodes, sink)
        assert len(placements) == 3
        # Machine capacities respected: two tasks on M0, one on M1.
        assert sorted(placements.values()) == [0, 0, 1]

    def test_zero_flow_produces_no_placements(self):
        net, task_nodes, machine_nodes, sink = solved_direct_network()
        net.clear_flow()
        placements = extract_placements(net, task_nodes, machine_nodes, sink)
        assert placements == {}
        assert sorted(unscheduled_tasks(net, task_nodes, placements)) == [0, 1, 2]

    def test_extraction_from_real_solver_output(self):
        """End-to-end: solve a policy-built network and check the placements
        against an independently computed flow decomposition."""
        from repro.core import GraphManager, QuincyPolicy
        from repro.solvers import CostScalingSolver
        from tests.conftest import make_cluster_state, make_job

        state = make_cluster_state(num_machines=6, slots_per_machine=2)
        state.submit_job(make_job(job_id=1, num_tasks=8))
        manager = GraphManager(QuincyPolicy())
        network = manager.update(state, now=0.0)
        CostScalingSolver().solve(network)
        placements = extract_placements(
            network, manager.task_nodes, manager.machine_nodes, manager.sink_node
        )
        # Every placement must respect machine slot capacity.
        per_machine = {}
        for machine_id in placements.values():
            per_machine[machine_id] = per_machine.get(machine_id, 0) + 1
        for machine_id, count in per_machine.items():
            assert count <= state.topology.machine(machine_id).num_slots
        # The number of placements equals the flow into machine nodes.
        machine_inflow = sum(
            arc.flow
            for machine_node in manager.machine_nodes.values()
            for arc in network.incoming(machine_node)
        )
        assert len(placements) == machine_inflow

    def test_rack_aggregator_paths(self):
        """Tokens propagate through multi-level aggregation (X -> rack -> machine)."""
        net = FlowNetwork()
        sink = net.add_node(NodeType.SINK, supply=-1)
        rack = net.add_node(NodeType.RACK_AGGREGATOR, name="R0")
        machine = net.add_node(NodeType.MACHINE, name="M0")
        task = net.add_node(NodeType.TASK, supply=1, name="T0")
        net.add_arc(machine.node_id, sink.node_id, 1, 0).flow = 1
        net.add_arc(rack.node_id, machine.node_id, 1, 0).flow = 1
        net.add_arc(task.node_id, rack.node_id, 1, 0).flow = 1
        placements = extract_placements(
            net, {7: task.node_id}, {3: machine.node_id}, sink.node_id
        )
        assert placements == {7: 3}
