"""Randomized equivalence suite for incremental graph construction.

The graph manager's incremental path must be indistinguishable from the
full rebuild it replaces, for *any* sequence of cluster mutations.  A
seeded fuzzer drives multi-round cluster churn -- task submissions,
placements, migrations, preemptions, completions, machine failures and
recoveries, monitoring refreshes, job removals -- against a manager in
cross-check mode (``verify_changes=True``), which asserts after every round
that

* the persistent, mutated-in-place network is structurally identical to a
  from-scratch rebuild (nodes, supplies, arcs, capacities, costs), and
* the directly-emitted :class:`ChangeBatch` replays the previous round's
  network into the rebuild (batch ≡ diff).

On top of the structural check, each round is wired into the cross-solver
equivalence harness: the incremental cost-scaling solver consumes the
directly-emitted batches (delta path) and its optimal cost must match the
networkx oracle, so solver results agree end to end.

Tier-1 runs 24+ seeds across the Quincy and cpu_memory policies; the CI
job runs this file in a dedicated fail-fast step.
"""

from __future__ import annotations

import random

import pytest

from repro.core import GraphManager
from repro.core.policies import CpuMemoryPolicy, QuincyPolicy
from repro.solvers import IncrementalCostScalingSolver
from tests.conftest import make_cluster_state, make_job, reference_min_cost

#: Tier-1 seed set (>= 24 seeds, split across both policies).
TIER1_SEEDS = range(12)
ROUNDS = 6


def _random_job(rng: random.Random, job_id: int, num_machines: int, now: float):
    """A job with fuzzed size, locality, priority, and input volume."""
    num_tasks = rng.randint(1, 5)
    locality = {}
    for machine_id in rng.sample(range(num_machines), rng.randint(0, min(4, num_machines))):
        locality[machine_id] = round(rng.uniform(0.05, 0.7), 2)
    job = make_job(
        job_id=job_id,
        num_tasks=num_tasks,
        submit_time=now,
        input_size_gb=round(rng.uniform(0.0, 8.0), 2),
        input_locality=locality,
    )
    for task in job.tasks:
        task.priority = rng.choice((0, 0, 1, 10))
        task.cpu_request = rng.choice((0.5, 1.0, 2.0))
        task.ram_request_gb = rng.choice((1.0, 2.0, 4.0))
    return job


def _mutate_cluster(rng: random.Random, state, now: float, next_job_id: int) -> int:
    """Apply a random batch of cluster mutations; returns the next job id."""
    for _ in range(rng.randint(1, 5)):
        operation = rng.random()
        if operation < 0.30:
            state.submit_job(
                _random_job(rng, next_job_id, state.topology.num_machines, now)
            )
            next_job_id += 1
        elif operation < 0.55:
            pending = state.pending_tasks()
            if pending:
                task = rng.choice(pending)
                candidates = [
                    m
                    for m in state.topology.machines
                    if state.free_slots(m) > 0
                ]
                if candidates:
                    state.place_task(task.task_id, rng.choice(candidates), now)
        elif operation < 0.70:
            running = state.running_tasks()
            if running:
                task = rng.choice(running)
                if rng.random() < 0.5:
                    state.complete_task(task.task_id, now)
                else:
                    state.preempt_task(task.task_id, now)
        elif operation < 0.80:
            running = state.running_tasks()
            if running:
                task = rng.choice(running)
                candidates = [
                    m
                    for m in state.topology.machines
                    if state.free_slots(m) > 0 and m != task.machine_id
                ]
                if candidates:
                    state.migrate_task(task.task_id, rng.choice(candidates), now)
        elif operation < 0.90:
            machine_ids = list(state.topology.machines)
            machine = state.topology.machine(rng.choice(machine_ids))
            available = [
                m
                for m in state.topology.machines.values()
                if m.is_available
            ]
            if machine.is_available and len(available) > 1:
                state.fail_machine(machine.machine_id, now)
            elif not machine.is_available:
                state.recover_machine(machine.machine_id, now)
        elif operation < 0.97:
            machine_id = rng.choice(list(state.topology.machines))
            state.monitor.record_network_use(
                machine_id, rng.randint(0, 2000), now
            )
        else:
            # Remove a fully terminated job, if any exists.
            for job_id, job in list(state.jobs.items()):
                if all(
                    not (t.is_pending or t.is_running) for t in job.tasks
                ) and job.tasks:
                    state.remove_job(job_id)
                    break
    return next_job_id


def run_fuzzed_rounds(seed: int, policy_factory) -> None:
    """Drive fuzzed churn through a cross-checking incremental manager."""
    rng = random.Random(seed)
    state = make_cluster_state(
        num_machines=rng.choice((4, 6, 8)), machines_per_rack=rng.choice((2, 3, 4))
    )
    state.submit_job(_random_job(rng, 1, state.topology.num_machines, 0.0))
    next_job_id = 2

    manager = GraphManager(policy_factory(), verify_changes=True)
    solver = IncrementalCostScalingSolver()
    incremental_rounds = 0

    for round_index in range(ROUNDS):
        now = round_index * 10.0
        if round_index:
            next_job_id = _mutate_cluster(rng, state, now, next_job_id)
        network = manager.update(state, now)
        if manager.last_update_stats.mode == "incremental":
            incremental_rounds += 1
        assert network.validate_structure() == [], (
            f"seed {seed} round {round_index}: invalid network"
        )
        if not manager.task_nodes:
            solver.reset()
            continue
        # Wire into the solver equivalence harness: the incremental solver
        # consumes the directly-emitted batch; its cost must match the
        # oracle.
        result = solver.solve(network, changes=manager.last_changes)
        expected = reference_min_cost(network.copy())
        assert result.total_cost == expected, (
            f"seed {seed} round {round_index}: incremental solver found "
            f"{result.total_cost}, oracle says {expected}"
        )

    # The fuzz must actually exercise the incremental path (the first round
    # is always a full build; emptiness transitions may add a few more).
    assert incremental_rounds >= 1, f"seed {seed}: incremental path never taken"


@pytest.mark.parametrize("seed", TIER1_SEEDS)
def test_quincy_incremental_equivalence(seed):
    run_fuzzed_rounds(seed, QuincyPolicy)


@pytest.mark.parametrize("seed", TIER1_SEEDS)
def test_cpu_memory_incremental_equivalence(seed):
    run_fuzzed_rounds(seed, CpuMemoryPolicy)


def test_aggressive_quincy_threshold_incremental_equivalence():
    """The Figure-15 aggressive threshold (2%) builds many more preference
    arcs; the incremental path must keep up with the denser graphs."""
    run_fuzzed_rounds(
        101,
        lambda: QuincyPolicy(machine_preference_threshold=0.02),
    )


def test_incremental_rounds_dominate_on_low_churn():
    """Steady-state rounds must take the incremental path, not fall back."""
    state = make_cluster_state(num_machines=8)
    state.submit_job(make_job(job_id=1, num_tasks=8))
    manager = GraphManager(QuincyPolicy(), verify_changes=True)
    for round_index in range(5):
        manager.update(state, now=round_index * 5.0)
    assert manager.full_updates == 1  # only the initial build
    assert manager.incremental_updates == 4
