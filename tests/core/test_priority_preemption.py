"""Priority preemption expressed through unscheduled costs (Section 3.3).

Flow-based scheduling supports priority preemption without any special
mechanism: a high-priority task is more expensive to leave unscheduled, so
when slots are scarce the min-cost solution routes the low-priority task's
flow to its unscheduled aggregator (preempting it) and gives the slot to the
high-priority task.
"""

from __future__ import annotations

import pytest

from repro.cluster import ClusterState, Job, JobType, Task, build_topology
from repro.core import FirmamentScheduler, QuincyPolicy
from repro.core.policies import LoadSpreadingPolicy


def make_single_slot_cluster() -> ClusterState:
    """One machine with a single slot: any contention forces a choice."""
    topology = build_topology(num_machines=1, slots_per_machine=1)
    return ClusterState(topology)


def submit_task(state: ClusterState, job_id: int, task_id: int, priority: int,
                submit_time: float = 0.0) -> Task:
    job_type = JobType.SERVICE if priority >= 10 else JobType.BATCH
    job = Job(job_id=job_id, job_type=job_type, priority=priority, submit_time=submit_time)
    task = Task(task_id=task_id, job_id=job_id, duration=600.0, priority=priority,
                submit_time=submit_time)
    job.add_task(task)
    state.submit_job(job)
    return task


def test_high_priority_task_preempts_running_batch_task():
    """Quincy-policy preemption: the service task displaces the batch task.

    The load-spreading policy is excluded on purpose: it only exposes *free*
    slots through its occupancy-level nodes (like SwarmKit, it never
    preempts), so priority preemption is a property of policies that give
    every task a path to every machine.
    """
    state = make_single_slot_cluster()
    batch = submit_task(state, job_id=1, task_id=1, priority=1)
    scheduler = FirmamentScheduler(QuincyPolicy())
    scheduler.schedule_and_apply(state, now=0.0)
    assert batch.is_running

    service = submit_task(state, job_id=2, task_id=2, priority=10, submit_time=1.0)
    decision = scheduler.schedule(state, now=1.0)
    # The single slot goes to the service task and the batch task is
    # preempted back to the pending state.
    assert service.task_id in decision.placements
    assert batch.task_id in decision.preemptions


@pytest.mark.parametrize("policy_factory", [QuincyPolicy, LoadSpreadingPolicy])
class TestNoSpuriousPreemption:
    def test_equal_priority_does_not_preempt(self, policy_factory):
        state = make_single_slot_cluster()
        first = submit_task(state, job_id=1, task_id=1, priority=1)
        scheduler = FirmamentScheduler(policy_factory())
        scheduler.schedule_and_apply(state, now=0.0)
        assert first.is_running

        second = submit_task(state, job_id=2, task_id=2, priority=1, submit_time=1.0)
        decision = scheduler.schedule(state, now=1.0)
        # Preempting an equal-priority task buys nothing (the preemption
        # penalty makes it strictly worse), so the running task keeps its
        # slot and the newcomer waits.
        assert not decision.preemptions
        assert second.task_id in decision.unscheduled

    def test_low_priority_arrival_does_not_preempt_service_task(self, policy_factory):
        state = make_single_slot_cluster()
        service = submit_task(state, job_id=1, task_id=1, priority=10)
        scheduler = FirmamentScheduler(policy_factory())
        scheduler.schedule_and_apply(state, now=0.0)
        assert service.is_running

        batch = submit_task(state, job_id=2, task_id=2, priority=1, submit_time=1.0)
        decision = scheduler.schedule(state, now=1.0)
        assert not decision.preemptions
        assert batch.task_id in decision.unscheduled


def test_unscheduled_cost_grows_with_priority():
    policy = QuincyPolicy()
    low = Task(task_id=1, job_id=1, priority=1)
    high = Task(task_id=2, job_id=2, priority=10)
    assert policy.unscheduled_cost(high, now=0.0) > policy.unscheduled_cost(low, now=0.0)


def test_priority_weight_can_be_disabled():
    policy = QuincyPolicy()
    policy.priority_unscheduled_weight = 0
    low = Task(task_id=1, job_id=1, priority=1)
    high = Task(task_id=2, job_id=2, priority=10)
    assert policy.unscheduled_cost(high, now=0.0) == policy.unscheduled_cost(low, now=0.0)
