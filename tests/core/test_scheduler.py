"""Unit tests for the Firmament scheduler loop."""

import pytest

from repro.core import FirmamentScheduler, LoadSpreadingPolicy, QuincyPolicy
from repro.core.scheduler import SchedulingDecision
from repro.solvers import CostScalingSolver, DualAlgorithmExecutor, RelaxationSolver
from tests.conftest import make_cluster_state, make_job


class TestSchedulingDecisions:
    def test_places_all_tasks_when_capacity_allows(self, small_state):
        small_state.submit_job(make_job(job_id=1, num_tasks=6))
        scheduler = FirmamentScheduler(QuincyPolicy())
        decision = scheduler.schedule_and_apply(small_state, now=0.0)
        assert len(decision.placements) == 6
        assert decision.unscheduled == []
        assert decision.algorithm_runtime > 0
        assert decision.solver_result is not None
        assert small_state.slot_utilization() == pytest.approx(6 / 16)

    def test_leaves_tasks_unscheduled_when_cluster_full(self):
        state = make_cluster_state(num_machines=2, slots_per_machine=1)
        state.submit_job(make_job(job_id=1, num_tasks=5))
        scheduler = FirmamentScheduler(QuincyPolicy())
        decision = scheduler.schedule_and_apply(state, now=0.0)
        assert len(decision.placements) == 2
        assert len(decision.unscheduled) == 3

    def test_empty_workload_short_circuits(self, small_state):
        scheduler = FirmamentScheduler(QuincyPolicy())
        decision = scheduler.schedule(small_state, now=0.0)
        assert decision.placements == {}
        assert decision.solver_result is None
        assert scheduler.statistics.runs == 1

    def test_running_tasks_keep_their_machines_by_default(self, loaded_state):
        scheduler = FirmamentScheduler(QuincyPolicy())
        decision = scheduler.schedule(loaded_state, now=1.0)
        assert decision.migrations == {}
        assert decision.preemptions == []

    def test_migrations_disabled_pins_running_tasks(self):
        state = make_cluster_state(num_machines=4, slots_per_machine=2)
        job = make_job(job_id=1, num_tasks=2)
        state.submit_job(job)
        # Both tasks on machine 0: the load-spreading policy would prefer to
        # move one, but migrations are disabled.
        state.place_task(job.tasks[0].task_id, 0, 0.0)
        state.place_task(job.tasks[1].task_id, 0, 0.0)
        scheduler = FirmamentScheduler(
            LoadSpreadingPolicy(), solver=CostScalingSolver(), allow_migrations=False
        )
        decision = scheduler.schedule(state, now=1.0)
        assert decision.migrations == {}
        assert decision.preemptions == []

    def test_statistics_accumulate(self, small_state):
        small_state.submit_job(make_job(job_id=1, num_tasks=3))
        scheduler = FirmamentScheduler(QuincyPolicy())
        scheduler.schedule_and_apply(small_state, now=0.0)
        scheduler.schedule_and_apply(small_state, now=1.0)
        stats = scheduler.statistics
        assert stats.runs == 2
        assert stats.total_placements == 3
        assert len(stats.algorithm_runtimes) == 2
        assert stats.total_algorithm_runtime > 0

    def test_default_solver_is_dual_executor(self):
        scheduler = FirmamentScheduler(QuincyPolicy())
        assert isinstance(scheduler.solver, DualAlgorithmExecutor)

    def test_decision_num_assignments(self):
        decision = SchedulingDecision(placements={1: 0, 2: 1}, migrations={3: 2})
        assert decision.num_assignments == 3


class TestApply:
    def test_apply_performs_preemptions_before_placements(self):
        state = make_cluster_state(num_machines=1, slots_per_machine=1)
        running = make_job(job_id=1, num_tasks=1)
        pending = make_job(job_id=2, num_tasks=1)
        state.submit_job(running)
        state.submit_job(pending)
        state.place_task(running.tasks[0].task_id, 0, 0.0)
        decision = SchedulingDecision(
            placements={pending.tasks[0].task_id: 0},
            preemptions=[running.tasks[0].task_id],
        )
        FirmamentScheduler(QuincyPolicy()).apply(state, decision, now=5.0)
        assert state.tasks[pending.tasks[0].task_id].is_running
        assert state.tasks[running.tasks[0].task_id].is_pending

    def test_apply_migration(self):
        state = make_cluster_state(num_machines=2, slots_per_machine=1)
        job = make_job(job_id=1, num_tasks=1)
        state.submit_job(job)
        state.place_task(job.tasks[0].task_id, 0, 0.0)
        decision = SchedulingDecision(migrations={job.tasks[0].task_id: 1})
        FirmamentScheduler(QuincyPolicy()).apply(state, decision, now=3.0)
        assert state.tasks[job.tasks[0].task_id].machine_id == 1


class TestContinuousRescheduling:
    def test_multiple_rounds_with_arrivals_and_departures(self):
        """Drive several rounds through the full scheduler with the dual
        solver, checking that state stays consistent throughout."""
        state = make_cluster_state(num_machines=6, slots_per_machine=2)
        scheduler = FirmamentScheduler(QuincyPolicy())
        state.submit_job(make_job(job_id=1, num_tasks=5, submit_time=0.0))
        scheduler.schedule_and_apply(state, now=0.0)

        for round_index in range(1, 4):
            # A few tasks finish, a new job arrives.
            running = state.running_tasks()
            for task in running[:2]:
                state.complete_task(task.task_id, now=float(round_index))
            state.submit_job(
                make_job(job_id=1 + round_index, num_tasks=3, submit_time=float(round_index))
            )
            decision = scheduler.schedule_and_apply(state, now=float(round_index))
            # Slot capacity is never violated.
            for machine_id in state.topology.machines:
                assert (
                    state.task_count_on_machine(machine_id)
                    <= state.topology.machine(machine_id).num_slots
                )
        assert scheduler.statistics.runs == 4

    def test_quincy_configuration_equivalence(self):
        """Firmament restricted to cost scaling behaves like Quincy: same
        total cost as the dual-algorithm configuration on the same state."""
        state_a = make_cluster_state(num_machines=6, slots_per_machine=2)
        state_b = make_cluster_state(num_machines=6, slots_per_machine=2)
        for state in (state_a, state_b):
            state.submit_job(
                make_job(job_id=1, num_tasks=8, input_size_gb=4.0, input_locality={2: 0.5})
            )
        firmament = FirmamentScheduler(QuincyPolicy())
        quincy = FirmamentScheduler(QuincyPolicy(), solver=CostScalingSolver())
        cost_firmament = firmament.schedule(state_a, now=0.0).total_cost
        cost_quincy = quincy.schedule(state_b, now=0.0).total_cost
        assert cost_firmament == cost_quincy
