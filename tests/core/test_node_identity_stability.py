"""Node-identity stability across scheduling runs (warm-start prerequisite).

The incremental solvers key the previous solution by node-id pairs, so the
graph manager must hand out the *same* node id for the same task, machine,
rack, job, and policy aggregator on every run for as long as the entity
exists -- and must never reuse a retired id for a different entity.
"""

from __future__ import annotations

import pytest

from repro.core import GraphManager
from repro.core.policies import CpuMemoryPolicy, QuincyPolicy
from repro.flow.graph import NodeType

from tests.conftest import make_cluster_state, make_job


@pytest.mark.parametrize("policy_factory", [QuincyPolicy, CpuMemoryPolicy])
class TestNodeIdentityStability:
    def test_entity_nodes_keep_their_ids_across_runs(self, policy_factory):
        state = make_cluster_state(num_machines=4)
        state.submit_job(make_job(job_id=1, num_tasks=4))
        manager = GraphManager(policy_factory())

        manager.update(state, now=0.0)
        first_tasks = dict(manager.task_nodes)
        first_machines = dict(manager.machine_nodes)
        first_sink = manager.sink_node

        manager.update(state, now=5.0)
        assert manager.task_nodes == first_tasks
        assert manager.machine_nodes == first_machines
        assert manager.sink_node == first_sink

    def test_policy_aggregators_keep_their_ids_across_runs(self, policy_factory):
        state = make_cluster_state(num_machines=4)
        state.submit_job(make_job(job_id=1, num_tasks=4))
        manager = GraphManager(policy_factory())

        first = manager.update(state, now=0.0)
        second = manager.update(state, now=5.0)

        def aggregator_ids(network):
            return {
                node.name: node.node_id
                for node in network.nodes()
                if node.node_type
                in (NodeType.CLUSTER_AGGREGATOR, NodeType.REQUEST_AGGREGATOR)
            }

        assert aggregator_ids(first) == aggregator_ids(second)

    def test_new_tasks_get_fresh_ids_and_old_ids_are_never_reused(self, policy_factory):
        state = make_cluster_state(num_machines=4)
        first_job = make_job(job_id=1, num_tasks=3)
        state.submit_job(first_job)
        manager = GraphManager(policy_factory())
        manager.update(state, now=0.0)
        retired_ids = set(manager.task_nodes.values())

        # First job's tasks run and complete; a new job arrives.
        for index, task in enumerate(first_job.tasks):
            state.place_task(task.task_id, index % 4, now=0.0)
            state.complete_task(task.task_id, now=1.0)
        second_job = make_job(job_id=2, num_tasks=3)
        state.submit_job(second_job)
        manager.update(state, now=2.0)

        new_ids = set(manager.task_nodes.values())
        assert not new_ids & retired_ids
        assert set(manager.task_nodes) == {t.task_id for t in second_job.tasks}

    def test_failed_machine_node_is_retired(self, policy_factory):
        state = make_cluster_state(num_machines=4)
        state.submit_job(make_job(job_id=1, num_tasks=2))
        manager = GraphManager(policy_factory())
        manager.update(state, now=0.0)
        assert 0 in manager.machine_nodes

        state.fail_machine(0, now=1.0)
        network = manager.update(state, now=2.0)
        assert 0 not in manager.machine_nodes
        machine_refs = {
            node.ref for node in network.nodes() if node.node_type is NodeType.MACHINE
        }
        assert 0 not in machine_refs
