"""Tests for the CPU/memory, shortest-job-first, and random policies."""

from __future__ import annotations

import pytest

from repro.cluster.knowledge_base import KnowledgeBase
from repro.cluster.resources import ResourceVector
from repro.core import FirmamentScheduler, GraphManager
from repro.core.policies import (
    CpuMemoryPolicy,
    RandomPlacementPolicy,
    ShortestJobFirstPolicy,
)
from repro.flow.graph import NodeType
from repro.flow.validation import check_feasibility
from repro.solvers import RelaxationSolver

from tests.conftest import make_cluster_state, make_job


def solve_with_policy(policy, state, now=0.0):
    """Build the policy's network, solve it, and return (network, result)."""
    manager = GraphManager(policy)
    network = manager.update(state, now=now)
    result = RelaxationSolver().solve(network)
    return network, result


class TestCpuMemoryPolicy:
    def test_rejects_bad_granularity(self):
        with pytest.raises(ValueError):
            CpuMemoryPolicy(cpu_granularity=0)

    def test_network_is_feasible_and_uses_request_aggregators(self):
        state = make_cluster_state(num_machines=4)
        state.submit_job(make_job(job_id=1, num_tasks=6))
        network, _ = solve_with_policy(CpuMemoryPolicy(), state)
        assert not check_feasibility(network)
        assert network.nodes_of_type(NodeType.REQUEST_AGGREGATOR)

    def test_tasks_with_same_request_share_one_aggregator(self):
        state = make_cluster_state(num_machines=4)
        state.submit_job(make_job(job_id=1, num_tasks=8))
        network, _ = solve_with_policy(CpuMemoryPolicy(), state)
        assert len(network.nodes_of_type(NodeType.REQUEST_AGGREGATOR)) == 1

    def test_distinct_requests_get_distinct_aggregators(self):
        state = make_cluster_state(num_machines=4)
        job = make_job(job_id=1, num_tasks=4)
        for task in job.tasks[:2]:
            task.cpu_request = 8.0
            task.ram_request_gb = 32.0
        state.submit_job(job)
        network, _ = solve_with_policy(CpuMemoryPolicy(), state)
        assert len(network.nodes_of_type(NodeType.REQUEST_AGGREGATOR)) == 2

    def test_scheduler_places_tasks_that_fit(self):
        state = make_cluster_state(num_machines=4, slots_per_machine=2)
        state.submit_job(make_job(job_id=1, num_tasks=4))
        scheduler = FirmamentScheduler(CpuMemoryPolicy())
        decision = scheduler.schedule_and_apply(state, now=0.0)
        assert len(decision.placements) == 4

    def test_oversized_tasks_stay_unscheduled(self):
        state = make_cluster_state(num_machines=2)
        job = make_job(job_id=1, num_tasks=2)
        for task in job.tasks:
            task.cpu_request = 10_000.0
        state.submit_job(job)
        scheduler = FirmamentScheduler(CpuMemoryPolicy())
        decision = scheduler.schedule_and_apply(state, now=0.0)
        assert not decision.placements
        assert len(decision.unscheduled) == 2

    def test_placements_never_overcommit_machines(self):
        state = make_cluster_state(num_machines=2, slots_per_machine=8)
        machine_cpu = state.topology.machine(0).cpu_cores
        job = make_job(job_id=1, num_tasks=6)
        for task in job.tasks:
            task.cpu_request = machine_cpu / 2.0  # only two fit per machine
        state.submit_job(job)
        scheduler = FirmamentScheduler(CpuMemoryPolicy())
        scheduler.schedule_and_apply(state, now=0.0)
        for machine_id in state.topology.machines:
            in_use = state.resources_in_use(machine_id)
            capacity = ResourceVector.for_machine(state.topology.machine(machine_id))
            assert in_use.cpu_cores <= capacity.cpu_cores + 1e-9

    def test_running_tasks_keep_continuation_arcs(self):
        state = make_cluster_state(num_machines=2)
        job = make_job(job_id=1, num_tasks=1)
        state.submit_job(job)
        state.place_task(job.tasks[0].task_id, 0, now=0.0)
        manager = GraphManager(CpuMemoryPolicy())
        network = manager.update(state, now=1.0)
        task_node = manager.task_nodes[job.tasks[0].task_id]
        machine_node = manager.machine_nodes[0]
        assert network.has_arc(task_node, machine_node)


class TestShortestJobFirstPolicy:
    def test_short_tasks_win_scarce_slots(self):
        state = make_cluster_state(num_machines=1, slots_per_machine=2)
        kb = KnowledgeBase()
        short_job = make_job(job_id=1, num_tasks=2, duration=5.0)
        long_job = make_job(job_id=2, num_tasks=2, duration=500.0)
        # Give the two jobs distinguishable resource classes and seed the
        # knowledge base with their historical runtimes.
        for task in short_job.tasks:
            task.cpu_request = 1.0
        for task in long_job.tasks:
            task.cpu_request = 2.0
        for _ in range(5):
            kb.record_completion(short_job.tasks[0], runtime=5.0)
            kb.record_completion(long_job.tasks[0], runtime=500.0)
        state.submit_job(short_job)
        state.submit_job(long_job)

        scheduler = FirmamentScheduler(ShortestJobFirstPolicy(knowledge_base=kb))
        decision = scheduler.schedule_and_apply(state, now=0.0)
        placed = set(decision.placements)
        assert placed == {task.task_id for task in short_job.tasks}

    def test_network_is_feasible(self):
        state = make_cluster_state(num_machines=2)
        state.submit_job(make_job(job_id=1, num_tasks=3))
        network, _ = solve_with_policy(ShortestJobFirstPolicy(), state)
        assert not check_feasibility(network)

    def test_runtime_cost_is_capped(self):
        kb = KnowledgeBase(default_runtime=1e9)
        policy = ShortestJobFirstPolicy(knowledge_base=kb)
        job = make_job(job_id=1, num_tasks=1)
        assert policy.scheduling_cost(job.tasks[0]) <= (
            policy.max_runtime_cost + policy.placement_base_cost
        )

    def test_default_knowledge_base_is_created(self):
        assert ShortestJobFirstPolicy().knowledge_base is not None


class TestRandomPlacementPolicy:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            RandomPlacementPolicy(preference_arcs_per_task=0)
        with pytest.raises(ValueError):
            RandomPlacementPolicy(max_cost=0)

    def test_network_is_feasible_and_all_tasks_place(self):
        state = make_cluster_state(num_machines=4)
        state.submit_job(make_job(job_id=1, num_tasks=6))
        network, _ = solve_with_policy(RandomPlacementPolicy(seed=3), state)
        assert not check_feasibility(network)
        scheduler = FirmamentScheduler(RandomPlacementPolicy(seed=3))
        decision = scheduler.schedule_and_apply(state, now=0.0)
        assert len(decision.placements) == 6

    def test_preferences_are_stable_across_runs(self):
        state = make_cluster_state(num_machines=6)
        state.submit_job(make_job(job_id=1, num_tasks=4))
        policy = RandomPlacementPolicy(seed=9)
        manager = GraphManager(policy)
        first = manager.update(state, now=0.0)
        second = manager.update(state, now=1.0)
        task_arcs_first = {
            arc.key(): arc.cost
            for arc in first.arcs()
            if first.node(arc.src).node_type is NodeType.TASK
            and first.node(arc.dst).node_type is NodeType.MACHINE
        }
        task_arcs_second = {
            arc.key(): arc.cost
            for arc in second.arcs()
            if second.node(arc.src).node_type is NodeType.TASK
            and second.node(arc.dst).node_type is NodeType.MACHINE
        }
        assert task_arcs_first == task_arcs_second

    def test_different_seeds_give_different_preferences(self):
        state = make_cluster_state(num_machines=8)
        state.submit_job(make_job(job_id=1, num_tasks=6))
        arcs = []
        for seed in (1, 2):
            manager = GraphManager(RandomPlacementPolicy(seed=seed))
            network = manager.update(state, now=0.0)
            arcs.append(
                {
                    arc.key()
                    for arc in network.arcs()
                    if network.node(arc.src).node_type is NodeType.TASK
                    and network.node(arc.dst).node_type is NodeType.MACHINE
                }
            )
        assert arcs[0] != arcs[1]
