"""Sharded-vs-monolithic scheduling equivalence under fuzzed churn.

The sharded scheduler trades the monolithic solver's single global
optimum for per-cell optima plus cross-cell balancing; the contract is
that it never trades away *placement quality*: over a multi-round fuzzed
churn sequence, the sharded scheduler (with its balancer) must keep as
many tasks running as the monolithic Firmament scheduler, never
oversubscribe a machine, and never place a task on a failed one.  Within
each cell the placements are exact solver output, so per-cell optimality
rides on the solver equivalence suite; this harness pins the end-to-end
cluster behavior on top.

The simulator-level tests additionally pin the apply-or-void conservation
law (``recorded == applied + dropped + voided``) for sharded runs, so the
multi-cell merge cannot silently lose or double-count a placement.
"""

from __future__ import annotations

import random

import pytest

from repro.core import FirmamentScheduler, ShardedScheduler
from repro.core.policies import CpuMemoryPolicy, QuincyPolicy
from repro.simulation.simulator import (
    ClusterSimulator,
    SimulationConfig,
    verify_placement_conservation,
)
from repro.simulation.trace import GoogleTraceGenerator, TraceConfig
from tests.conftest import make_cluster_state, make_job
from tests.core.test_incremental_graph_equivalence import _random_job

SEEDS = range(6)
ROUNDS = 8


def make_churn_script(seed: int):
    """Pre-draw a deterministic churn script, independent of any scheduler.

    The incremental-equivalence fuzzer (`_mutate_cluster`) draws from its
    rng *conditionally on cluster state*, so two schedulers placing
    differently would diverge into different workloads -- useless for a
    quality comparison.  This script fixes the comparison: per round, a
    set of fuzzed job submissions (specs drawn up front via `_random_job`)
    and machine availability toggles (fail if up, recover if down), whose
    evolution depends only on the script itself.  Replaying it against two
    schedulers is like-for-like by construction.

    Returns ``(num_machines, machines_per_rack, rounds)`` where each round
    is ``(job_factories, machine_toggles)``.
    """
    rng = random.Random(seed)
    num_machines = rng.choice((8, 12, 16))
    machines_per_rack = rng.choice((2, 4))
    rounds = []
    next_job_id = 1
    for round_index in range(ROUNDS):
        job_factories = []
        for _ in range(rng.randint(0, 2) if round_index else 1):
            job_id = next_job_id
            next_job_id += 1
            job_seed = seed * 10_000 + round_index * 100 + job_id
            job_factories.append(
                lambda now, job_id=job_id, job_seed=job_seed: _random_job(
                    random.Random(job_seed), job_id, num_machines, now
                )
            )
        toggles = rng.sample(range(num_machines), rng.randint(0, 2))
        rounds.append((job_factories, toggles))
    return num_machines, machines_per_rack, rounds


def apply_script_round(state, job_factories, toggles, now) -> None:
    """Apply one scripted churn round to a cluster state."""
    for factory in job_factories:
        state.submit_job(factory(now))
    for machine_id in toggles:
        machine = state.topology.machine(machine_id)
        if machine.is_available:
            healthy = state.topology.healthy_machines()
            if len(healthy) > 1:
                state.fail_machine(machine_id, now)
        else:
            state.recover_machine(machine_id, now)


def _assert_decision_sound(state, decision) -> None:
    """Placements target healthy machines and never oversubscribe.

    Slot accounting follows the apply order (preemptions, then migrations,
    then placements): a slot freed by a same-round preemption or migration
    source is legitimately reusable within the round.
    """
    net_load = {}
    for task_id in decision.preemptions:
        task = state.tasks[task_id]
        net_load[task.machine_id] = net_load.get(task.machine_id, 0) - 1
    for task_id, machine_id in decision.migrations.items():
        task = state.tasks[task_id]
        net_load[task.machine_id] = net_load.get(task.machine_id, 0) - 1
        net_load[machine_id] = net_load.get(machine_id, 0) + 1
    for task_id, machine_id in decision.placements.items():
        machine = state.topology.machines.get(machine_id)
        assert machine is not None, f"task {task_id} placed on absent machine"
        assert machine.is_available, f"task {task_id} placed on failed machine"
        net_load[machine_id] = net_load.get(machine_id, 0) + 1
    for machine_id, delta in net_load.items():
        assert delta <= state.free_slots(machine_id), (
            f"machine {machine_id} oversubscribed by the merged decision"
        )


def run_churn(seed: int, make_scheduler):
    """Replay the seed's churn script; returns (running_tasks, state).

    The scripted rounds are followed by two quiet settling rounds (no
    mutations): a cross-cell migration planned in round N lands in round
    N+1, so without settling the comparison would penalize the balancer's
    one-round latency rather than its steady-state quality.
    """
    num_machines, machines_per_rack, rounds = make_churn_script(seed)
    state = make_cluster_state(
        num_machines=num_machines, machines_per_rack=machines_per_rack
    )
    scheduler = make_scheduler()
    try:
        for round_index in range(ROUNDS + 2):
            now = round_index * 10.0
            if round_index < ROUNDS:
                job_factories, toggles = rounds[round_index]
                apply_script_round(state, job_factories, toggles, now)
            decision = scheduler.schedule(state, now)
            _assert_decision_sound(state, decision)
            scheduler.apply(state, decision, now)
    finally:
        scheduler.close()
    return len(state.running_tasks()), state


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize(
    "policy_factory", (QuincyPolicy, CpuMemoryPolicy), ids=("quincy", "cpu_memory")
)
def test_sharded_matches_monolithic_placement_quality(seed, policy_factory):
    """Same scripted churn, same number of tasks kept running at the end.

    The script is scheduler-independent, so both runs see the identical
    workload and availability timeline.  The balancer is what closes the
    gap: overflow and infeasible-home tasks re-home instead of starving,
    so sharding may not strand work a global solver would have placed.
    """
    mono_running, _ = run_churn(seed, lambda: FirmamentScheduler(policy_factory()))
    for num_cells in (2, 4):
        sharded_running, _ = run_churn(
            seed, lambda: ShardedScheduler(policy_factory, num_cells=num_cells)
        )
        assert sharded_running >= mono_running, (
            f"seed {seed}, {num_cells} cells: sharded kept {sharded_running} "
            f"tasks running, monolithic kept {mono_running}"
        )


@pytest.mark.parametrize("seed", (0, 1))
def test_sharded_worker_mode_matches_inline(seed):
    """Worker subprocesses are an execution strategy, not a policy change.

    Equally-optimal flows may break ties differently across the DIMACS
    round trip, so individual task ids can differ; what must match is
    placement *quality*: the same churn ends with the same number of
    tasks running, and every round's decision is sound.
    """

    def run(workers):
        num_machines, machines_per_rack, rounds = make_churn_script(seed)
        state = make_cluster_state(
            num_machines=num_machines, machines_per_rack=machines_per_rack
        )
        scheduler = ShardedScheduler(QuincyPolicy, num_cells=4, workers=workers)
        try:
            for round_index in range(ROUNDS):
                now = round_index * 10.0
                job_factories, toggles = rounds[round_index]
                apply_script_round(state, job_factories, toggles, now)
                decision = scheduler.schedule(state, now)
                _assert_decision_sound(state, decision)
                scheduler.apply(state, decision, now)
        finally:
            scheduler.close()
        return len(state.running_tasks())

    assert run(workers=True) == run(workers=False)


def test_sharded_simulation_conserves_placements():
    """Full simulator run: apply-or-void conservation holds per round."""
    state = make_cluster_state(
        num_machines=32, machines_per_rack=4, slots_per_machine=4
    )
    config = TraceConfig(
        num_machines=32,
        slots_per_machine=4,
        target_utilization=0.7,
        duration=120.0,
        seed=11,
    )
    generator = GoogleTraceGenerator(config, state.topology)
    scheduler = ShardedScheduler(QuincyPolicy, num_cells=4)
    simulator = ClusterSimulator(
        state, scheduler, SimulationConfig(max_time=120.0)
    )
    simulator.submit_job_stream(generator.iter_jobs())
    try:
        result = simulator.run()
    finally:
        simulator.close()
    counts = verify_placement_conservation(result)
    assert counts["recorded"] == (
        counts["applied"] + counts["dropped"] + counts["voided"]
    )
    assert result.metrics.tasks_placed > 0
    # The sharded observability chain must be threaded end to end.
    solved = [record.num_cells for record in result.schedule_records]
    assert any(n >= 1 for n in solved)
    assert len(result.metrics.cells_solved) == len(result.schedule_records)


def test_sharded_simulation_places_like_monolithic():
    """Same trace replayed: sharded placement count stays within a few
    percent of monolithic (cells constrain candidates; the balancer must
    keep the loss negligible)."""

    def replay(make_scheduler):
        state = make_cluster_state(
            num_machines=32, machines_per_rack=4, slots_per_machine=4
        )
        config = TraceConfig(
            num_machines=32,
            slots_per_machine=4,
            target_utilization=0.6,
            duration=90.0,
            seed=23,
        )
        generator = GoogleTraceGenerator(config, state.topology)
        scheduler = make_scheduler()
        simulator = ClusterSimulator(
            state, scheduler, SimulationConfig(max_time=90.0)
        )
        simulator.submit_job_stream(generator.iter_jobs())
        try:
            result = simulator.run()
        finally:
            simulator.close()
        return result.metrics.tasks_placed

    mono = replay(lambda: FirmamentScheduler(QuincyPolicy()))
    sharded = replay(lambda: ShardedScheduler(QuincyPolicy, num_cells=4))
    assert sharded >= int(mono * 0.95), (
        f"sharded placed {sharded} tasks, monolithic {mono}"
    )


def test_job_spanning_cells_after_rehoming():
    """A job whose tasks end up split across cells keeps every task
    accounted: all placed, none double-placed."""
    state = make_cluster_state(num_machines=4, machines_per_rack=2)
    state.submit_job(make_job(job_id=0, num_tasks=6))  # overflows cell 0
    scheduler = ShardedScheduler(QuincyPolicy, num_cells=2)
    placed = set()
    try:
        for round_index in range(3):
            decision = scheduler.schedule_and_apply(state, now=round_index * 5.0)
            overlap = placed & set(decision.placements)
            assert not overlap, f"tasks placed twice: {overlap}"
            placed |= set(decision.placements)
    finally:
        scheduler.close()
    assert len(placed) == 6
    assert len(state.running_tasks()) == 6
