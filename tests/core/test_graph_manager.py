"""Unit tests for the graph manager (node identity and network construction)."""

import pytest

from repro.core.graph_manager import GraphManager
from repro.core.policies import LoadSpreadingPolicy, QuincyPolicy
from repro.flow.graph import NodeType
from tests.conftest import make_cluster_state, make_job


class TestNetworkConstruction:
    def test_basic_structure(self, small_state):
        small_state.submit_job(make_job(job_id=1, num_tasks=3))
        manager = GraphManager(LoadSpreadingPolicy())
        network = manager.update(small_state, now=0.0)

        tasks = network.nodes_of_type(NodeType.TASK)
        machines = network.nodes_of_type(NodeType.MACHINE)
        sinks = network.nodes_of_type(NodeType.SINK)
        assert len(tasks) == 3
        assert len(machines) == small_state.topology.num_machines
        assert len(sinks) == 1
        assert sinks[0].supply == -3
        assert all(t.supply == 1 for t in tasks)
        assert network.validate_structure() == []

    def test_every_task_can_reach_the_sink(self, small_state):
        small_state.submit_job(make_job(job_id=1, num_tasks=4))
        manager = GraphManager(QuincyPolicy())
        network = manager.update(small_state, now=0.0)
        for task_id, node_id in manager.task_nodes.items():
            assert network.outgoing(node_id), f"task {task_id} has no outgoing arcs"

    def test_empty_workload_produces_trivial_network(self, small_state):
        manager = GraphManager(LoadSpreadingPolicy())
        network = manager.update(small_state, now=0.0)
        assert manager.task_nodes == {}
        assert network.nodes_of_type(NodeType.TASK) == []

    def test_isolated_nodes_are_pruned(self, small_state):
        # With the load-spreading policy racks are never used, so no rack
        # aggregator nodes should survive pruning.
        small_state.submit_job(make_job(job_id=1, num_tasks=2))
        manager = GraphManager(LoadSpreadingPolicy())
        network = manager.update(small_state, now=0.0)
        assert network.nodes_of_type(NodeType.RACK_AGGREGATOR) == []


class TestNodeIdentityStability:
    def test_node_ids_stable_across_runs(self, small_state):
        job = make_job(job_id=1, num_tasks=3)
        small_state.submit_job(job)
        manager = GraphManager(QuincyPolicy())
        manager.update(small_state, now=0.0)
        first_tasks = manager.task_nodes
        first_machines = manager.machine_nodes
        first_sink = manager.sink_node

        manager.update(small_state, now=1.0)
        assert manager.task_nodes == first_tasks
        assert manager.machine_nodes == first_machines
        assert manager.sink_node == first_sink

    def test_completed_task_node_retired_and_not_reused(self, small_state):
        job = make_job(job_id=1, num_tasks=2)
        small_state.submit_job(job)
        manager = GraphManager(QuincyPolicy())
        manager.update(small_state, now=0.0)
        retired_node = manager.task_nodes[job.tasks[0].task_id]

        small_state.place_task(job.tasks[0].task_id, 0, 0.0)
        small_state.complete_task(job.tasks[0].task_id, 1.0)
        manager.update(small_state, now=2.0)
        assert job.tasks[0].task_id not in manager.task_nodes

        # A newly submitted task must not recycle the retired identifier.
        new_job = make_job(job_id=2, num_tasks=1)
        small_state.submit_job(new_job)
        manager.update(small_state, now=3.0)
        assert manager.task_nodes[new_job.tasks[0].task_id] != retired_node

    def test_failed_machine_dropped_from_network(self, small_state):
        small_state.submit_job(make_job(job_id=1, num_tasks=2))
        manager = GraphManager(LoadSpreadingPolicy())
        manager.update(small_state, now=0.0)
        assert 0 in manager.machine_nodes
        small_state.topology.machine(0).fail()
        manager.update(small_state, now=1.0)
        assert 0 not in manager.machine_nodes

    def test_aggregator_identity_stable(self, small_state):
        small_state.submit_job(make_job(job_id=1, num_tasks=2))
        manager = GraphManager(LoadSpreadingPolicy())
        first = manager.update(small_state, now=0.0)
        agg_first = first.nodes_of_type(NodeType.CLUSTER_AGGREGATOR)[0].node_id
        second = manager.update(small_state, now=1.0)
        agg_second = second.nodes_of_type(NodeType.CLUSTER_AGGREGATOR)[0].node_id
        assert agg_first == agg_second


class TestWarmStartCompatibility:
    def test_incremental_solver_can_reuse_flows_across_rebuilds(self, small_state):
        """The point of stable node ids: warm flows keyed by node pairs stay
        valid when the graph manager rebuilds the network."""
        from repro.solvers import IncrementalCostScalingSolver

        small_state.submit_job(make_job(job_id=1, num_tasks=4))
        manager = GraphManager(QuincyPolicy())
        solver = IncrementalCostScalingSolver()
        first_network = manager.update(small_state, now=0.0)
        first = solver.solve(first_network)

        second_network = manager.update(small_state, now=10.0)
        second = solver.solve(second_network)
        assert second.statistics.warm_start
        assert second.total_cost <= first.total_cost + 100  # wait costs grew


class TestChangeBatchEmission:
    def test_first_update_emits_no_batch(self, small_state):
        small_state.submit_job(make_job(job_id=1, num_tasks=2))
        manager = GraphManager(QuincyPolicy())
        manager.update(small_state, now=0.0)
        assert manager.last_changes is None

    def test_update_emits_batch_linking_revisions(self, small_state):
        small_state.submit_job(make_job(job_id=1, num_tasks=2))
        manager = GraphManager(QuincyPolicy())
        # The manager mutates one persistent network in place, so the
        # previous round's revision must be snapshotted before updating.
        first_revision = manager.update(small_state, now=0.0).revision
        second = manager.update(small_state, now=10.0)
        batch = manager.last_changes
        assert batch is not None
        assert batch.base_revision == first_revision
        assert batch.target_revision == second.revision

    @pytest.mark.parametrize("incremental", [True, False])
    def test_emitted_batch_replays_previous_network_into_new(
        self, small_state, incremental
    ):
        job = make_job(job_id=1, num_tasks=3)
        small_state.submit_job(job)
        manager = GraphManager(QuincyPolicy(), incremental=incremental)
        # Snapshot: the persistent network is mutated in place by the
        # incremental path, so a plain reference would alias the new round.
        first = manager.update(small_state, now=0.0).copy()

        # Apply real churn: place and finish a task, submit another job.
        small_state.place_task(job.tasks[0].task_id, 0, now=0.0)
        small_state.complete_task(job.tasks[0].task_id, now=1.0)
        small_state.submit_job(make_job(job_id=2, num_tasks=2))
        second = manager.update(small_state, now=10.0)
        expected_mode = "incremental" if incremental else "full"
        assert manager.last_update_stats.mode == expected_mode

        replayed = first.copy()
        manager.last_changes.apply_to(replayed)
        assert {n.node_id for n in replayed.nodes()} == {
            n.node_id for n in second.nodes()
        }
        assert {a.key(): (a.capacity, a.cost) for a in replayed.arcs()} == {
            a.key(): (a.capacity, a.cost) for a in second.arcs()
        }
        assert {n.node_id: n.supply for n in replayed.nodes()} == {
            n.node_id: n.supply for n in second.nodes()
        }

    def test_change_tracking_can_be_disabled(self, small_state):
        small_state.submit_job(make_job(job_id=1, num_tasks=2))
        manager = GraphManager(QuincyPolicy(), track_changes=False)
        manager.update(small_state, now=0.0)
        manager.update(small_state, now=10.0)
        assert manager.last_changes is None


class TestIncrementalUpdatePath:
    """Contract tests for the dirty-set-driven incremental update."""

    def _churned(self, small_state):
        job = make_job(job_id=1, num_tasks=4)
        small_state.submit_job(job)
        return job

    def test_first_round_is_full_then_incremental(self, small_state):
        self._churned(small_state)
        manager = GraphManager(QuincyPolicy())
        manager.update(small_state, now=0.0)
        assert manager.last_update_stats.mode == "full"
        manager.update(small_state, now=1.0)
        assert manager.last_update_stats.mode == "incremental"

    def test_incremental_can_be_disabled(self, small_state):
        self._churned(small_state)
        manager = GraphManager(QuincyPolicy(), incremental=False)
        manager.update(small_state, now=0.0)
        manager.update(small_state, now=1.0)
        assert manager.full_updates == 2 and manager.incremental_updates == 0

    def test_unsupported_policy_uses_full_path(self, small_state):
        self._churned(small_state)
        manager = GraphManager(LoadSpreadingPolicy())
        manager.update(small_state, now=0.0)
        manager.update(small_state, now=1.0)
        assert manager.last_update_stats.mode == "full"

    def test_second_consumer_draining_forces_full_rebuild(self, small_state):
        self._churned(small_state)
        manager = GraphManager(QuincyPolicy())
        manager.update(small_state, now=0.0)
        # Another consumer drains the tracker: the epoch chain breaks and
        # the manager must not trust its stale dirty view.
        small_state.dirty.drain()
        manager.update(small_state, now=1.0)
        assert manager.last_update_stats.mode == "full"
        # The chain re-forms afterwards.
        manager.update(small_state, now=2.0)
        assert manager.last_update_stats.mode == "incremental"

    def test_emptied_workload_falls_back_and_prunes_everything(self, small_state):
        job = self._churned(small_state)
        manager = GraphManager(QuincyPolicy(), verify_changes=True)
        manager.update(small_state, now=0.0)
        for index, task in enumerate(job.tasks):
            small_state.place_task(task.task_id, index % 4, now=0.0)
            small_state.complete_task(task.task_id, now=1.0)
        network = manager.update(small_state, now=2.0)
        assert manager.last_update_stats.mode == "full"
        assert network.num_nodes == 0
        # And the workload coming back re-enters the incremental path after
        # one more full round.
        small_state.submit_job(make_job(job_id=2, num_tasks=2))
        manager.update(small_state, now=3.0)
        assert manager.last_update_stats.mode == "full"
        manager.update(small_state, now=4.0)
        assert manager.last_update_stats.mode == "incremental"

    def test_job_removal_of_pending_tasks_falls_back(self, small_state):
        job = self._churned(small_state)
        small_state.submit_job(make_job(job_id=2, num_tasks=2))
        manager = GraphManager(QuincyPolicy(), verify_changes=True)
        manager.update(small_state, now=0.0)
        # Remove a job whose (pending) tasks vanish from state.tasks: the
        # dirty tasks become unresolvable and the round must rebuild.
        small_state.remove_job(1)
        manager.update(small_state, now=1.0)
        assert manager.last_update_stats.mode == "full"

    def test_update_stats_report_touched_counts(self, small_state):
        job = self._churned(small_state)
        manager = GraphManager(QuincyPolicy())
        manager.update(small_state, now=0.0)
        small_state.place_task(job.tasks[0].task_id, 0, now=0.0)
        manager.update(small_state, now=0.0)
        stats = manager.last_update_stats
        assert stats.mode == "incremental"
        assert stats.dirty_tasks == 1
        assert stats.arcs_patched >= 1
        assert stats.seconds >= 0.0

    def test_verify_mode_catches_an_inconsistent_network(self, small_state):
        from repro.core import GraphConsistencyError

        self._churned(small_state)
        manager = GraphManager(QuincyPolicy(), verify_changes=True)
        network = manager.update(small_state, now=0.0)
        # Corrupt the persistent network behind the manager's back; the
        # cross-check must refuse the next incremental round.
        arc = next(iter(network.arcs()))
        arc.cost += 1000
        with pytest.raises(GraphConsistencyError):
            manager.update(small_state, now=1.0)

    def test_exception_mid_incremental_poisons_the_round_state(self, small_state):
        """A hook blowing up mid-mutation must not leave a half-patched
        network behind: the next round rebuilds from scratch."""
        self._churned(small_state)
        policy = QuincyPolicy()
        manager = GraphManager(policy)
        manager.update(small_state, now=0.0)

        original = policy.arcs_for_task
        calls = {"n": 0}

        def exploding(state, builder, task, now):
            calls["n"] += 1
            if calls["n"] >= 2:
                raise RuntimeError("boom")
            original(state, builder, task, now)

        policy.arcs_for_task = exploding
        small_state.place_task(
            small_state.pending_tasks()[0].task_id, 0, now=0.0
        )
        for task in small_state.pending_tasks():
            small_state.dirty.mark_task(task.task_id)
        with pytest.raises(RuntimeError):
            manager.update(small_state, now=1.0)

        # The wreckage is discarded: the next update is a from-scratch full
        # build with no change batch derived from the half-mutated state.
        policy.arcs_for_task = original
        network = manager.update(small_state, now=2.0)
        assert manager.last_update_stats.mode == "full"
        assert manager.last_changes is None
        assert network.validate_structure() == []
