"""Unit tests for the graph manager (node identity and network construction)."""

import pytest

from repro.core.graph_manager import GraphManager
from repro.core.policies import LoadSpreadingPolicy, QuincyPolicy
from repro.flow.graph import NodeType
from tests.conftest import make_cluster_state, make_job


class TestNetworkConstruction:
    def test_basic_structure(self, small_state):
        small_state.submit_job(make_job(job_id=1, num_tasks=3))
        manager = GraphManager(LoadSpreadingPolicy())
        network = manager.update(small_state, now=0.0)

        tasks = network.nodes_of_type(NodeType.TASK)
        machines = network.nodes_of_type(NodeType.MACHINE)
        sinks = network.nodes_of_type(NodeType.SINK)
        assert len(tasks) == 3
        assert len(machines) == small_state.topology.num_machines
        assert len(sinks) == 1
        assert sinks[0].supply == -3
        assert all(t.supply == 1 for t in tasks)
        assert network.validate_structure() == []

    def test_every_task_can_reach_the_sink(self, small_state):
        small_state.submit_job(make_job(job_id=1, num_tasks=4))
        manager = GraphManager(QuincyPolicy())
        network = manager.update(small_state, now=0.0)
        for task_id, node_id in manager.task_nodes.items():
            assert network.outgoing(node_id), f"task {task_id} has no outgoing arcs"

    def test_empty_workload_produces_trivial_network(self, small_state):
        manager = GraphManager(LoadSpreadingPolicy())
        network = manager.update(small_state, now=0.0)
        assert manager.task_nodes == {}
        assert network.nodes_of_type(NodeType.TASK) == []

    def test_isolated_nodes_are_pruned(self, small_state):
        # With the load-spreading policy racks are never used, so no rack
        # aggregator nodes should survive pruning.
        small_state.submit_job(make_job(job_id=1, num_tasks=2))
        manager = GraphManager(LoadSpreadingPolicy())
        network = manager.update(small_state, now=0.0)
        assert network.nodes_of_type(NodeType.RACK_AGGREGATOR) == []


class TestNodeIdentityStability:
    def test_node_ids_stable_across_runs(self, small_state):
        job = make_job(job_id=1, num_tasks=3)
        small_state.submit_job(job)
        manager = GraphManager(QuincyPolicy())
        manager.update(small_state, now=0.0)
        first_tasks = manager.task_nodes
        first_machines = manager.machine_nodes
        first_sink = manager.sink_node

        manager.update(small_state, now=1.0)
        assert manager.task_nodes == first_tasks
        assert manager.machine_nodes == first_machines
        assert manager.sink_node == first_sink

    def test_completed_task_node_retired_and_not_reused(self, small_state):
        job = make_job(job_id=1, num_tasks=2)
        small_state.submit_job(job)
        manager = GraphManager(QuincyPolicy())
        manager.update(small_state, now=0.0)
        retired_node = manager.task_nodes[job.tasks[0].task_id]

        small_state.place_task(job.tasks[0].task_id, 0, 0.0)
        small_state.complete_task(job.tasks[0].task_id, 1.0)
        manager.update(small_state, now=2.0)
        assert job.tasks[0].task_id not in manager.task_nodes

        # A newly submitted task must not recycle the retired identifier.
        new_job = make_job(job_id=2, num_tasks=1)
        small_state.submit_job(new_job)
        manager.update(small_state, now=3.0)
        assert manager.task_nodes[new_job.tasks[0].task_id] != retired_node

    def test_failed_machine_dropped_from_network(self, small_state):
        small_state.submit_job(make_job(job_id=1, num_tasks=2))
        manager = GraphManager(LoadSpreadingPolicy())
        manager.update(small_state, now=0.0)
        assert 0 in manager.machine_nodes
        small_state.topology.machine(0).fail()
        manager.update(small_state, now=1.0)
        assert 0 not in manager.machine_nodes

    def test_aggregator_identity_stable(self, small_state):
        small_state.submit_job(make_job(job_id=1, num_tasks=2))
        manager = GraphManager(LoadSpreadingPolicy())
        first = manager.update(small_state, now=0.0)
        agg_first = first.nodes_of_type(NodeType.CLUSTER_AGGREGATOR)[0].node_id
        second = manager.update(small_state, now=1.0)
        agg_second = second.nodes_of_type(NodeType.CLUSTER_AGGREGATOR)[0].node_id
        assert agg_first == agg_second


class TestWarmStartCompatibility:
    def test_incremental_solver_can_reuse_flows_across_rebuilds(self, small_state):
        """The point of stable node ids: warm flows keyed by node pairs stay
        valid when the graph manager rebuilds the network."""
        from repro.solvers import IncrementalCostScalingSolver

        small_state.submit_job(make_job(job_id=1, num_tasks=4))
        manager = GraphManager(QuincyPolicy())
        solver = IncrementalCostScalingSolver()
        first_network = manager.update(small_state, now=0.0)
        first = solver.solve(first_network)

        second_network = manager.update(small_state, now=10.0)
        second = solver.solve(second_network)
        assert second.statistics.warm_start
        assert second.total_cost <= first.total_cost + 100  # wait costs grew


class TestChangeBatchEmission:
    def test_first_update_emits_no_batch(self, small_state):
        small_state.submit_job(make_job(job_id=1, num_tasks=2))
        manager = GraphManager(QuincyPolicy())
        manager.update(small_state, now=0.0)
        assert manager.last_changes is None

    def test_update_emits_batch_linking_revisions(self, small_state):
        small_state.submit_job(make_job(job_id=1, num_tasks=2))
        manager = GraphManager(QuincyPolicy())
        first = manager.update(small_state, now=0.0)
        second = manager.update(small_state, now=10.0)
        batch = manager.last_changes
        assert batch is not None
        assert batch.base_revision == first.revision
        assert batch.target_revision == second.revision

    def test_emitted_batch_replays_previous_network_into_new(self, small_state):
        job = make_job(job_id=1, num_tasks=3)
        small_state.submit_job(job)
        manager = GraphManager(QuincyPolicy())
        first = manager.update(small_state, now=0.0)

        # Apply real churn: place and finish a task, submit another job.
        small_state.place_task(job.tasks[0].task_id, 0, now=0.0)
        small_state.complete_task(job.tasks[0].task_id, now=1.0)
        small_state.submit_job(make_job(job_id=2, num_tasks=2))
        second = manager.update(small_state, now=10.0)

        replayed = first.copy()
        manager.last_changes.apply_to(replayed)
        assert {n.node_id for n in replayed.nodes()} == {
            n.node_id for n in second.nodes()
        }
        assert {a.key(): (a.capacity, a.cost) for a in replayed.arcs()} == {
            a.key(): (a.capacity, a.cost) for a in second.arcs()
        }
        assert {n.node_id: n.supply for n in replayed.nodes()} == {
            n.node_id: n.supply for n in second.nodes()
        }

    def test_change_tracking_can_be_disabled(self, small_state):
        small_state.submit_job(make_job(job_id=1, num_tasks=2))
        manager = GraphManager(QuincyPolicy(), track_changes=False)
        manager.update(small_state, now=0.0)
        manager.update(small_state, now=10.0)
        assert manager.last_changes is None
