"""Tests for the task-profiling knowledge base."""

from __future__ import annotations

import pytest

from repro.cluster.knowledge_base import (
    KnowledgeBase,
    RuntimeStatistics,
    UsageStatistics,
)
from repro.cluster.resources import ResourceVector
from repro.cluster.task import Task


def make_task(task_id: int = 1, job_id: int = 1, cpu: float = 1.0, ram: float = 1.0) -> Task:
    return Task(task_id=task_id, job_id=job_id, cpu_request=cpu, ram_request_gb=ram)


class TestRuntimeStatistics:
    def test_record_updates_aggregates(self):
        stats = RuntimeStatistics()
        for runtime in (10.0, 20.0, 30.0):
            stats.record(runtime)
        assert stats.count == 3
        assert stats.mean == pytest.approx(20.0)
        assert stats.min_runtime == 10.0
        assert stats.max_runtime == 30.0

    def test_record_rejects_negative_runtime(self):
        with pytest.raises(ValueError):
            RuntimeStatistics().record(-1.0)

    def test_percentile_over_samples(self):
        stats = RuntimeStatistics()
        for runtime in range(1, 101):
            stats.record(float(runtime))
        assert stats.percentile(0.0) == 1.0
        assert stats.percentile(1.0) == 100.0
        assert 45.0 <= stats.percentile(0.5) <= 55.0

    def test_percentile_empty_and_bounds(self):
        stats = RuntimeStatistics()
        assert stats.percentile(0.5) == 0.0
        with pytest.raises(ValueError):
            stats.percentile(1.5)

    def test_mean_of_empty_statistics_is_zero(self):
        assert RuntimeStatistics().mean == 0.0

    def test_sample_reservoir_is_bounded(self):
        stats = RuntimeStatistics()
        for runtime in range(1000):
            stats.record(float(runtime))
        assert len(stats.samples) == 256
        assert stats.count == 1000


class TestUsageStatistics:
    def test_first_observation_becomes_average(self):
        stats = UsageStatistics()
        stats.record(ResourceVector(cpu_cores=2.0, ram_gb=4.0))
        assert stats.average.cpu_cores == pytest.approx(2.0)

    def test_moving_average_converges_towards_new_values(self):
        stats = UsageStatistics(alpha=0.5)
        stats.record(ResourceVector(cpu_cores=0.0))
        for _ in range(20):
            stats.record(ResourceVector(cpu_cores=10.0))
        assert stats.average.cpu_cores == pytest.approx(10.0, abs=0.1)


class TestKnowledgeBase:
    def test_default_runtime_before_any_observation(self):
        kb = KnowledgeBase(default_runtime=42.0)
        assert kb.estimate_runtime(make_task()) == 42.0

    def test_estimate_uses_class_statistics(self):
        kb = KnowledgeBase()
        for index in range(5):
            kb.record_completion(make_task(task_id=index), runtime=100.0)
        assert kb.estimate_runtime(make_task(task_id=99)) == pytest.approx(100.0)

    def test_estimate_falls_back_to_job_statistics(self):
        kb = KnowledgeBase()
        # Observation for job 7 but in a different resource class.
        kb.record_completion(make_task(task_id=1, job_id=7, cpu=8.0, ram=32.0), runtime=200.0)
        estimate = kb.estimate_runtime(make_task(task_id=2, job_id=7, cpu=0.5, ram=0.5))
        assert estimate == pytest.approx(200.0)

    def test_percentile_estimate(self):
        kb = KnowledgeBase()
        for runtime in (10.0, 20.0, 30.0, 40.0, 50.0):
            kb.record_completion(make_task(), runtime=runtime)
        assert kb.estimate_runtime(make_task(), percentile=1.0) == 50.0

    def test_record_completion_derives_runtime_from_timestamps(self):
        kb = KnowledgeBase()
        task = make_task()
        task.start_time = 5.0
        task.finish_time = 25.0
        kb.record_completion(task)
        assert kb.estimate_runtime(make_task()) == pytest.approx(20.0)

    def test_record_completion_without_timestamps_raises(self):
        with pytest.raises(ValueError):
            KnowledgeBase().record_completion(make_task())

    def test_estimate_usage_falls_back_to_request(self):
        kb = KnowledgeBase()
        task = make_task(cpu=3.0, ram=6.0)
        assert kb.estimate_usage(task) == ResourceVector.for_task(task)

    def test_estimate_usage_uses_observations(self):
        kb = KnowledgeBase()
        task = make_task(cpu=4.0, ram=8.0)
        for _ in range(10):
            kb.record_usage(task, ResourceVector(cpu_cores=1.0, ram_gb=2.0))
        estimate = kb.estimate_usage(task)
        assert estimate.cpu_cores < 4.0
        assert estimate.ram_gb < 8.0

    def test_observe_completed_tasks_filters_unfinished(self):
        kb = KnowledgeBase()
        finished = make_task(task_id=1)
        finished.start_time = 0.0
        finished.finish_time = 10.0
        finished.state = finished.state.COMPLETED
        running = make_task(task_id=2)
        recorded = kb.observe_completed_tasks([finished, running])
        assert recorded == 1
        assert kb.num_observations == 1

    def test_counts(self):
        kb = KnowledgeBase()
        kb.record_completion(make_task(cpu=1.0), runtime=5.0)
        kb.record_completion(make_task(cpu=8.0, ram=16.0), runtime=5.0)
        assert kb.num_classes == 2
        assert kb.num_observations == 2

    def test_invalid_default_runtime_rejected(self):
        with pytest.raises(ValueError):
            KnowledgeBase(default_runtime=0.0)
