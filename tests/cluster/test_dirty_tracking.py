"""Unit tests for the dirty-set tracker feeding incremental graph updates."""

from repro.cluster import DirtyTracker
from repro.cluster.machine import Machine
from tests.conftest import make_cluster_state, make_job


class TestDirtyTracker:
    def test_drain_returns_and_clears_marks(self):
        tracker = DirtyTracker()
        tracker.mark_task(7)
        tracker.mark_job(1)
        tracker.mark_machine_load(3)
        snapshot = tracker.drain()
        assert snapshot.tasks == {7}
        assert snapshot.jobs == {1}
        assert snapshot.machines_load == {3}
        assert not snapshot.machines_availability
        assert not tracker.drain()  # empty after the first drain

    def test_epoch_chain_detects_missed_drains(self):
        tracker = DirtyTracker()
        first = tracker.drain()
        second = tracker.drain()
        assert second.epoch == first.epoch + 1

    def test_availability_marks_imply_load(self):
        tracker = DirtyTracker()
        tracker.mark_machine_availability(2)
        snapshot = tracker.drain()
        assert snapshot.machines_availability == {2}
        assert 2 in snapshot.machines_load

    def test_mark_all_sets_full(self):
        tracker = DirtyTracker()
        tracker.mark_all()
        assert tracker.drain().full


class TestClusterStateMarksDirty:
    def test_submission_marks_tasks_and_job(self):
        state = make_cluster_state()
        state.dirty.drain()
        job = make_job(job_id=1, num_tasks=2)
        state.submit_job(job)
        snapshot = state.dirty.drain()
        assert snapshot.jobs == {1}
        assert snapshot.tasks == {t.task_id for t in job.tasks}

    def test_placement_and_completion_mark_task_and_machine_load(self):
        state = make_cluster_state()
        job = make_job(job_id=1, num_tasks=1)
        state.submit_job(job)
        state.dirty.drain()
        task_id = job.tasks[0].task_id
        state.place_task(task_id, 0, now=0.0)
        snapshot = state.dirty.drain()
        assert task_id in snapshot.tasks
        assert 0 in snapshot.machines_load
        assert not snapshot.machines_availability

        state.complete_task(task_id, now=1.0)
        snapshot = state.dirty.drain()
        assert task_id in snapshot.tasks
        assert 0 in snapshot.machines_load

    def test_machine_failure_marks_availability_and_evicted_tasks(self):
        state = make_cluster_state()
        job = make_job(job_id=1, num_tasks=1)
        state.submit_job(job)
        state.place_task(job.tasks[0].task_id, 2, now=0.0)
        state.dirty.drain()
        evicted = state.fail_machine(2, now=1.0)
        snapshot = state.dirty.drain()
        assert 2 in snapshot.machines_availability
        assert set(evicted) <= snapshot.tasks

        state.recover_machine(2, now=2.0)
        assert 2 in state.dirty.drain().machines_availability

    def test_added_machine_marks_availability_and_accepts_tasks(self):
        state = make_cluster_state(num_machines=2)
        state.add_machine(
            Machine(machine_id=99, rack_id=0, num_slots=2, cpu_cores=4, ram_gb=8)
        )
        assert 99 in state.dirty.drain().machines_availability
        job = make_job(job_id=1, num_tasks=1)
        state.submit_job(job)
        state.place_task(job.tasks[0].task_id, 99, now=0.0)
        assert state.task_count_on_machine(99) == 1

    def test_monitor_refresh_marks_machine_load(self):
        state = make_cluster_state()
        state.dirty.drain()
        state.monitor.record_network_use(1, 500, now=3.0)
        assert 1 in state.dirty.drain().machines_load
