"""Snapshot/restore round-trip coverage for every ``ClusterState`` index.

ISSUE 10's durability layer serializes the full cluster state; these tests
pin the contract recovery depends on: a restored state is ``==``-equivalent
to the original (topology incl. health + membership version, job/task
ledger incl. terminated history, live/terminated split, pending index,
per-machine task sets, free-slot index), the dirty-tracker epoch state
survives the trip, and -- the strongest check -- an original and a
restored state driven through the *same* further mutations emit identical
next-round :class:`ChangeBatch`es from two independent graph managers.
"""

from __future__ import annotations

import pytest

from repro.cluster.task import TaskState
from repro.core.graph_manager import GraphManager
from repro.core.policies import QuincyPolicy
from repro.service.durability import (
    restore_cluster_state,
    snapshot_cluster_state,
)
from tests.conftest import make_cluster_state, make_job


def make_busy_state():
    """A state exercising every index: pending, running, completed,
    preempted, a failed machine, and a later-added machine."""
    state = make_cluster_state(num_machines=8, slots_per_machine=2)
    state.submit_job(make_job(job_id=1, num_tasks=4))
    state.submit_job(
        make_job(job_id=2, num_tasks=3, submit_time=1.0, duration=None)
    )
    # Run some tasks, complete one, preempt one, fail a machine with one.
    state.place_task(1000, 0, now=2.0)
    state.place_task(1001, 1, now=2.0)
    state.place_task(2000, 2, now=2.0)
    state.place_task(2001, 3, now=2.5)
    state.complete_task(1000, now=5.0)
    state.preempt_task(1001, now=6.0)
    state.fail_machine(2, now=7.0)  # evicts 2000
    from repro.cluster.machine import Machine

    state.add_machine(
        Machine(machine_id=100, rack_id=25, num_slots=2, cpu_cores=12,
                ram_gb=64, network_bandwidth_mbps=10_000)
    )
    return state


def roundtrip(state):
    return restore_cluster_state(snapshot_cluster_state(state))


class TestRoundTripEquivalence:
    def test_empty_state(self):
        state = make_cluster_state()
        assert roundtrip(state) == state

    def test_busy_state_is_eq_equivalent(self):
        state = make_busy_state()
        restored = roundtrip(state)
        assert restored == state

    def test_topology_round_trips(self):
        state = make_busy_state()
        restored = roundtrip(state)
        assert restored.topology.version == state.topology.version
        assert restored.topology.machines == state.topology.machines
        assert restored.topology.racks == state.topology.racks
        assert not restored.topology.machine(2).is_available

    def test_task_ledger_round_trips_including_history(self):
        state = make_busy_state()
        restored = roundtrip(state)
        assert restored.tasks == state.tasks
        assert restored.jobs == state.jobs
        # The completed task is history, not live.
        assert restored.tasks[1000].state is TaskState.COMPLETED
        assert restored.terminated_task_count() == state.terminated_task_count()

    def test_live_and_pending_indexes(self):
        state = make_busy_state()
        restored = roundtrip(state)
        assert set(restored._live_tasks) == set(state._live_tasks)
        assert set(restored._pending_tasks) == set(state._pending_tasks)
        assert restored.num_pending_tasks == state.num_pending_tasks
        assert (
            sorted(t.task_id for t in restored.pending_tasks())
            == sorted(t.task_id for t in state.pending_tasks())
        )

    def test_machine_and_free_slot_indexes(self):
        state = make_busy_state()
        restored = roundtrip(state)
        assert restored._machine_tasks == state._machine_tasks
        assert set(restored._free_slot_index) == set(state._free_slot_index)
        for machine_id in state.topology.machines:
            assert restored.free_slots(machine_id) == state.free_slots(machine_id)
        assert (
            [m.machine_id for m in restored.machines_with_free_slots()]
            == [m.machine_id for m in state.machines_with_free_slots()]
        )
        assert restored.slot_utilization() == state.slot_utilization()

    def test_input_locality_keys_stay_ints(self):
        state = make_cluster_state()
        state.submit_job(
            make_job(job_id=1, num_tasks=2, input_size_gb=5.0,
                     input_locality={0: 0.75, 3: 0.25})
        )
        restored = roundtrip(state)
        task = restored.tasks[1000]
        assert task.input_locality == {0: 0.75, 3: 0.25}
        assert all(isinstance(k, int) for k in task.input_locality)

    def test_dirty_tracker_epoch_state_round_trips(self):
        state = make_busy_state()
        # Drain once so the epoch advances, then dirty a little more.
        state.dirty.drain()
        state.preempt_task(2001, now=8.0)
        restored = roundtrip(state)
        assert restored.dirty.epoch == state.dirty.epoch
        assert restored.dirty._pending.full == state.dirty._pending.full
        assert restored.dirty._pending.tasks == state.dirty._pending.tasks
        assert restored.dirty._pending.jobs == state.dirty._pending.jobs
        assert (
            restored.dirty._pending.machines_availability
            == state.dirty._pending.machines_availability
        )

    def test_eq_ignores_monitor_and_dirty_drift(self):
        state = make_busy_state()
        restored = roundtrip(state)
        # Draining one side's tracker must not make the states unequal:
        # dirty bookkeeping is process-local, not schedulable state.
        restored.dirty.drain()
        assert restored == state

    def test_eq_detects_real_divergence(self):
        state = make_busy_state()
        restored = roundtrip(state)
        restored.preempt_task(2001, now=9.0)
        assert restored != state


class TestChangeBatchEquivalence:
    def test_identical_mutations_emit_identical_change_batches(self):
        """The recovery promise, end to end: a restored state driven
        through the same mutations as the original produces the same
        incremental graph patches."""
        original = make_busy_state()
        restored = roundtrip(original)

        managers = {}
        for name, state in (("original", original), ("restored", restored)):
            manager = GraphManager(QuincyPolicy())
            manager.update(state, now=10.0)  # cold build, no batch
            managers[name] = manager

        def mutate(state):
            state.submit_job(make_job(job_id=3, num_tasks=2, submit_time=11.0))
            state.place_task(3000, 4, now=11.5)
            state.preempt_task(2001, now=11.5)
            state.recover_machine(2, now=11.5)

        mutate(original)
        mutate(restored)
        managers["original"].update(original, now=12.0)
        managers["restored"].update(restored, now=12.0)
        batch_a = managers["original"].last_changes
        batch_b = managers["restored"].last_changes
        assert batch_a is not None and batch_b is not None
        assert len(batch_a) > 0
        assert batch_a.changes == batch_b.changes

    def test_fresh_managers_build_identical_networks(self):
        original = make_busy_state()
        restored = roundtrip(original)
        net_a = GraphManager(QuincyPolicy()).update(original, now=10.0)
        net_b = GraphManager(QuincyPolicy()).update(restored, now=10.0)
        assert (
            sorted((n.node_type.value, n.supply) for n in net_a.nodes())
            == sorted((n.node_type.value, n.supply) for n in net_b.nodes())
        )
        assert len(list(net_a.arcs())) == len(list(net_b.arcs()))
