"""Unit tests for machines, racks, jobs, and tasks."""

import pytest

from repro.cluster.machine import Machine, MachineState, Rack
from repro.cluster.task import Job, JobType, Task, TaskState


class TestMachine:
    def test_defaults_and_name(self):
        machine = Machine(machine_id=3, rack_id=0)
        assert machine.name == "machine-3"
        assert machine.is_available
        assert machine.state is MachineState.HEALTHY

    def test_requires_at_least_one_slot(self):
        with pytest.raises(ValueError):
            Machine(machine_id=0, rack_id=0, num_slots=0)

    def test_fail_and_recover(self):
        machine = Machine(machine_id=1, rack_id=0)
        machine.fail()
        assert not machine.is_available
        assert machine.state is MachineState.FAILED
        machine.recover()
        assert machine.is_available


class TestRack:
    def test_add_and_remove_machines(self):
        rack = Rack(rack_id=2)
        assert rack.name == "rack-2"
        rack.add_machine(1)
        rack.add_machine(1)  # idempotent
        rack.add_machine(2)
        assert rack.size == 2
        rack.remove_machine(1)
        rack.remove_machine(99)  # removing an absent machine is a no-op
        assert rack.machine_ids == [2]


class TestTaskLifecycle:
    def test_initial_state(self):
        task = Task(task_id=1, job_id=0, submit_time=5.0)
        assert task.is_pending
        assert not task.is_running
        assert not task.is_finished
        assert task.placement_latency() is None
        assert task.response_time() is None

    def test_latency_and_response_time(self):
        task = Task(task_id=1, job_id=0, submit_time=10.0)
        task.placement_time = 12.5
        task.finish_time = 30.0
        assert task.placement_latency() == pytest.approx(2.5)
        assert task.response_time() == pytest.approx(20.0)

    def test_preempted_task_is_pending_again(self):
        task = Task(task_id=1, job_id=0)
        task.state = TaskState.PREEMPTED
        assert task.is_pending

    def test_locality_helpers(self):
        task = Task(task_id=1, job_id=0, input_locality={0: 0.5, 3: 0.25})
        assert task.locality_fraction(0) == 0.5
        assert task.locality_fraction(9) == 0.0
        assert task.rack_locality_fraction([0, 3]) == pytest.approx(0.75)
        assert task.rack_locality_fraction([7]) == 0.0


class TestJob:
    def test_add_task_inherits_job_attributes(self):
        job = Job(job_id=4, priority=7)
        task = Task(task_id=1, job_id=99)
        job.add_task(task)
        assert task.job_id == 4
        assert task.priority == 7
        assert job.num_tasks == 1
        assert job.name == "job-4"

    def test_task_priority_not_overwritten(self):
        job = Job(job_id=4, priority=7)
        task = Task(task_id=1, job_id=4, priority=3)
        job.add_task(task)
        assert task.priority == 3

    def test_pending_and_running_views(self):
        job = Job(job_id=1)
        for index in range(3):
            job.add_task(Task(task_id=index, job_id=1))
        job.tasks[0].state = TaskState.RUNNING
        job.tasks[1].state = TaskState.COMPLETED
        assert [t.task_id for t in job.running_tasks()] == [0]
        assert [t.task_id for t in job.pending_tasks()] == [2]
        assert not job.is_complete()

    def test_job_response_time_is_max_of_tasks(self):
        job = Job(job_id=1, submit_time=0.0)
        for index, finish in enumerate([10.0, 25.0, 15.0]):
            task = Task(task_id=index, job_id=1, submit_time=0.0)
            task.finish_time = finish
            task.state = TaskState.COMPLETED
            job.add_task(task)
        assert job.response_time() == pytest.approx(25.0)

    def test_job_response_time_undefined_until_all_tasks_finish(self):
        job = Job(job_id=1)
        done = Task(task_id=0, job_id=1)
        done.finish_time = 5.0
        job.add_task(done)
        job.add_task(Task(task_id=1, job_id=1))
        assert job.response_time() is None

    def test_job_types(self):
        assert JobType.BATCH.value == "batch"
        assert JobType.SERVICE.value == "service"
