"""Tests for the multi-dimensional resource model."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.cluster.machine import Machine
from repro.cluster.resources import (
    ResourceVector,
    equivalence_class,
    task_fits_on_machine,
)
from repro.cluster.task import Task

from tests.conftest import make_cluster_state, make_job


def make_task(task_id: int = 1, cpu: float = 1.0, ram: float = 1.0, net: int = 0) -> Task:
    return Task(
        task_id=task_id,
        job_id=1,
        cpu_request=cpu,
        ram_request_gb=ram,
        network_request_mbps=net,
    )


class TestResourceVector:
    def test_addition_adds_every_dimension(self):
        total = ResourceVector(1, 2, 3, 4) + ResourceVector(5, 6, 7, 8)
        assert total == ResourceVector(6, 8, 10, 12)

    def test_subtraction_clamps_at_zero(self):
        result = ResourceVector(1, 1, 1, 1) - ResourceVector(2, 0.5, 3, 0)
        assert result == ResourceVector(0, 0.5, 0, 1)

    def test_negative_dimension_rejected(self):
        with pytest.raises(ValueError):
            ResourceVector(cpu_cores=-1)

    def test_scaled_multiplies_every_dimension(self):
        assert ResourceVector(1, 2, 3, 4).scaled(2) == ResourceVector(2, 4, 6, 8)

    def test_scaled_rejects_negative_factor(self):
        with pytest.raises(ValueError):
            ResourceVector(1, 1).scaled(-1)

    def test_fits_into_requires_every_dimension(self):
        capacity = ResourceVector(4, 16, 1000)
        assert ResourceVector(2, 8, 500).fits_into(capacity)
        assert not ResourceVector(2, 32, 500).fits_into(capacity)
        assert not ResourceVector(8, 8, 500).fits_into(capacity)

    def test_zero_request_fits_anywhere(self):
        assert ResourceVector.zero().fits_into(ResourceVector.zero())
        assert ResourceVector.zero().is_zero()

    def test_dominant_share_picks_largest_fraction(self):
        capacity = ResourceVector(10, 100, 1000)
        request = ResourceVector(5, 10, 100)
        assert request.dominant_share(capacity) == pytest.approx(0.5)

    def test_dominant_share_skips_zero_capacity_dimensions(self):
        capacity = ResourceVector(10, 0, 0)
        request = ResourceVector(2, 50, 999)
        assert request.dominant_share(capacity) == pytest.approx(0.2)

    def test_dominant_share_zero_capacity_everywhere(self):
        assert ResourceVector(1, 1).dominant_share(ResourceVector.zero()) == 0.0

    def test_for_task_and_machine_constructors(self):
        task = make_task(cpu=2.0, ram=4.0, net=100)
        machine = Machine(machine_id=0, rack_id=0, cpu_cores=12, ram_gb=64)
        assert ResourceVector.for_task(task) == ResourceVector(2.0, 4.0, 100.0)
        machine_vector = ResourceVector.for_machine(machine)
        assert machine_vector.cpu_cores == 12
        assert machine_vector.ram_gb == 64

    def test_sum_of_vectors(self):
        vectors = [ResourceVector(1, 1), ResourceVector(2, 2), ResourceVector(3, 3)]
        assert ResourceVector.sum(vectors) == ResourceVector(6, 6)

    def test_as_tuple_and_dict_are_consistent(self):
        vector = ResourceVector(1, 2, 3, 4)
        assert vector.as_tuple() == (1, 2, 3, 4)
        assert vector.as_dict() == {
            "cpu_cores": 1,
            "ram_gb": 2,
            "network_mbps": 3,
            "disk_gb": 4,
        }

    @given(
        cpu=st.floats(min_value=0, max_value=100),
        ram=st.floats(min_value=0, max_value=100),
    )
    def test_property_subtract_then_add_never_exceeds_original(self, cpu, ram):
        capacity = ResourceVector(cpu_cores=100, ram_gb=100)
        request = ResourceVector(cpu_cores=cpu, ram_gb=ram)
        spare = capacity - request
        assert spare.fits_into(capacity)

    @given(
        a=st.floats(min_value=0, max_value=50),
        b=st.floats(min_value=0, max_value=50),
    )
    def test_property_fits_is_monotone_in_capacity(self, a, b):
        request = ResourceVector(cpu_cores=a, ram_gb=b)
        small = ResourceVector(cpu_cores=50, ram_gb=50)
        large = ResourceVector(cpu_cores=100, ram_gb=100)
        if request.fits_into(small):
            assert request.fits_into(large)


class TestFeasibilityHelpers:
    def test_task_fits_on_machine_accounts_for_usage(self):
        machine = Machine(machine_id=0, rack_id=0, cpu_cores=4, ram_gb=8)
        task = make_task(cpu=2.0, ram=4.0)
        assert task_fits_on_machine(task, machine, ResourceVector.zero())
        assert task_fits_on_machine(task, machine, ResourceVector(cpu_cores=2, ram_gb=4))
        assert not task_fits_on_machine(task, machine, ResourceVector(cpu_cores=3, ram_gb=0))

    def test_equivalence_class_rounds_up(self):
        task = make_task(cpu=1.5, ram=3.2)
        assert equivalence_class(task, cpu_granularity=1.0, ram_granularity_gb=2.0) == (2, 2)

    def test_equivalence_class_groups_similar_requests(self):
        a = make_task(task_id=1, cpu=0.4, ram=0.9)
        b = make_task(task_id=2, cpu=0.9, ram=0.2)
        assert equivalence_class(a) == equivalence_class(b)

    def test_equivalence_class_rejects_bad_granularity(self):
        with pytest.raises(ValueError):
            equivalence_class(make_task(), cpu_granularity=0)


class TestClusterStateResourceQueries:
    def test_resources_in_use_sums_running_tasks(self):
        state = make_cluster_state(num_machines=2)
        job = make_job(job_id=1, num_tasks=2)
        for task in job.tasks:
            task.cpu_request = 2.0
            task.ram_request_gb = 4.0
        state.submit_job(job)
        for task in job.tasks:
            state.place_task(task.task_id, 0, now=0.0)
        in_use = state.resources_in_use(0)
        assert in_use.cpu_cores == pytest.approx(4.0)
        assert in_use.ram_gb == pytest.approx(8.0)
        assert state.resources_in_use(1).is_zero()

    def test_spare_resources_shrinks_with_placements(self):
        state = make_cluster_state(num_machines=1)
        machine = state.topology.machine(0)
        job = make_job(job_id=1, num_tasks=1)
        job.tasks[0].cpu_request = 3.0
        state.submit_job(job)
        before = state.spare_resources(0)
        state.place_task(job.tasks[0].task_id, 0, now=0.0)
        after = state.spare_resources(0)
        assert after.cpu_cores == pytest.approx(before.cpu_cores - 3.0)
        assert before.cpu_cores == pytest.approx(float(machine.cpu_cores))

    def test_spare_resources_zero_for_failed_machine(self):
        state = make_cluster_state(num_machines=1)
        state.topology.machine(0).fail()
        assert state.spare_resources(0).is_zero()

    def test_task_fits_ignores_own_reservation(self):
        state = make_cluster_state(num_machines=1)
        job = make_job(job_id=1, num_tasks=1)
        task = job.tasks[0]
        task.cpu_request = float(state.topology.machine(0).cpu_cores)
        state.submit_job(job)
        assert state.task_fits(task, 0)
        state.place_task(task.task_id, 0, now=0.0)
        # The machine is now fully committed, but the committed task itself
        # still "fits" where it runs.
        assert state.task_fits(task, 0)
