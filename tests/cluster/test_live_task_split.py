"""The live/terminated task split: scans bounded by the live set.

``ClusterState.tasks`` keeps every task ever submitted -- metrics and
post-hoc locality analysis need the history -- but per-round scans
(``pending_tasks`` / ``running_tasks`` / ``schedulable_tasks``) must not
slow down as completed-task history accumulates over a long-running
cluster's lifetime.  These tests pin that contract directly: completed
tasks leave the live index while remaining queryable, and an instrumented
task class proves the scans never touch terminated tasks, so per-round
scan counts are independent of history size.
"""

from __future__ import annotations

from repro.cluster.task import Job, Task
from tests.conftest import make_cluster_state, make_job


class CountingTask(Task):
    """Task whose lifecycle-property reads are counted (scan detector)."""

    @property
    def is_pending(self):  # noqa: D102 - counted passthrough
        self.touch_count = getattr(self, "touch_count", 0) + 1
        return Task.is_pending.fget(self)

    @property
    def is_running(self):  # noqa: D102 - counted passthrough
        self.touch_count = getattr(self, "touch_count", 0) + 1
        return Task.is_running.fget(self)


def make_counting_job(job_id: int, num_tasks: int, submit_time: float = 0.0) -> Job:
    job = Job(job_id=job_id, submit_time=submit_time)
    for index in range(num_tasks):
        job.add_task(
            CountingTask(
                task_id=job_id * 1000 + index,
                job_id=job_id,
                duration=10.0,
                submit_time=submit_time,
            )
        )
    return job


def reset_touches(state) -> None:
    for task in state.tasks.values():
        task.touch_count = 0


def total_touches(tasks) -> int:
    return sum(getattr(t, "touch_count", 0) for t in tasks)


def run_round_scans(state) -> None:
    """The scans a scheduling round performs against the cluster state."""
    state.pending_tasks()
    state.running_tasks()
    state.schedulable_tasks()


class TestLiveTerminatedSplit:
    def test_completed_tasks_leave_live_index_but_stay_queryable(self):
        state = make_cluster_state()
        state.submit_job(make_job(job_id=1, num_tasks=4))
        for index, task in enumerate(state.pending_tasks()):
            state.place_task(task.task_id, index % 4, now=0.0)
        assert state.num_live_tasks == 4
        running = state.running_tasks()
        state.complete_task(running[0].task_id, now=5.0)
        state.complete_task(running[1].task_id, now=6.0)

        assert state.num_live_tasks == 2
        assert state.terminated_task_count() == 2
        # History is intact: completed tasks remain in the full mapping
        # with their placement, for metrics and locality analysis.
        assert len(state.tasks) == 4
        completed = state.tasks[running[0].task_id]
        assert completed.finish_time == 5.0
        assert completed.machine_id is not None
        # And the scans only see the live ones.
        assert {t.task_id for t in state.schedulable_tasks()} == {
            t.task_id for t in running[2:]
        }

    def test_scans_never_touch_terminated_tasks(self):
        state = make_cluster_state()
        state.submit_job(make_counting_job(job_id=1, num_tasks=6))
        for index, task in enumerate(list(state.pending_tasks())[:4]):
            state.place_task(task.task_id, index % 4, now=0.0)
        finished = [t.task_id for t in state.running_tasks()[:3]]
        for task_id in finished:
            state.complete_task(task_id, now=5.0)

        reset_touches(state)
        run_round_scans(state)

        terminated = [state.tasks[task_id] for task_id in finished]
        live = [t for t in state.tasks.values() if t.task_id not in set(finished)]
        assert total_touches(terminated) == 0, (
            "a per-round scan touched terminated tasks; scans are no longer "
            "bounded by the live set"
        )
        assert total_touches(live) > 0

    def test_history_growth_does_not_change_scan_counts(self):
        """Identical live workloads scan identically regardless of history."""

        def build(history_jobs: int):
            state = make_cluster_state()
            # Accumulate completed-task history: submit, place, complete.
            for job_index in range(history_jobs):
                job = make_counting_job(job_id=100 + job_index, num_tasks=4)
                state.submit_job(job)
                for index, task in enumerate(job.tasks):
                    state.place_task(task.task_id, index % 4, now=0.0)
                    state.complete_task(task.task_id, now=1.0)
            # The live workload under test is identical in both states.
            state.submit_job(make_counting_job(job_id=1, num_tasks=5))
            for index, task in enumerate(list(state.pending_tasks())[:2]):
                state.place_task(task.task_id, index % 4, now=2.0)
            return state

        without_history = build(history_jobs=0)
        with_history = build(history_jobs=50)
        assert with_history.terminated_task_count() == 200

        reset_touches(without_history)
        reset_touches(with_history)
        run_round_scans(without_history)
        run_round_scans(with_history)

        baseline = total_touches(without_history.tasks.values())
        with_200_completed = total_touches(with_history.tasks.values())
        assert baseline > 0
        assert with_200_completed == baseline, (
            f"per-round scan count changed with history: {baseline} touches "
            f"without history vs {with_200_completed} with 200 completed tasks"
        )

    def test_remove_job_purges_both_indexes(self):
        state = make_cluster_state()
        job = make_job(job_id=7, num_tasks=3)
        state.submit_job(job)
        for index, task in enumerate(job.tasks):
            state.place_task(task.task_id, index % 4, now=0.0)
            state.complete_task(task.task_id, now=1.0)
        state.remove_job(7)
        assert len(state.tasks) == 0
        assert state.num_live_tasks == 0
        assert state.terminated_task_count() == 0

    def test_preemption_and_eviction_keep_tasks_live(self):
        state = make_cluster_state()
        state.submit_job(make_job(job_id=1, num_tasks=3))
        for index, task in enumerate(state.pending_tasks()):
            state.place_task(task.task_id, index % 2, now=0.0)
        running = state.running_tasks()
        state.preempt_task(running[0].task_id, now=1.0)
        state.fail_machine(running[1].machine_id, now=1.0)
        # Preempted and evicted tasks must come back in schedulable scans.
        assert state.num_live_tasks == 3
        assert {t.task_id for t in state.schedulable_tasks()} == {
            t.task_id for t in running
        }
        assert len(state.live_tasks()) == 3
