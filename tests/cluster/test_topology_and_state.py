"""Unit tests for cluster topology and mutable cluster state."""

import pytest

from repro.cluster.machine import Machine
from repro.cluster.state import ClusterState
from repro.cluster.task import TaskState
from repro.cluster.topology import build_topology
from tests.conftest import make_cluster_state, make_job


class TestTopology:
    def test_build_topology_shapes_racks(self):
        topology = build_topology(num_machines=10, machines_per_rack=4, slots_per_machine=3)
        assert topology.num_machines == 10
        assert topology.num_racks == 3
        assert topology.total_slots == 30
        assert topology.rack_of(5).rack_id == 1
        assert len(topology.machines_in_rack(0)) == 4
        assert len(topology.machines_in_rack(2)) == 2

    def test_build_topology_validation(self):
        with pytest.raises(ValueError):
            build_topology(num_machines=0)
        with pytest.raises(ValueError):
            build_topology(num_machines=4, machines_per_rack=0)

    def test_healthy_machines_excludes_failed(self):
        topology = build_topology(num_machines=4, machines_per_rack=2)
        topology.machine(1).fail()
        healthy = {m.machine_id for m in topology.healthy_machines()}
        assert healthy == {0, 2, 3}

    def test_add_and_remove_machine(self):
        topology = build_topology(num_machines=2, machines_per_rack=2)
        topology.add_machine(Machine(machine_id=10, rack_id=5))
        assert topology.num_racks == 2
        assert topology.rack_of(10).rack_id == 5
        topology.remove_machine(10)
        assert 10 not in topology.machines
        assert topology.rack(5).size == 0


class TestClusterStateWorkload:
    def test_submit_job_registers_tasks(self, small_state):
        job = make_job(job_id=1, num_tasks=3)
        small_state.submit_job(job)
        assert len(small_state.tasks) == 3
        assert len(small_state.pending_tasks()) == 3

    def test_duplicate_job_rejected(self, small_state):
        job = make_job(job_id=1, num_tasks=1)
        small_state.submit_job(job)
        with pytest.raises(ValueError):
            small_state.submit_job(make_job(job_id=1, num_tasks=1))

    def test_submit_task_into_existing_job(self, small_state):
        job = make_job(job_id=1, num_tasks=1)
        small_state.submit_job(job)
        from repro.cluster.task import Task

        small_state.submit_task(Task(task_id=999, job_id=1))
        assert 999 in small_state.tasks
        assert small_state.jobs[1].num_tasks == 2

    def test_submit_task_to_unknown_job_rejected(self, small_state):
        from repro.cluster.task import Task

        with pytest.raises(KeyError):
            small_state.submit_task(Task(task_id=1, job_id=77))

    def test_remove_job(self, small_state):
        job = make_job(job_id=1, num_tasks=2)
        small_state.submit_job(job)
        small_state.remove_job(1)
        assert small_state.tasks == {}


class TestPlacementLifecycle:
    def test_place_and_complete(self, small_state):
        job = make_job(job_id=1, num_tasks=1)
        small_state.submit_job(job)
        task = job.tasks[0]
        small_state.place_task(task.task_id, 0, now=2.0)
        assert task.is_running
        assert task.machine_id == 0
        assert task.placement_time == 2.0
        assert small_state.task_count_on_machine(0) == 1
        assert small_state.free_slots(0) == 1

        small_state.complete_task(task.task_id, now=9.0)
        assert task.state is TaskState.COMPLETED
        assert task.finish_time == 9.0
        assert task.machine_id == 0  # retained for post-hoc metrics
        assert small_state.free_slots(0) == 2

    def test_place_respects_slot_capacity(self, small_state):
        job = make_job(job_id=1, num_tasks=3)
        small_state.submit_job(job)
        small_state.place_task(job.tasks[0].task_id, 0, 0.0)
        small_state.place_task(job.tasks[1].task_id, 0, 0.0)
        with pytest.raises(ValueError):
            small_state.place_task(job.tasks[2].task_id, 0, 0.0)

    def test_place_on_failed_machine_rejected(self, small_state):
        job = make_job(job_id=1, num_tasks=1)
        small_state.submit_job(job)
        small_state.topology.machine(0).fail()
        with pytest.raises(ValueError):
            small_state.place_task(job.tasks[0].task_id, 0, 0.0)

    def test_double_place_rejected(self, small_state):
        job = make_job(job_id=1, num_tasks=1)
        small_state.submit_job(job)
        small_state.place_task(job.tasks[0].task_id, 0, 0.0)
        with pytest.raises(ValueError):
            small_state.place_task(job.tasks[0].task_id, 1, 0.0)

    def test_migrate_task(self, small_state):
        job = make_job(job_id=1, num_tasks=1)
        small_state.submit_job(job)
        task = job.tasks[0]
        small_state.place_task(task.task_id, 0, 0.0)
        small_state.migrate_task(task.task_id, 3, 5.0)
        assert task.machine_id == 3
        assert small_state.task_count_on_machine(0) == 0
        assert small_state.task_count_on_machine(3) == 1
        # Placement time records the first placement, not the migration.
        assert task.placement_time == 0.0

    def test_preempt_task(self, small_state):
        job = make_job(job_id=1, num_tasks=1)
        small_state.submit_job(job)
        task = job.tasks[0]
        small_state.place_task(task.task_id, 0, 0.0)
        small_state.preempt_task(task.task_id, 4.0)
        assert task.state is TaskState.PREEMPTED
        assert task.is_pending
        assert small_state.free_slots(0) == 2

    def test_machine_failure_evicts_tasks(self, small_state):
        job = make_job(job_id=1, num_tasks=2)
        small_state.submit_job(job)
        small_state.place_task(job.tasks[0].task_id, 0, 0.0)
        small_state.place_task(job.tasks[1].task_id, 0, 0.0)
        evicted = small_state.fail_machine(0, 3.0)
        assert set(evicted) == {job.tasks[0].task_id, job.tasks[1].task_id}
        assert all(small_state.tasks[t].is_pending for t in evicted)
        assert small_state.free_slots(0) == 0  # failed machines expose no slots


class TestStateQueries:
    def test_utilization_and_slots(self, loaded_state):
        # 4 tasks on a 16-slot cluster.
        assert loaded_state.slot_utilization() == pytest.approx(0.25)
        assert loaded_state.total_free_slots() == 12

    def test_pending_tasks_sorted_by_submit_time(self, small_state):
        early = make_job(job_id=1, num_tasks=1, submit_time=5.0)
        late = make_job(job_id=2, num_tasks=1, submit_time=1.0)
        small_state.submit_job(early)
        small_state.submit_job(late)
        pending = small_state.pending_tasks()
        assert pending[0].job_id == 2
        assert pending[1].job_id == 1

    def test_schedulable_includes_running(self, loaded_state):
        extra = make_job(job_id=2, num_tasks=2)
        loaded_state.submit_job(extra)
        schedulable = loaded_state.schedulable_tasks()
        assert len(schedulable) == 6

    def test_network_bandwidth_accounting(self, small_state):
        job = make_job(job_id=1, num_tasks=2, network_request_mbps=400)
        small_state.submit_job(job)
        small_state.place_task(job.tasks[0].task_id, 0, 0.0)
        small_state.place_task(job.tasks[1].task_id, 0, 0.0)
        assert small_state.network_bandwidth_in_use(0) == 800
        capacity = small_state.topology.machine(0).network_bandwidth_mbps
        assert small_state.spare_network_bandwidth(0) == capacity - 800
        small_state.monitor.record_network_use(0, 5_000)
        assert small_state.spare_network_bandwidth(0) == capacity - 800 - 5_000

    def test_placements_view(self, loaded_state):
        placements = loaded_state.placements()
        assert len(placements) == 4
        assert {p.machine_id for p in placements} == {0, 1, 2, 3}


class TestMonitor:
    def test_record_and_reset(self, small_state):
        monitor = small_state.monitor
        monitor.record_cpu_use(0, 3.5, now=1.0)
        monitor.record_ram_use(0, 10.0, now=1.0)
        monitor.record_network_use(0, 2_000, now=2.0)
        stats = monitor.statistics(0)
        assert stats.cpu_used == 3.5
        assert stats.ram_used_gb == 10.0
        assert stats.network_used_mbps == 2_000
        assert stats.last_update == 2.0
        monitor.reset()
        assert monitor.statistics(0).network_used_mbps == 0

    def test_statistics_created_on_demand(self, small_state):
        stats = small_state.monitor.statistics(999)
        assert stats.machine_id == 999
        assert len(list(small_state.monitor.all_statistics())) >= 9

    def test_negative_values_clamped(self, small_state):
        small_state.monitor.record_network_use(0, -50)
        assert small_state.monitor.statistics(0).network_used_mbps == 0
