"""Incrementally maintained free-slot index of :class:`ClusterState`.

The baselines' feasibility check used to scan every machine in the
topology per dequeued task -- O(machines) per task, the dominant cost of
queue-based replays at cluster scale.  The index turns that into a lookup
over only the machines that currently have capacity, and these tests pin
both sides of the bargain:

* exactness: after any fuzzed mutation sequence, the index equals the
  ground truth recomputed from scratch;
* the scan-count pin: with slot checking on, ``feasible_machines`` never
  touches ``topology.healthy_machines()`` (the full scan), and the
  candidate pool it does build is bounded by the number of machines with
  free capacity, not the fleet size.
"""

from __future__ import annotations

import random

from repro.baselines import SparrowScheduler
from repro.cluster.machine import Machine
from tests.conftest import make_cluster_state, make_job


def ground_truth_free(state) -> set:
    """Recompute 'machines with a free slot' from first principles."""
    return {
        machine.machine_id
        for machine in state.topology.machines.values()
        if machine.is_available and state.free_slots(machine.machine_id) > 0
    }


def indexed_free(state) -> set:
    return {m.machine_id for m in state.machines_with_free_slots()}


def test_index_matches_truth_on_fresh_cluster():
    state = make_cluster_state(num_machines=8)
    assert indexed_free(state) == ground_truth_free(state)
    assert state.total_free_slots() == 16  # 8 machines x 2 slots


def test_index_tracks_every_mutator():
    state = make_cluster_state(num_machines=4, slots_per_machine=1)
    state.submit_job(make_job(job_id=1, num_tasks=3))
    tasks = [t.task_id for t in state.jobs[1].tasks]

    state.place_task(tasks[0], 0, now=0.0)
    assert 0 not in indexed_free(state)  # single slot now taken

    state.migrate_task(tasks[0], 1, now=1.0)
    assert 0 in indexed_free(state) and 1 not in indexed_free(state)

    state.preempt_task(tasks[0], now=2.0)
    assert 1 in indexed_free(state)

    state.place_task(tasks[1], 2, now=3.0)
    state.complete_task(tasks[1], now=4.0)
    assert 2 in indexed_free(state)

    state.place_task(tasks[2], 3, now=5.0)
    state.fail_machine(3, now=6.0)
    assert 3 not in indexed_free(state)  # failed machines have no free slots
    state.recover_machine(3, now=7.0)
    assert 3 in indexed_free(state)  # eviction freed the slot

    state.add_machine(Machine(machine_id=99, rack_id=0, num_slots=2))
    assert 99 in indexed_free(state)

    assert indexed_free(state) == ground_truth_free(state)


def test_index_exact_under_fuzzed_churn():
    """Randomized mutation storms: the index never drifts from the truth."""
    for seed in range(8):
        rng = random.Random(seed)
        state = make_cluster_state(
            num_machines=6, machines_per_rack=3, slots_per_machine=2
        )
        state.submit_job(make_job(job_id=1, num_tasks=10))
        next_job = 2
        for step in range(60):
            now = float(step)
            roll = rng.random()
            if roll < 0.25:
                pending = state.pending_tasks()
                free = state.machines_with_free_slots()
                if pending and free:
                    state.place_task(
                        rng.choice(pending).task_id,
                        rng.choice(free).machine_id,
                        now,
                    )
            elif roll < 0.40:
                running = state.running_tasks()
                if running:
                    task = rng.choice(running)
                    if rng.random() < 0.5:
                        state.complete_task(task.task_id, now)
                    else:
                        state.preempt_task(task.task_id, now)
            elif roll < 0.55:
                running = state.running_tasks()
                free = state.machines_with_free_slots()
                if running and free:
                    state.migrate_task(
                        rng.choice(running).task_id,
                        rng.choice(free).machine_id,
                        now,
                    )
            elif roll < 0.70:
                machine = state.topology.machine(
                    rng.choice(list(state.topology.machines))
                )
                if machine.is_available:
                    state.fail_machine(machine.machine_id, now)
                else:
                    state.recover_machine(machine.machine_id, now)
            elif roll < 0.85:
                state.submit_job(make_job(job_id=next_job, num_tasks=2, submit_time=now))
                next_job += 1
            else:
                state.add_machine(
                    Machine(machine_id=1000 + step, rack_id=step % 3, num_slots=1)
                )
            assert indexed_free(state) == ground_truth_free(state), (
                f"seed {seed} step {step}: index drifted"
            )
            assert state.total_free_slots() == sum(
                state.free_slots(m) for m in ground_truth_free(state)
            )


def test_index_order_is_deterministic():
    state = make_cluster_state(num_machines=8)
    ids = [m.machine_id for m in state.machines_with_free_slots()]
    assert ids == sorted(ids)


class TestFeasibilityScanPin:
    def test_feasible_machines_never_full_scans(self, monkeypatch):
        """With slot checking on, the O(machines) scan must be gone."""
        state = make_cluster_state(num_machines=16, slots_per_machine=1)
        calls = {"healthy": 0}
        original = state.topology.healthy_machines

        def counting_healthy():
            calls["healthy"] += 1
            return original()

        monkeypatch.setattr(state.topology, "healthy_machines", counting_healthy)
        state.submit_job(make_job(job_id=1, num_tasks=8))
        scheduler = SparrowScheduler()
        scheduler.schedule_and_apply(state, now=0.0)
        assert calls["healthy"] == 0, (
            "feasible_machines fell back to the full topology scan"
        )

    def test_candidate_pool_bounded_by_free_machines(self):
        """On a nearly full cluster the pool shrinks with the free set."""
        state = make_cluster_state(num_machines=16, slots_per_machine=1)
        state.submit_job(make_job(job_id=1, num_tasks=15))
        for index, task in enumerate(state.jobs[1].tasks):
            state.place_task(task.task_id, index, now=0.0)
        state.submit_job(make_job(job_id=2, num_tasks=1, submit_time=1.0))
        task = state.jobs[2].tasks[0]
        scheduler = SparrowScheduler()
        candidates = scheduler.feasible_machines(task, state)
        assert len(candidates) == 1  # only machine 15 has a free slot
        assert candidates[0].machine_id == 15

    def test_scheduling_behavior_unchanged(self):
        """The index is an optimization: placements stay exactly as before."""
        state = make_cluster_state(num_machines=8, slots_per_machine=2)
        state.submit_job(make_job(job_id=1, num_tasks=6))
        scheduler = SparrowScheduler(seed=5)
        decision = scheduler.schedule_and_apply(state, now=0.0)
        assert len(decision.placements) == 6
        assert not decision.unscheduled
        for machine_id in decision.placements.values():
            assert state.topology.machine(machine_id).is_available
