"""Property-based tests on cross-cutting invariants.

These complement the per-module tests with hypothesis-driven checks of the
core data-structure and scheduler invariants: flow conservation, slot
capacity, placement-extraction consistency, and metric sanity.
"""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import FirmamentScheduler, GraphManager, QuincyPolicy, extract_placements
from repro.core.policies import LoadSpreadingPolicy, NetworkAwarePolicy
from repro.flow.validation import check_feasibility
from repro.solvers import CostScalingSolver, RelaxationSolver
from tests.conftest import make_cluster_state, make_job


@st.composite
def cluster_and_workload(draw):
    """A random small cluster plus a random batch workload."""
    num_machines = draw(st.integers(min_value=2, max_value=10))
    slots = draw(st.integers(min_value=1, max_value=3))
    num_jobs = draw(st.integers(min_value=1, max_value=4))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    rng = random.Random(seed)
    state = make_cluster_state(
        num_machines=num_machines,
        machines_per_rack=max(1, num_machines // 2),
        slots_per_machine=slots,
    )
    task_id = 0
    for job_index in range(num_jobs):
        num_tasks = rng.randint(1, 8)
        job = make_job(
            job_id=job_index + 1,
            num_tasks=num_tasks,
            task_id_offset=task_id,
            input_size_gb=rng.choice([0.0, 2.0, 8.0]),
            input_locality={
                rng.randrange(num_machines): rng.uniform(0.1, 0.9)
            } if rng.random() < 0.7 else {},
            network_request_mbps=rng.choice([0, 200, 1_000]),
        )
        task_id += num_tasks
        state.submit_job(job)
    return state


POLICIES = [QuincyPolicy, LoadSpreadingPolicy, NetworkAwarePolicy]


@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(state=cluster_and_workload(), policy_index=st.integers(min_value=0, max_value=2))
def test_property_policy_networks_are_well_formed_and_feasible(state, policy_index):
    """Every policy produces a balanced network every solver can route."""
    policy = POLICIES[policy_index]()
    manager = GraphManager(policy)
    network = manager.update(state, now=1.0)
    assert network.validate_structure() == []
    RelaxationSolver().solve(network)
    assert check_feasibility(network) == []


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(state=cluster_and_workload(), policy_index=st.integers(min_value=0, max_value=2))
def test_property_placements_respect_slot_capacity(state, policy_index):
    """Extracted placements never exceed any machine's slot count and every
    placed task appears exactly once."""
    policy = POLICIES[policy_index]()
    manager = GraphManager(policy)
    network = manager.update(state, now=0.0)
    CostScalingSolver().solve(network)
    placements = extract_placements(
        network, manager.task_nodes, manager.machine_nodes, manager.sink_node
    )
    per_machine = {}
    for task_id, machine_id in placements.items():
        per_machine[machine_id] = per_machine.get(machine_id, 0) + 1
    for machine_id, count in per_machine.items():
        machine = state.topology.machine(machine_id)
        already_running = state.task_count_on_machine(machine_id)
        assert count <= machine.num_slots
    assert len(placements) <= len(state.schedulable_tasks())


@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(state=cluster_and_workload())
def test_property_scheduler_apply_keeps_state_consistent(state):
    """After applying a decision, machine occupancy matches task records."""
    scheduler = FirmamentScheduler(QuincyPolicy(), solver=CostScalingSolver())
    scheduler.schedule_and_apply(state, now=0.0)
    for machine_id in state.topology.machines:
        on_machine = state.tasks_on_machine(machine_id)
        assert len(on_machine) <= state.topology.machine(machine_id).num_slots
        for task in on_machine:
            assert task.is_running
            assert task.machine_id == machine_id
    for task in state.tasks.values():
        if task.is_running:
            assert task in state.tasks_on_machine(task.machine_id)


@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(state=cluster_and_workload(), utilization_percent=st.integers(min_value=0, max_value=100))
def test_property_fill_cluster_never_exceeds_target(state, utilization_percent):
    from repro.simulation import fill_cluster_to_utilization

    target = utilization_percent / 100.0
    fill_cluster_to_utilization(state, utilization=target)
    assert state.slot_utilization() <= target + 1.0 / state.topology.total_slots + 1e-9
