"""Unit tests for the synthetic trace generator and experiment workloads."""

import pytest

from repro.cluster.task import JobType
from repro.simulation.trace import GoogleTraceGenerator, TraceConfig
from repro.simulation.workload import (
    fill_cluster_to_utilization,
    make_job_of_short_tasks,
    make_single_large_job,
)
from tests.conftest import make_cluster_state


class TestTraceGenerator:
    def test_deterministic_given_seed(self):
        config = TraceConfig(num_machines=20, duration=120.0, seed=5)
        first = GoogleTraceGenerator(config).generate()
        second = GoogleTraceGenerator(config).generate()
        assert len(first) == len(second)
        assert [j.num_tasks for j in first] == [j.num_tasks for j in second]
        assert [j.submit_time for j in first] == [j.submit_time for j in second]

    def test_jobs_arrive_within_duration(self):
        config = TraceConfig(num_machines=20, duration=100.0, seed=1)
        jobs = GoogleTraceGenerator(config).generate()
        assert jobs, "the trace should contain jobs"
        assert all(0 <= j.submit_time < 100.0 for j in jobs)

    def test_mix_of_batch_and_service_jobs(self):
        config = TraceConfig(num_machines=50, duration=600.0, seed=2,
                             service_job_fraction=0.3)
        jobs = GoogleTraceGenerator(config).generate()
        types = {j.job_type for j in jobs}
        assert JobType.BATCH in types
        assert JobType.SERVICE in types
        for job in jobs:
            for task in job.tasks:
                if job.job_type is JobType.SERVICE:
                    assert task.duration is None
                    assert task.priority == 10
                else:
                    assert task.duration is not None and task.duration > 0

    def test_batch_tasks_have_inputs_and_locality(self):
        config = TraceConfig(num_machines=30, duration=300.0, seed=3,
                             service_job_fraction=0.0)
        jobs = GoogleTraceGenerator(config).generate()
        tasks = [t for j in jobs for t in j.tasks]
        assert all(t.input_size_gb > 0 for t in tasks)
        assert all(t.input_locality for t in tasks)
        for task in tasks:
            assert all(0 < f <= 1.0 for f in task.input_locality.values())
            assert all(0 <= m < 30 for m in task.input_locality)

    def test_constant_service_load_is_invariant_under_speedup(self):
        """The service slot footprint must not scale with the trace speedup.

        Without constant mode, accelerating the trace multiplies service-job
        arrivals while their never-completing tasks hold slots forever, so
        service work eventually swallows the cluster (the fig18 failure mode
        recorded in EXPERIMENTS.md).  Constant mode pins the allotment.
        """
        def service_tasks(speedup: float):
            config = TraceConfig(
                num_machines=40,
                slots_per_machine=4,
                target_utilization=0.5,
                duration=200.0,
                speedup=speedup,
                service_job_fraction=0.2,
                seed=9,
                constant_service_load=True,
            )
            jobs = GoogleTraceGenerator(config).generate()
            service = [j for j in jobs if j.job_type is JobType.SERVICE]
            batch = [j for j in jobs if j.job_type is JobType.BATCH]
            return config, service, batch

        config, service_1x, batch_1x = service_tasks(1.0)
        _, service_16x, batch_16x = service_tasks(16.0)

        allotment = config.service_task_allotment()
        assert allotment == int(round(40 * 4 * 0.5 * 0.2))
        for service_jobs in (service_1x, service_16x):
            assert sum(j.num_tasks for j in service_jobs) == allotment
            assert all(j.submit_time == 0.0 for j in service_jobs)
        # Batch arrivals still accelerate with the speedup...
        assert len(batch_16x) > len(batch_1x) * 4
        # ... and arrivals never introduce more service work.
        assert all(j.submit_time > 0.0 or j.job_type is JobType.SERVICE
                   for j in service_1x + batch_1x)

    def test_constant_service_load_leaves_slots_for_batch_work(self):
        """Service tasks must occupy only their share even at high speedup."""
        config = TraceConfig(
            num_machines=20,
            slots_per_machine=4,
            target_utilization=0.6,
            duration=100.0,
            speedup=32.0,
            service_job_fraction=0.25,
            seed=11,
            constant_service_load=True,
        )
        jobs = GoogleTraceGenerator(config).generate()
        total_slots = 20 * 4
        service_tasks = sum(
            j.num_tasks for j in jobs if j.job_type is JobType.SERVICE
        )
        assert service_tasks == config.service_task_allotment()
        assert service_tasks <= total_slots * 0.6 * 0.25 + 1

    def test_speedup_shortens_durations_and_gaps(self):
        slow_config = TraceConfig(num_machines=30, duration=300.0, seed=4, speedup=1.0,
                                  service_job_fraction=0.0)
        fast_config = TraceConfig(num_machines=30, duration=300.0, seed=4, speedup=10.0,
                                  service_job_fraction=0.0)
        slow_jobs = GoogleTraceGenerator(slow_config).generate()
        fast_jobs = GoogleTraceGenerator(fast_config).generate()
        slow_mean = sum(t.duration for j in slow_jobs for t in j.tasks) / sum(
            j.num_tasks for j in slow_jobs
        )
        fast_mean = sum(t.duration for j in fast_jobs for t in j.tasks) / sum(
            j.num_tasks for j in fast_jobs
        )
        assert fast_mean < slow_mean / 3
        # More jobs arrive per unit time under speedup.
        assert len(fast_jobs) > len(slow_jobs)

    def test_job_size_tail_exists(self):
        config = TraceConfig(num_machines=100, duration=2_000.0, seed=6,
                             large_job_fraction=0.1, large_job_scale=20.0)
        jobs = GoogleTraceGenerator(config).generate()
        sizes = [j.num_tasks for j in jobs]
        assert max(sizes) > 5 * (sum(sizes) / len(sizes))

    def test_steady_state_jobs_hits_task_target(self):
        config = TraceConfig(num_machines=20, seed=7)
        jobs = GoogleTraceGenerator(config).steady_state_jobs(num_tasks_target=37)
        assert sum(j.num_tasks for j in jobs) == 37

    def test_explicit_job_size(self):
        generator = GoogleTraceGenerator(TraceConfig(seed=8))
        job = generator.generate_job(submit_time=3.0, num_tasks=12)
        assert job.num_tasks == 12
        assert job.submit_time == 3.0
        assert all(t.submit_time == 3.0 for t in job.tasks)

    def test_task_ids_unique_across_jobs(self):
        generator = GoogleTraceGenerator(TraceConfig(num_machines=20, duration=200.0, seed=9))
        jobs = generator.generate()
        ids = [t.task_id for j in jobs for t in j.tasks]
        assert len(ids) == len(set(ids))


class TestExperimentWorkloads:
    def test_single_large_job(self):
        job = make_single_large_job(num_tasks=500, submit_time=2.0)
        assert job.num_tasks == 500
        assert job.submit_time == 2.0
        assert len({t.task_id for t in job.tasks}) == 500

    def test_job_of_short_tasks(self):
        job = make_job_of_short_tasks(
            job_id=3, num_tasks=10, task_duration=0.5, submit_time=1.0, task_id_offset=100
        )
        assert job.num_tasks == 10
        assert all(t.duration == 0.5 for t in job.tasks)
        assert job.tasks[0].task_id == 100

    def test_fill_cluster_to_utilization(self):
        state = make_cluster_state(num_machines=10, slots_per_machine=4)
        jobs = fill_cluster_to_utilization(state, utilization=0.75)
        assert state.slot_utilization() == pytest.approx(0.75)
        assert jobs
        # Pre-filled tasks are spread, not piled onto one machine.
        counts = [state.task_count_on_machine(m) for m in state.topology.machines]
        assert max(counts) - min(counts) <= 1

    def test_fill_cluster_full(self):
        state = make_cluster_state(num_machines=4, slots_per_machine=2)
        fill_cluster_to_utilization(state, utilization=1.0)
        assert state.total_free_slots() == 0

    def test_fill_cluster_validation(self):
        state = make_cluster_state()
        with pytest.raises(ValueError):
            fill_cluster_to_utilization(state, utilization=1.5)
