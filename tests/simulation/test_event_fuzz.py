"""Event-order fuzz suite for the simulator's conservation invariant.

Real clusters give no ordering guarantee for simultaneous events, so the
simulator must keep its books straight under *every* same-timestamp
interleaving, not just the FIFO order insertion happens to produce.  Each
fuzz case runs the same workload across many ``tie_break_seed`` values (and
both drain modes) and asserts the apply-or-void conservation law after
every run::

    sum(record.num_placements) == applied to state + drift-dropped + voided

via :func:`verify_placement_conservation`, which also cross-checks the
per-record counters against the run totals.
"""

import pytest

from repro.baselines import SparrowScheduler
from repro.core import FirmamentScheduler, LoadSpreadingPolicy, QuincyPolicy
from repro.simulation.simulator import (
    ClusterSimulator,
    SimulationConfig,
    verify_placement_conservation,
)
from repro.simulation.trace import GoogleTraceGenerator, TraceConfig
from tests.conftest import make_cluster_state, make_job

FUZZ_SEEDS = range(8)


def run_and_verify(state, scheduler, config, jobs=(), setup=None):
    """Run a simulation and assert the conservation law; return the result."""
    simulator = ClusterSimulator(state, scheduler, config)
    for job in jobs:
        simulator.submit_job(job)
    if setup is not None:
        setup(simulator)
    try:
        result = simulator.run()
    finally:
        simulator.close()
    tallies = verify_placement_conservation(result)
    assert tallies["recorded"] == (
        tallies["applied"] + tallies["dropped"] + tallies["voided"]
    )
    return result


class TestShuffledInterleavings:
    """Same-timestamp event shuffles must preserve conservation."""

    @pytest.mark.parametrize("seed", FUZZ_SEEDS)
    @pytest.mark.parametrize("drain", [True, False])
    def test_simultaneous_submissions(self, seed, drain):
        state = make_cluster_state(num_machines=4, slots_per_machine=2)
        # Five jobs all submitted at t=0 plus a burst at t=2: every queue
        # pop at those timestamps is a fuzzed choice.
        jobs = [
            make_job(job_id=j + 1, num_tasks=3, duration=1.5, submit_time=0.0)
            for j in range(5)
        ] + [
            make_job(job_id=j + 6, num_tasks=2, duration=1.0, submit_time=2.0)
            for j in range(3)
        ]
        config = SimulationConfig(max_time=10.0, drain=drain, tie_break_seed=seed)
        result = run_and_verify(state, FirmamentScheduler(QuincyPolicy()), config, jobs)
        assert result.schedule_records

    @pytest.mark.parametrize("seed", FUZZ_SEEDS)
    def test_completion_races_submission(self, seed):
        # Task durations chosen so completions land exactly on later jobs'
        # submit times; the shuffle decides which the scheduler sees first.
        state = make_cluster_state(num_machines=2, slots_per_machine=1)
        jobs = [
            make_job(job_id=1, num_tasks=2, duration=2.0, submit_time=0.0),
            make_job(job_id=2, num_tasks=2, duration=2.0, submit_time=2.0),
            make_job(job_id=3, num_tasks=2, duration=2.0, submit_time=4.0),
        ]
        config = SimulationConfig(max_time=30.0, tie_break_seed=seed)
        result = run_and_verify(state, SparrowScheduler(), config, jobs)
        assert result.metrics.tasks_completed == 6

    @pytest.mark.parametrize("seed", FUZZ_SEEDS)
    def test_failure_races_scheduling(self, seed):
        # A machine fails while rounds are in flight; evictions must not
        # break per-round accounting (evicted placements show up as drops
        # or re-placements, never silent losses).
        state = make_cluster_state(num_machines=4, slots_per_machine=2)
        jobs = [
            make_job(job_id=1, num_tasks=6, duration=5.0, submit_time=0.0),
            make_job(job_id=2, num_tasks=4, duration=5.0, submit_time=1.0),
        ]

        def setup(simulator):
            simulator.fail_machine_at(0, 1.0)
            simulator.fail_machine_at(1, 1.0)  # simultaneous with job 2
            simulator.recover_machine_at(0, 6.0)

        config = SimulationConfig(max_time=40.0, tie_break_seed=seed)
        result = run_and_verify(
            state, FirmamentScheduler(LoadSpreadingPolicy()), config, jobs, setup
        )
        assert result.metrics.tasks_completed == 10


class TestStaleCompletions:
    """Completion events from before an eviction must not fire after a restart."""

    @pytest.mark.parametrize("seed", FUZZ_SEEDS)
    def test_evicted_task_restart_ignores_stale_completion(self, seed):
        state = make_cluster_state(num_machines=2, slots_per_machine=1)
        job = make_job(job_id=1, num_tasks=2, duration=10.0, submit_time=0.0)

        def setup(simulator):
            # Fail one machine mid-run: its task is evicted, restarts later,
            # and the original completion event (placed-at-0 + 10s) must be
            # recognized as stale when it fires.
            simulator.fail_machine_at(0, 3.0)
            simulator.recover_machine_at(0, 5.0)

        config = SimulationConfig(max_time=60.0, tie_break_seed=seed)
        result = run_and_verify(
            state, FirmamentScheduler(LoadSpreadingPolicy()), config, [job], setup
        )
        assert result.metrics.tasks_completed == 2
        for task in state.tasks.values():
            # A restarted task's response time covers its full second run:
            # finish >= restart + duration, so never before t=13.
            assert task.finish_time >= 10.0

    @pytest.mark.parametrize("seed", range(4))
    def test_migration_restart_race(self, seed):
        # reschedule_running lets the flow scheduler migrate running work;
        # migrations requeue completions, so the pre-migration event must
        # be detected as stale.
        state = make_cluster_state(num_machines=4, slots_per_machine=2)
        jobs = [
            make_job(job_id=1, num_tasks=4, duration=6.0, submit_time=0.0),
            make_job(job_id=2, num_tasks=4, duration=6.0, submit_time=0.5),
        ]
        config = SimulationConfig(
            max_time=40.0, reschedule_running=True, tie_break_seed=seed
        )
        result = run_and_verify(
            state, FirmamentScheduler(LoadSpreadingPolicy()), config, jobs
        )
        assert result.metrics.tasks_completed == 8


class TestDrainSemantics:
    """drain vs no-drain end states, and the no-drain void accounting."""

    def _slow_round_result(self, drain, seed=None):
        # runtime_scale stretches each round far past max_time, so the
        # final round's SCHEDULER_DONE always lands outside the window.
        state = make_cluster_state(num_machines=2, slots_per_machine=1)
        jobs = [make_job(job_id=1, num_tasks=4, duration=1.0, submit_time=0.0)]
        config = SimulationConfig(
            max_time=0.5,
            runtime_scale=50_000.0,
            drain=drain,
            tie_break_seed=seed,
        )
        return run_and_verify(state, FirmamentScheduler(QuincyPolicy()), config, jobs)

    @pytest.mark.parametrize("seed", [None, 0, 1, 2])
    def test_no_drain_voids_in_flight_round(self, seed):
        result = self._slow_round_result(drain=False, seed=seed)
        # The in-flight round was voided, not silently lost.
        assert result.rounds_voided >= 1
        assert any(r.voided for r in result.schedule_records)
        voided = [r for r in result.schedule_records if r.voided]
        assert all(r.num_applied == 0 and r.num_dropped == 0 for r in voided)
        # No placement ever landed: the round never completed in-window.
        assert result.placements_applied == 0
        assert all(not t.is_running for t in result.state.tasks.values())

    @pytest.mark.parametrize("seed", [None, 0, 1])
    def test_drain_applies_in_flight_round(self, seed):
        result = self._slow_round_result(drain=True, seed=seed)
        # Draining lets the slow round land: its placements are applied and
        # the tasks run to completion past max_time.
        assert result.placements_applied > 0
        assert result.metrics.tasks_completed == 4
        assert result.rounds_voided == 0

    def test_hard_stop_voids_unreachable_rounds(self):
        # Service tasks never complete, so with pending work the simulation
        # can only end at the hard stop; any round queued beyond it must be
        # voided by finalize(), and the total books must still balance.
        from repro.cluster.task import JobType

        state = make_cluster_state(num_machines=2, slots_per_machine=1)
        jobs = [
            make_job(job_id=1, num_tasks=4, duration=None, job_type=JobType.SERVICE),
        ]
        # runtime_scale puts the first round's SCHEDULER_DONE far beyond the
        # hard stop (max_time * 2 + 600), so the run breaks out and
        # finalize() must void it.
        config = SimulationConfig(max_time=10.0, runtime_scale=1e9, drain=True)
        result = run_and_verify(state, FirmamentScheduler(QuincyPolicy()), config, jobs)
        assert result.rounds_voided >= 1

    @pytest.mark.parametrize("seed", FUZZ_SEEDS)
    @pytest.mark.parametrize("drain", [True, False])
    def test_trace_replay_conserves_under_shuffles(self, seed, drain):
        trace = TraceConfig(
            num_machines=8,
            slots_per_machine=4,
            target_utilization=0.6,
            duration=40.0,
            seed=17,
        )
        state = make_cluster_state(num_machines=8, machines_per_rack=4, slots_per_machine=4)
        config = SimulationConfig(max_time=40.0, drain=drain, tie_break_seed=seed)
        simulator = ClusterSimulator(state, FirmamentScheduler(QuincyPolicy()), config)
        simulator.submit_job_stream(GoogleTraceGenerator(trace).iter_jobs())
        try:
            result = simulator.run()
        finally:
            simulator.close()
        tallies = verify_placement_conservation(result)
        assert tallies["applied"] == result.placements_applied
        assert result.metrics.tasks_placed > 0


class TestSchedulerStatisticsVoidRollback:
    def test_record_void_reverses_decision_counts(self):
        state = make_cluster_state(num_machines=2, slots_per_machine=1)
        scheduler = FirmamentScheduler(QuincyPolicy())
        jobs = [make_job(job_id=1, num_tasks=2, duration=1.0, submit_time=0.0)]
        config = SimulationConfig(max_time=0.5, runtime_scale=50_000.0, drain=False)
        result = run_and_verify(state, scheduler, config, jobs)
        assert result.rounds_voided >= 1
        stats = scheduler.statistics
        assert stats.voided_rounds == result.rounds_voided
        voided_placements = sum(
            r.num_placements for r in result.schedule_records if r.voided
        )
        assert stats.placements_voided == voided_placements
        # The lifetime placement counter excludes what never landed.
        applied_records = [r for r in result.schedule_records if not r.voided]
        assert stats.total_placements <= sum(r.num_placements for r in applied_records)
