"""Unit and integration tests for the event-driven simulator and metrics."""

import pytest

from repro.baselines import SparrowScheduler, SwarmKitScheduler
from repro.core import FirmamentScheduler, LoadSpreadingPolicy, QuincyPolicy
from repro.simulation.metrics import collect_metrics, input_data_locality
from repro.simulation.simulator import ClusterSimulator, SimulationConfig
from repro.simulation.trace import GoogleTraceGenerator, TraceConfig
from tests.conftest import make_cluster_state, make_job


class TestSimulatorBasics:
    def test_single_job_runs_to_completion(self):
        state = make_cluster_state(num_machines=4, slots_per_machine=2)
        simulator = ClusterSimulator(
            state, FirmamentScheduler(QuincyPolicy()), SimulationConfig(max_time=100.0)
        )
        simulator.submit_job(make_job(job_id=1, num_tasks=4, duration=5.0, submit_time=1.0))
        result = simulator.run()
        metrics = result.metrics
        assert metrics.tasks_placed == 4
        assert metrics.tasks_completed == 4
        assert metrics.tasks_unplaced == 0
        assert len(result.schedule_records) >= 1
        assert all(t.finish_time is not None for t in state.tasks.values())
        # Response time is at least the task duration.
        assert metrics.response_time_percentile(0) >= 5.0

    def test_placement_latency_includes_solver_runtime(self):
        state = make_cluster_state(num_machines=4, slots_per_machine=2)
        config = SimulationConfig(max_time=50.0, runtime_scale=100.0)
        simulator = ClusterSimulator(state, FirmamentScheduler(QuincyPolicy()), config)
        simulator.submit_job(make_job(job_id=1, num_tasks=3, duration=2.0, submit_time=0.0))
        result = simulator.run()
        # The (scaled) solver runtime shows up as placement latency.
        scaled_runtime = result.schedule_records[0].algorithm_runtime
        assert result.metrics.placement_latency_percentile(50) >= scaled_runtime * 0.5

    def test_relaxation_observability_threads_into_metrics(self):
        """SolverStatistics relaxation counters flow through ScheduleRecord
        into MetricsSummary (like price_refine_times in PR 4)."""
        state = make_cluster_state(num_machines=4, slots_per_machine=2)
        simulator = ClusterSimulator(
            state, FirmamentScheduler(QuincyPolicy()), SimulationConfig(max_time=100.0)
        )
        simulator.submit_job(make_job(job_id=1, num_tasks=4, duration=5.0, submit_time=1.0))
        result = simulator.run()
        records = result.schedule_records
        assert len(records) >= 1
        # The sequential executor always runs the relaxation leg, so every
        # record carries its tree/ascent counters regardless of the winner.
        assert any(r.relaxation_tree_nodes > 0 for r in records)
        assert result.metrics.relaxation_tree_nodes == [
            r.relaxation_tree_nodes for r in records
        ]
        assert result.metrics.relaxation_dual_ascents == [
            r.dual_ascents for r in records
        ]
        # No worker exists on the sequential executor: no ships recorded.
        assert sum(result.metrics.snapshot_ships) == 0
        assert sum(result.metrics.delta_ships) == 0
        assert result.metrics.delta_ship_ratio() == 0.0

    def test_delta_ship_ratio(self):
        from repro.simulation.metrics import MetricsSummary

        summary = MetricsSummary(snapshot_ships=[1, 0, 0], delta_ships=[0, 1, 1])
        assert summary.delta_ship_ratio() == pytest.approx(2 / 3)
        assert MetricsSummary().delta_ship_ratio() == 0.0

    def test_queue_based_scheduler_places_tasks_one_by_one(self):
        state = make_cluster_state(num_machines=4, slots_per_machine=2)
        scheduler = SparrowScheduler(per_task_decision_seconds=0.01)
        simulator = ClusterSimulator(state, scheduler, SimulationConfig(max_time=50.0))
        simulator.submit_job(make_job(job_id=1, num_tasks=4, duration=2.0, submit_time=0.0))
        result = simulator.run()
        latencies = sorted(result.metrics.placement_latencies)
        assert len(latencies) == 4
        # Tasks placed later in the queue waited longer.
        assert latencies[-1] > latencies[0]

    def test_tasks_queue_when_cluster_is_full(self):
        state = make_cluster_state(num_machines=2, slots_per_machine=1)
        simulator = ClusterSimulator(
            state, FirmamentScheduler(QuincyPolicy()), SimulationConfig(max_time=200.0)
        )
        simulator.submit_job(make_job(job_id=1, num_tasks=6, duration=5.0, submit_time=0.0))
        result = simulator.run()
        # All six tasks eventually completed on two slots.
        assert result.metrics.tasks_completed == 6
        # The last tasks had to wait for at least two full task durations.
        assert result.metrics.placement_latency_percentile(100) >= 10.0

    def test_service_tasks_never_complete(self):
        from repro.cluster.task import JobType

        state = make_cluster_state(num_machines=4, slots_per_machine=2)
        simulator = ClusterSimulator(
            state, FirmamentScheduler(QuincyPolicy()), SimulationConfig(max_time=30.0)
        )
        simulator.submit_job(
            make_job(job_id=1, num_tasks=2, duration=None, job_type=JobType.SERVICE)
        )
        result = simulator.run()
        # batch_only metrics use one consistent population: service tasks
        # are excluded from the placement counters too, not just the
        # completion counters (the old accounting mixed populations).
        assert result.metrics.tasks_placed == 0
        assert result.metrics.tasks_completed == 0
        assert all(t.is_running for t in state.tasks.values())
        # The full-population view still sees the placements.
        full = collect_metrics(state, batch_only=False)
        assert full.tasks_placed == 2
        assert full.tasks_completed == 0

    def test_multiple_jobs_over_time(self):
        state = make_cluster_state(num_machines=6, slots_per_machine=2)
        simulator = ClusterSimulator(
            state, FirmamentScheduler(LoadSpreadingPolicy()), SimulationConfig(max_time=100.0)
        )
        for index in range(5):
            simulator.submit_job(
                make_job(job_id=index + 1, num_tasks=3, duration=4.0, submit_time=index * 3.0)
            )
        result = simulator.run()
        assert result.metrics.tasks_completed == 15
        assert len(result.schedule_records) >= 5

    def test_reschedule_running_flag(self):
        state = make_cluster_state(num_machines=4, slots_per_machine=2)
        job = make_job(job_id=1, num_tasks=2, duration=None)
        state.submit_job(job)
        state.place_task(job.tasks[0].task_id, 0, 0.0)
        state.place_task(job.tasks[1].task_id, 0, 0.0)
        config = SimulationConfig(max_time=5.0, reschedule_running=True)
        simulator = ClusterSimulator(state, FirmamentScheduler(LoadSpreadingPolicy()), config)
        simulator.submit_job(make_job(job_id=2, num_tasks=1, duration=1.0, submit_time=0.5))
        result = simulator.run()
        assert result.schedule_records


class TestMetrics:
    def test_collect_metrics_from_state(self):
        state = make_cluster_state(num_machines=2, slots_per_machine=2)
        job = make_job(job_id=1, num_tasks=2, duration=5.0)
        state.submit_job(job)
        state.place_task(job.tasks[0].task_id, 0, now=1.0)
        state.complete_task(job.tasks[0].task_id, now=6.0)
        summary = collect_metrics(state, algorithm_runtimes=[0.25, 0.75])
        assert summary.tasks_placed == 1
        assert summary.tasks_completed == 1
        assert summary.tasks_unplaced == 1
        assert summary.placement_latency_percentile(50) == pytest.approx(1.0)
        assert summary.response_time_percentile(50) == pytest.approx(6.0)
        assert summary.mean_algorithm_runtime() == pytest.approx(0.5)
        assert summary.algorithm_runtime_percentile(100) == pytest.approx(0.75)

    def test_job_response_time_requires_all_tasks(self):
        state = make_cluster_state()
        job = make_job(job_id=1, num_tasks=2, duration=5.0)
        state.submit_job(job)
        state.place_task(job.tasks[0].task_id, 0, now=0.0)
        state.complete_task(job.tasks[0].task_id, now=5.0)
        summary = collect_metrics(state)
        assert summary.job_response_times == []

    def test_data_locality_metric(self):
        state = make_cluster_state()
        job = make_job(
            job_id=1, num_tasks=1, input_size_gb=10.0, input_locality={0: 0.8, 1: 0.1}
        )
        state.submit_job(job)
        state.place_task(job.tasks[0].task_id, 0, now=0.0)
        assert input_data_locality(state) == pytest.approx(0.8)
        state.complete_task(job.tasks[0].task_id, now=5.0)
        assert input_data_locality(state) == pytest.approx(0.8)

    def test_data_locality_ignores_tasks_without_input(self):
        state = make_cluster_state()
        job = make_job(job_id=1, num_tasks=1)
        state.submit_job(job)
        state.place_task(job.tasks[0].task_id, 0, now=0.0)
        assert input_data_locality(state) == 0.0

    def test_empty_metrics(self):
        state = make_cluster_state()
        summary = collect_metrics(state)
        assert summary.placement_latencies == []
        assert summary.mean_algorithm_runtime() == 0.0

    def test_evicted_unreplaced_task_counts_as_unplaced(self):
        # An evicted-but-not-replaced task is waiting for placement just
        # like a never-placed one; the old accounting only counted
        # SUBMITTED tasks and understated the backlog.
        state = make_cluster_state(num_machines=2, slots_per_machine=2)
        job = make_job(job_id=1, num_tasks=2, duration=50.0)
        state.submit_job(job)
        state.place_task(job.tasks[0].task_id, 0, now=1.0)
        state.place_task(job.tasks[1].task_id, 0, now=1.0)
        state.fail_machine(0, now=5.0)
        summary = collect_metrics(state)
        assert summary.tasks_unplaced == 2
        # They were placed once, so they still count in tasks_placed.
        assert summary.tasks_placed == 2

    def test_batch_only_filter_shares_one_population(self):
        from repro.cluster.task import JobType

        state = make_cluster_state(num_machines=2, slots_per_machine=4)
        service = make_job(job_id=1, num_tasks=2, duration=None, job_type=JobType.SERVICE)
        batch = make_job(job_id=2, num_tasks=2, duration=5.0)
        state.submit_job(service)
        state.submit_job(batch)
        for task in service.tasks + batch.tasks:
            state.place_task(task.task_id, 0, now=1.0)
        for task in batch.tasks:
            state.complete_task(task.task_id, now=6.0)
        summary = collect_metrics(state, batch_only=True)
        # Placement and completion counters describe the same (batch)
        # denominator; service placements don't leak into one side only.
        assert summary.tasks_placed == 2
        assert summary.tasks_completed == 2
        assert len(summary.placement_latencies) == len(summary.response_times)
        full = collect_metrics(state, batch_only=False)
        assert full.tasks_placed == 4
        assert full.tasks_completed == 2

    def test_data_locality_respects_batch_only_population(self):
        # Regression: input_data_locality used to ignore batch_only, so
        # service tasks counted in the locality metric while being
        # excluded from every other per-task counter of collect_metrics.
        from repro.cluster.task import JobType

        state = make_cluster_state(num_machines=2, slots_per_machine=4)
        service = make_job(
            job_id=1, num_tasks=1, duration=None, job_type=JobType.SERVICE,
            input_size_gb=10.0, input_locality={0: 0.0},
        )
        batch = make_job(
            job_id=2, num_tasks=1, duration=5.0,
            input_size_gb=10.0, input_locality={0: 1.0},
        )
        state.submit_job(service)
        state.submit_job(batch)
        for task in service.tasks + batch.tasks:
            state.place_task(task.task_id, 0, now=1.0)
        # The batch population reads 100% locally; only the service task
        # read remotely.  batch_only metrics must not see the service read.
        assert input_data_locality(state, batch_only=True) == pytest.approx(1.0)
        assert input_data_locality(state, batch_only=False) == pytest.approx(0.5)
        # And collect_metrics threads its flag through: one population for
        # *all* task-level metrics, data locality included.
        assert collect_metrics(state, batch_only=True).data_locality == pytest.approx(1.0)
        assert collect_metrics(state, batch_only=False).data_locality == pytest.approx(0.5)

    def test_data_locality_credits_evicted_task_last_placement(self):
        # A task evicted after running read its input on the machine it
        # actually ran on; charging its bytes with zero possible credit
        # (the old machine_id-only accounting) deflated the metric.
        state = make_cluster_state(num_machines=2, slots_per_machine=2)
        job = make_job(
            job_id=1, num_tasks=1, duration=50.0,
            input_size_gb=10.0, input_locality={0: 0.8},
        )
        state.submit_job(job)
        state.place_task(job.tasks[0].task_id, 0, now=1.0)
        assert input_data_locality(state) == pytest.approx(0.8)
        state.fail_machine(0, now=5.0)
        task = job.tasks[0]
        assert task.machine_id is None and task.is_pending
        # Credited with the last placement, not charged at zero.
        assert input_data_locality(state) == pytest.approx(0.8)

    def test_data_locality_skips_never_placed_tasks(self):
        state = make_cluster_state(num_machines=2, slots_per_machine=2)
        job = make_job(job_id=1, num_tasks=1, input_size_gb=10.0,
                       input_locality={0: 0.8})
        state.submit_job(job)
        # Never ran anywhere: nothing read, nothing charged.
        assert input_data_locality(state) == 0.0


class TestTraceReplayIntegration:
    def test_firmament_keeps_up_with_small_trace(self):
        config = TraceConfig(num_machines=16, slots_per_machine=4,
                             target_utilization=0.4, duration=80.0, seed=21)
        state = make_cluster_state(num_machines=16, machines_per_rack=8, slots_per_machine=4)
        simulator = ClusterSimulator(
            state, FirmamentScheduler(QuincyPolicy()), SimulationConfig(max_time=80.0)
        )
        simulator.submit_jobs(GoogleTraceGenerator(config).generate())
        result = simulator.run()
        assert result.metrics.tasks_placed > 0
        # Placement latencies on a small cluster are far below a second.
        assert result.metrics.placement_latency_percentile(50) < 1.0

    def test_same_trace_same_results_for_deterministic_scheduler(self):
        config = TraceConfig(num_machines=12, duration=60.0, seed=31, service_job_fraction=0.0)

        def run_once():
            state = make_cluster_state(num_machines=12, machines_per_rack=6)
            simulator = ClusterSimulator(
                state, SwarmKitScheduler(), SimulationConfig(max_time=60.0)
            )
            simulator.submit_jobs(GoogleTraceGenerator(config).generate())
            return simulator.run()

        first = run_once()
        second = run_once()
        assert first.metrics.tasks_completed == second.metrics.tasks_completed
        assert first.metrics.response_times == second.metrics.response_times
