"""Tests for the streaming trace-ingestion layer."""

import io

import pytest

from repro.core import FirmamentScheduler, QuincyPolicy
from repro.simulation.ingest import (
    ALIBABA_SCHEMA,
    GOOGLE_SCHEMA,
    TraceSchema,
    read_trace,
    write_jobs_csv,
)
from repro.simulation.simulator import (
    ClusterSimulator,
    SimulationConfig,
    verify_placement_conservation,
)
from repro.simulation.trace import GoogleTraceGenerator, TraceConfig
from repro.cluster.task import JobType
from tests.conftest import make_cluster_state


GENERIC_CSV = """\
job_id,task_id,submit_time,duration,cpu_request,ram_request_gb,priority
alpha,0,0.0,5.0,1.0,2.0,1
alpha,1,0.0,6.0,1.0,2.0,1
beta,0,3.5,,0.5,1.0,10
gamma,0,7.0,2.0,2.0,4.0,1
"""


class TestReadTrace:
    def test_parses_jobs_and_tasks(self):
        jobs = list(read_trace(io.StringIO(GENERIC_CSV)))
        assert [job.name for job in jobs] == ["alpha", "beta", "gamma"]
        assert [job.num_tasks for job in jobs] == [2, 1, 1]
        assert jobs[0].submit_time == pytest.approx(0.0)
        assert jobs[2].submit_time == pytest.approx(7.0)
        alpha = jobs[0]
        assert alpha.tasks[0].duration == pytest.approx(5.0)
        assert alpha.tasks[1].duration == pytest.approx(6.0)
        assert alpha.tasks[0].cpu_request == pytest.approx(1.0)
        assert alpha.tasks[0].ram_request_gb == pytest.approx(2.0)
        # Synthesized ids are dense and unique across jobs.
        ids = [t.task_id for job in jobs for t in job.tasks]
        assert ids == sorted(set(ids))

    def test_empty_duration_is_service_task(self):
        jobs = list(read_trace(io.StringIO(GENERIC_CSV)))
        beta = jobs[1]
        assert beta.tasks[0].duration is None

    def test_streaming_yields_before_exhaustion(self):
        # The reader must yield 'alpha' without consuming 'gamma' rows:
        # pulling one job from the iterator of a huge trace must not read
        # the whole file.
        lines = iter(GENERIC_CSV.splitlines())
        stream = read_trace(lines)
        first = next(stream)
        assert first.name == "alpha"
        remaining = list(lines)
        assert any("gamma" in line for line in remaining)

    def test_rejects_reappearing_job(self):
        csv_text = (
            "job_id,task_id,submit_time,duration\n"
            "a,0,0.0,1.0\n"
            "b,0,1.0,1.0\n"
            "a,1,2.0,1.0\n"
        )
        with pytest.raises(ValueError, match="reappears"):
            list(read_trace(io.StringIO(csv_text)))

    def test_rejects_unsorted_arrivals(self):
        csv_text = (
            "job_id,task_id,submit_time,duration\n"
            "a,0,5.0,1.0\n"
            "b,0,1.0,1.0\n"
        )
        with pytest.raises(ValueError, match="sort the trace"):
            list(read_trace(io.StringIO(csv_text)))

    def test_rejects_missing_column(self):
        csv_text = "wrong,header\n1,2\n"
        with pytest.raises(ValueError, match="missing"):
            list(read_trace(io.StringIO(csv_text)))

    def test_rejects_non_numeric_field(self):
        csv_text = "job_id,task_id,submit_time,duration\na,0,zero,1.0\n"
        with pytest.raises(ValueError, match="not numeric"):
            list(read_trace(io.StringIO(csv_text)))

    def test_straggler_task_clamped_to_job_arrival(self):
        csv_text = (
            "job_id,task_id,submit_time,duration\n"
            "a,0,10.0,1.0\n"
            "a,1,4.0,1.0\n"  # stamped before the job arrived
        )
        jobs = list(read_trace(io.StringIO(csv_text)))
        assert jobs[0].tasks[1].submit_time == pytest.approx(10.0)

    def test_max_tasks_stops_early(self):
        jobs = list(read_trace(io.StringIO(GENERIC_CSV), max_tasks=2))
        assert len(jobs) == 1
        assert jobs[0].num_tasks == 2

    def test_google_schema_scales_and_classifies(self):
        csv_text = (
            "time,job_id,task_index,duration,cpu_request,memory_request,priority\n"
            "1000000,j1,0,5000000,0.5,0.25,1\n"
            "2000000,j2,0,,0.25,0.5,11\n"
        )
        jobs = list(read_trace(io.StringIO(csv_text), GOOGLE_SCHEMA))
        assert jobs[0].submit_time == pytest.approx(1.0)
        assert jobs[0].tasks[0].duration == pytest.approx(5.0)
        assert jobs[0].job_type is JobType.BATCH
        # Priority 11 >= threshold 9: long-running service tier.
        assert jobs[1].job_type is JobType.SERVICE
        assert jobs[1].tasks[0].duration is None

    def test_alibaba_schema_scales_cpu(self):
        csv_text = (
            "job_name,task_name,start_time,duration,plan_cpu,plan_mem\n"
            "j_1,t_1,100,60,200,4\n"
        )
        jobs = list(read_trace(io.StringIO(csv_text), ALIBABA_SCHEMA))
        task = jobs[0].tasks[0]
        assert task.cpu_request == pytest.approx(2.0)  # 200% of a core
        assert task.ram_request_gb == pytest.approx(4.0)
        assert task.duration == pytest.approx(60.0)


class TestWriteJobsCsv:
    def test_round_trip(self, tmp_path):
        trace = TraceConfig(num_machines=8, duration=30.0, seed=7)
        original = GoogleTraceGenerator(trace).generate()
        path = tmp_path / "trace.csv"
        schema = TraceSchema()
        rows = write_jobs_csv(original, path, schema)
        assert rows == sum(job.num_tasks for job in original)

        replayed = list(read_trace(path, schema))
        assert len(replayed) == len(original)
        for before, after in zip(original, replayed):
            assert after.num_tasks == before.num_tasks
            assert after.submit_time == pytest.approx(before.submit_time)
            for t_before, t_after in zip(before.tasks, after.tasks):
                if t_before.duration is None:
                    assert t_after.duration is None
                else:
                    assert t_after.duration == pytest.approx(t_before.duration)
                assert t_after.cpu_request == pytest.approx(t_before.cpu_request)


class TestIngestedReplay:
    def test_csv_trace_replay_smoke(self, tmp_path):
        # End-to-end: synthetic workload -> CSV -> streamed ingestion ->
        # event-driven replay, with the conservation law checked.
        trace = TraceConfig(
            num_machines=8,
            slots_per_machine=4,
            target_utilization=0.5,
            duration=40.0,
            seed=11,
            service_job_fraction=0.0,
        )
        path = tmp_path / "trace.csv"
        write_jobs_csv(GoogleTraceGenerator(trace).iter_jobs(), path)

        state = make_cluster_state(num_machines=8, machines_per_rack=4, slots_per_machine=4)
        simulator = ClusterSimulator(
            state, FirmamentScheduler(QuincyPolicy()), SimulationConfig(max_time=40.0)
        )
        simulator.submit_job_stream(read_trace(path))
        try:
            result = simulator.run()
        finally:
            simulator.close()
        verify_placement_conservation(result)
        assert result.metrics.tasks_placed > 0
        assert result.metrics.tasks_completed > 0
        assert result.events_processed > 0

    def test_stream_matches_batch_submission(self):
        # Streamed ingestion and up-front submission of the same workload
        # must produce identical results for a deterministic scheduler.
        from repro.baselines import SwarmKitScheduler

        trace = TraceConfig(
            num_machines=8, duration=30.0, seed=13, service_job_fraction=0.0
        )

        def run(streamed):
            state = make_cluster_state(num_machines=8, machines_per_rack=4)
            simulator = ClusterSimulator(
                state, SwarmKitScheduler(), SimulationConfig(max_time=30.0)
            )
            generator = GoogleTraceGenerator(trace)
            if streamed:
                simulator.submit_job_stream(generator.iter_jobs())
            else:
                simulator.submit_jobs(generator.generate())
            return simulator.run()

        batch = run(streamed=False)
        stream = run(streamed=True)
        assert stream.metrics.tasks_completed == batch.metrics.tasks_completed
        assert stream.metrics.response_times == batch.metrics.response_times
