"""Tests for machine-failure injection and the simulator's failure handling."""

from __future__ import annotations

import pytest

from repro.core import FirmamentScheduler, QuincyPolicy
from repro.simulation.failures import FailureInjector, FailureSchedule
from repro.simulation.simulator import ClusterSimulator, SimulationConfig

from tests.conftest import make_cluster_state, make_job


def make_simulator(num_machines=4, slots_per_machine=2, max_time=200.0):
    state = make_cluster_state(num_machines=num_machines, slots_per_machine=slots_per_machine)
    scheduler = FirmamentScheduler(QuincyPolicy())
    return ClusterSimulator(state, scheduler, SimulationConfig(max_time=max_time)), state


class TestFailureInjector:
    def test_schedule_is_deterministic_for_a_seed(self):
        state = make_cluster_state(num_machines=8)
        injector = FailureInjector(mean_time_between_failures=50.0, seed=7)
        first = injector.generate(state.topology, horizon=1_000.0)
        second = FailureInjector(mean_time_between_failures=50.0, seed=7).generate(
            state.topology, horizon=1_000.0
        )
        assert first.events == second.events
        assert first.num_failures > 0

    def test_different_seeds_differ(self):
        state = make_cluster_state(num_machines=8)
        a = FailureInjector(mean_time_between_failures=50.0, seed=1).generate(
            state.topology, horizon=1_000.0
        )
        b = FailureInjector(mean_time_between_failures=50.0, seed=2).generate(
            state.topology, horizon=1_000.0
        )
        assert a.events != b.events

    def test_failures_respect_horizon_and_start_time(self):
        state = make_cluster_state(num_machines=4)
        injector = FailureInjector(mean_time_between_failures=20.0, seed=3)
        schedule = injector.generate(state.topology, horizon=500.0, start_time=100.0)
        assert all(100.0 <= event.fail_time < 500.0 for event in schedule.events)

    def test_empty_horizon_gives_empty_schedule(self):
        state = make_cluster_state(num_machines=4)
        injector = FailureInjector()
        assert injector.generate(state.topology, horizon=0.0).num_failures == 0

    def test_machine_does_not_fail_while_down(self):
        state = make_cluster_state(num_machines=2)
        injector = FailureInjector(
            mean_time_between_failures=5.0, mean_time_to_repair=10_000.0, seed=5
        )
        schedule = injector.generate(state.topology, horizon=500.0)
        # With a repair time far beyond the horizon each machine can fail at
        # most once.
        machines = [event.machine_id for event in schedule.events]
        assert len(machines) == len(set(machines))

    def test_no_recovery_when_mttr_is_zero(self):
        state = make_cluster_state(num_machines=4)
        injector = FailureInjector(
            mean_time_between_failures=20.0, mean_time_to_repair=0.0, seed=11
        )
        schedule = injector.generate(state.topology, horizon=400.0)
        assert schedule.num_failures > 0
        assert all(event.recover_time is None for event in schedule.events)

    def test_eligible_machines_restriction(self):
        state = make_cluster_state(num_machines=8)
        injector = FailureInjector(mean_time_between_failures=10.0, seed=13)
        schedule = injector.generate(
            state.topology, horizon=500.0, eligible_machines=[0, 1]
        )
        assert set(schedule.machines_affected()).issubset({0, 1})

    def test_invalid_mtbf_rejected(self):
        with pytest.raises(ValueError):
            FailureInjector(mean_time_between_failures=0.0)


class TestRackStorms:
    def test_storm_takes_whole_rack_down_together(self):
        state = make_cluster_state(num_machines=8, machines_per_rack=4)
        injector = FailureInjector(
            mean_time_between_failures=25.0, mean_time_to_repair=10.0, seed=3
        )
        schedule = injector.generate_rack_storms(state.topology, horizon=1_000.0)
        assert schedule.num_failures > 0
        # Group by storm time: every event sharing a fail_time is one storm
        # and must cover exactly one rack's machine set (minus machines
        # still down from an earlier storm).
        storms = {}
        for event in schedule.events:
            storms.setdefault(event.fail_time, []).append(event.machine_id)
        rack_sets = [
            frozenset(rack.machine_ids) for rack in state.topology.racks.values()
        ]
        full_storms = 0
        for machines in storms.values():
            hit = frozenset(machines)
            containing = [rack for rack in rack_sets if hit <= rack]
            assert len(containing) == 1  # never straddles racks
            if hit == containing[0]:
                full_storms += 1
        # At least one storm hit a fully-up rack and took all of it down.
        assert full_storms >= 1

    def test_storms_are_deterministic_and_distinct_from_machine_stream(self):
        state = make_cluster_state(num_machines=8, machines_per_rack=4)
        injector = FailureInjector(
            mean_time_between_failures=25.0, mean_time_to_repair=10.0, seed=9
        )
        first = injector.generate_rack_storms(state.topology, horizon=1_000.0)
        second = FailureInjector(
            mean_time_between_failures=25.0, mean_time_to_repair=10.0, seed=9
        ).generate_rack_storms(state.topology, horizon=1_000.0)
        assert first.events == second.events
        assert first.num_failures > 0
        # The storm stream is seeded separately, so overlaying it on the
        # per-machine stream keeps both deterministic and uncorrelated.
        machine_stream = injector.generate(state.topology, horizon=1_000.0)
        assert first.events != machine_stream.events

    def test_storm_recoveries_are_ragged_per_machine(self):
        state = make_cluster_state(num_machines=8, machines_per_rack=4)
        injector = FailureInjector(
            mean_time_between_failures=25.0, mean_time_to_repair=30.0, seed=5
        )
        schedule = injector.generate_rack_storms(state.topology, horizon=2_000.0)
        storms = {}
        for event in schedule.events:
            storms.setdefault(event.fail_time, []).append(event)
        multi = [events for events in storms.values() if len(events) >= 2]
        assert multi
        # Machines fail together but repair independently.
        assert any(
            len({event.recover_time for event in events}) > 1 for events in multi
        )

    def test_zero_mttr_storms_never_recover_and_never_refail(self):
        state = make_cluster_state(num_machines=8, machines_per_rack=4)
        injector = FailureInjector(
            mean_time_between_failures=25.0, mean_time_to_repair=0.0, seed=7
        )
        schedule = injector.generate_rack_storms(state.topology, horizon=5_000.0)
        assert schedule.num_failures > 0
        assert all(event.recover_time is None for event in schedule.events)
        machines = [event.machine_id for event in schedule.events]
        assert len(machines) == len(set(machines))

    def test_invalid_storm_gap_rejected(self):
        state = make_cluster_state(num_machines=4)
        injector = FailureInjector()
        with pytest.raises(ValueError):
            injector.generate_rack_storms(
                state.topology, horizon=100.0, mean_time_between_storms=0.0
            )

    def test_merge_overlays_storms_on_background_churn(self):
        state = make_cluster_state(num_machines=8, machines_per_rack=4)
        injector = FailureInjector(
            mean_time_between_failures=30.0, mean_time_to_repair=15.0, seed=17
        )
        churn = injector.generate(state.topology, horizon=500.0)
        storms = injector.generate_rack_storms(
            state.topology, horizon=500.0, mean_time_between_storms=60.0
        )
        merged = churn.merge(storms)
        assert merged.num_failures == churn.num_failures + storms.num_failures
        times = [(event.fail_time, event.machine_id) for event in merged.events]
        assert times == sorted(times)

    def test_merged_storm_schedule_installs_and_run_completes(self):
        simulator, state = make_simulator(num_machines=8, max_time=200.0)
        simulator.submit_jobs([make_job(job_id=1, num_tasks=6, duration=30.0)])
        injector = FailureInjector(
            mean_time_between_failures=80.0, mean_time_to_repair=10.0, seed=23
        )
        churn = injector.generate(state.topology, horizon=200.0)
        storms = injector.generate_rack_storms(
            state.topology, horizon=200.0, mean_time_between_storms=90.0
        )
        merged = churn.merge(storms)
        merged.install(simulator)
        result = simulator.run()
        # Correlated rack loss plus background churn: the scheduler still
        # re-places evicted work and finishes the job.
        assert result.metrics.tasks_completed == 6


class TestSimulatorFailureHandling:
    def test_failure_evicts_and_rescheduler_replaces_tasks(self):
        simulator, state = make_simulator(num_machines=4, max_time=100.0)
        job = make_job(job_id=1, num_tasks=4, duration=80.0)
        simulator.submit_jobs([job])
        simulator.fail_machine_at(0, time=10.0)
        result = simulator.run()
        # The machine is down, yet every task eventually completes because
        # evicted tasks are re-placed on the remaining machines.
        assert result.metrics.tasks_completed == 4
        assert not state.topology.machine(0).is_available

    def test_recovery_makes_machine_usable_again(self):
        simulator, state = make_simulator(num_machines=2, slots_per_machine=1, max_time=300.0)
        job = make_job(job_id=1, num_tasks=2, duration=50.0)
        simulator.submit_jobs([job])
        simulator.fail_machine_at(0, time=5.0)
        simulator.recover_machine_at(0, time=20.0)
        result = simulator.run()
        assert state.topology.machine(0).is_available
        assert result.metrics.tasks_completed == 2

    def test_stale_completion_after_eviction_is_ignored(self):
        simulator, state = make_simulator(num_machines=2, slots_per_machine=2, max_time=300.0)
        job = make_job(job_id=1, num_tasks=1, duration=40.0)
        simulator.submit_jobs([job])
        # Fail the machine shortly before the task would have completed had
        # it kept running; the restarted task must run its full duration.
        simulator.fail_machine_at(0, time=30.0)
        simulator.fail_machine_at(1, time=30.0)
        simulator.recover_machine_at(0, time=35.0)
        simulator.recover_machine_at(1, time=35.0)
        result = simulator.run()
        task = state.tasks[job.tasks[0].task_id]
        assert task.is_finished
        # Restarted around t>=35 with a 40 s duration: cannot finish before 75.
        assert task.finish_time >= 70.0
        assert result.metrics.tasks_completed == 1

    def test_failing_unknown_or_failed_machine_is_harmless(self):
        simulator, state = make_simulator(num_machines=2, max_time=50.0)
        job = make_job(job_id=1, num_tasks=1, duration=10.0)
        simulator.submit_jobs([job])
        simulator.fail_machine_at(99, time=1.0)
        simulator.fail_machine_at(0, time=2.0)
        simulator.fail_machine_at(0, time=3.0)
        simulator.recover_machine_at(99, time=4.0)
        result = simulator.run()
        assert result.metrics.tasks_completed == 1

    def test_injector_install_into_simulator(self):
        simulator, state = make_simulator(num_machines=6, max_time=150.0)
        job = make_job(job_id=1, num_tasks=6, duration=30.0)
        simulator.submit_jobs([job])
        injector = FailureInjector(
            mean_time_between_failures=40.0, mean_time_to_repair=20.0, seed=21
        )
        schedule = injector.inject(simulator, horizon=150.0)
        assert isinstance(schedule, FailureSchedule)
        result = simulator.run()
        assert result.metrics.tasks_completed == 6
