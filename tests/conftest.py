"""Shared fixtures and graph/cluster builders for the test suite."""

from __future__ import annotations

import random
from typing import Dict, Optional

import pytest

from repro.cluster import ClusterState, Job, JobType, Task, build_topology
from repro.flow.graph import FlowNetwork, NodeType


def build_scheduling_network(
    seed: int = 0,
    num_tasks: int = 6,
    num_machines: int = 4,
    slots_per_machine: int = 2,
    max_cost: int = 10,
    preference_arcs: int = 3,
) -> FlowNetwork:
    """Build a random but well-formed scheduling flow network.

    The network has the canonical structure: task nodes with unit supply,
    machine nodes with arcs to a single sink, an unscheduled aggregator per
    synthetic job, and task preference arcs to a random subset of machines.
    Every task can always drain via the unscheduled aggregator, so the
    problem is guaranteed feasible.
    """
    rng = random.Random(seed)
    net = FlowNetwork()
    sink = net.add_node(NodeType.SINK, supply=-num_tasks, name="S")
    machines = [
        net.add_node(NodeType.MACHINE, name=f"M{i}", ref=i) for i in range(num_machines)
    ]
    for machine in machines:
        net.add_arc(machine.node_id, sink.node_id, slots_per_machine, 0)
    unscheduled = net.add_node(NodeType.UNSCHEDULED_AGGREGATOR, name="U0")
    net.add_arc(unscheduled.node_id, sink.node_id, num_tasks, 0)
    for index in range(num_tasks):
        task = net.add_node(NodeType.TASK, supply=1, name=f"T{index}", ref=index)
        net.add_arc(task.node_id, unscheduled.node_id, 1, rng.randint(max_cost // 2, max_cost))
        targets = rng.sample(machines, k=min(preference_arcs, num_machines))
        for machine in targets:
            net.add_arc(task.node_id, machine.node_id, 1, rng.randint(0, max_cost // 2))
    return net


def build_contended_network(
    num_tasks: int = 40, num_machines: int = 4, slots_per_machine: int = 2
) -> FlowNetwork:
    """Build a network where many tasks compete for few machine slots.

    Tasks all prefer the (cheap) machines, but there are far fewer slots than
    tasks, so most flow must fall back to the expensive unscheduled
    aggregator -- the contended regime where relaxation struggles.
    """
    net = FlowNetwork()
    sink = net.add_node(NodeType.SINK, supply=-num_tasks, name="S")
    machines = [
        net.add_node(NodeType.MACHINE, name=f"M{i}", ref=i) for i in range(num_machines)
    ]
    aggregator = net.add_node(NodeType.CLUSTER_AGGREGATOR, name="X")
    for machine in machines:
        net.add_arc(machine.node_id, sink.node_id, slots_per_machine, 0)
        net.add_arc(aggregator.node_id, machine.node_id, slots_per_machine, 1)
    unscheduled = net.add_node(NodeType.UNSCHEDULED_AGGREGATOR, name="U0")
    net.add_arc(unscheduled.node_id, sink.node_id, num_tasks, 0)
    for index in range(num_tasks):
        task = net.add_node(NodeType.TASK, supply=1, name=f"T{index}", ref=index)
        net.add_arc(task.node_id, aggregator.node_id, 1, 0)
        net.add_arc(task.node_id, unscheduled.node_id, 1, 100)
    return net


def reference_min_cost(network: FlowNetwork) -> int:
    """Compute the optimal cost with networkx, as an independent oracle."""
    import networkx as nx

    graph = network.to_networkx()
    flow = nx.min_cost_flow(graph)
    return nx.cost_of_flow(graph, flow)


def make_cluster_state(
    num_machines: int = 8,
    machines_per_rack: int = 4,
    slots_per_machine: int = 2,
) -> ClusterState:
    """Build an empty cluster state with a small homogeneous topology."""
    topology = build_topology(
        num_machines=num_machines,
        machines_per_rack=machines_per_rack,
        slots_per_machine=slots_per_machine,
    )
    return ClusterState(topology)


def make_job(
    job_id: int,
    num_tasks: int,
    submit_time: float = 0.0,
    duration: Optional[float] = 10.0,
    job_type: JobType = JobType.BATCH,
    task_id_offset: Optional[int] = None,
    input_size_gb: float = 0.0,
    input_locality: Optional[Dict[int, float]] = None,
    network_request_mbps: int = 0,
) -> Job:
    """Build a job with ``num_tasks`` identical tasks."""
    offset = task_id_offset if task_id_offset is not None else job_id * 1000
    job = Job(job_id=job_id, job_type=job_type, submit_time=submit_time)
    for index in range(num_tasks):
        job.add_task(
            Task(
                task_id=offset + index,
                job_id=job_id,
                duration=duration,
                submit_time=submit_time,
                input_size_gb=input_size_gb,
                input_locality=dict(input_locality or {}),
                network_request_mbps=network_request_mbps,
            )
        )
    return job


@pytest.fixture
def small_state() -> ClusterState:
    """An empty 8-machine, 2-rack, 2-slot cluster state."""
    return make_cluster_state()


@pytest.fixture
def loaded_state() -> ClusterState:
    """A cluster state with one job of four tasks already running."""
    state = make_cluster_state()
    job = make_job(job_id=1, num_tasks=4)
    state.submit_job(job)
    for index, task in enumerate(job.tasks):
        state.place_task(task.task_id, index % state.topology.num_machines, now=0.0)
    return state
