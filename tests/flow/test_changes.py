"""Unit tests for graph changes and the Table-3 classification."""

import pytest

from repro.flow.changes import (
    ArcAddition,
    ArcCapacityChange,
    ArcCostChange,
    ArcRemoval,
    ChangeEffect,
    NodeAddition,
    NodeRemoval,
    SupplyChange,
    apply_changes,
    changes_break_feasibility,
    classify_arc_change,
    summarize_changes,
)
from repro.flow.graph import FlowNetwork, NodeType


def simple_network():
    net = FlowNetwork()
    task = net.add_node(NodeType.TASK, supply=1, name="T")
    machine = net.add_node(NodeType.MACHINE, name="M")
    sink = net.add_node(NodeType.SINK, supply=-1, name="S")
    net.add_arc(task.node_id, machine.node_id, 1, 3)
    net.add_arc(machine.node_id, sink.node_id, 1, 0)
    return net, task, machine, sink


class TestChangeApplication:
    def test_supply_change(self):
        net, task, _, _ = simple_network()
        SupplyChange(node_id=task.node_id, delta=2).apply(net)
        assert net.node(task.node_id).supply == 3

    def test_node_addition_with_arcs(self):
        net, _, machine, sink = simple_network()
        change = NodeAddition(
            node_type=NodeType.TASK,
            supply=1,
            name="T2",
            arcs_out=[(machine.node_id, 1, 4)],
        )
        change.apply(net)
        assert change.created_node_id is not None
        assert net.has_arc(change.created_node_id, machine.node_id)
        assert net.node(change.created_node_id).supply == 1

    def test_node_removal(self):
        net, task, _, _ = simple_network()
        NodeRemoval(node_id=task.node_id).apply(net)
        assert not net.has_node(task.node_id)

    def test_arc_capacity_and_cost_changes(self):
        net, task, machine, _ = simple_network()
        ArcCapacityChange(task.node_id, machine.node_id, 5).apply(net)
        ArcCostChange(task.node_id, machine.node_id, 9).apply(net)
        arc = net.arc(task.node_id, machine.node_id)
        assert arc.capacity == 5
        assert arc.cost == 9

    def test_arc_addition_and_removal(self):
        net, task, _, sink = simple_network()
        ArcAddition(task.node_id, sink.node_id, 1, 7).apply(net)
        assert net.has_arc(task.node_id, sink.node_id)
        ArcRemoval(task.node_id, sink.node_id).apply(net)
        assert not net.has_arc(task.node_id, sink.node_id)

    def test_apply_changes_in_order(self):
        net, task, machine, sink = simple_network()
        apply_changes(
            net,
            [
                ArcRemoval(task.node_id, machine.node_id),
                ArcAddition(task.node_id, sink.node_id, 1, 2),
            ],
        )
        assert not net.has_arc(task.node_id, machine.node_id)
        assert net.has_arc(task.node_id, sink.node_id)

    def test_summarize_changes(self):
        summary = summarize_changes(
            [
                SupplyChange(0, 1),
                SupplyChange(1, -1),
                ArcCostChange(0, 1, 5),
            ]
        )
        assert summary == {"SupplyChange": 2, "ArcCostChange": 1}


class TestTable3Classification:
    """The classification mirrors Table 3 of the paper."""

    def test_increasing_capacity_on_negative_reduced_cost_breaks_optimality(self):
        effect = classify_arc_change(
            reduced_cost=-2, flow=1, old_capacity=1, new_capacity=3
        )
        assert effect is ChangeEffect.BREAKS_OPTIMALITY

    def test_increasing_capacity_on_nonnegative_reduced_cost_is_safe(self):
        for rc in (0, 4):
            effect = classify_arc_change(
                reduced_cost=rc, flow=0, old_capacity=1, new_capacity=3
            )
            assert effect is ChangeEffect.NONE

    def test_decreasing_capacity_below_flow_breaks_feasibility(self):
        effect = classify_arc_change(
            reduced_cost=0, flow=3, old_capacity=4, new_capacity=2
        )
        assert effect is ChangeEffect.BREAKS_FEASIBILITY

    def test_decreasing_capacity_above_flow_is_safe(self):
        effect = classify_arc_change(
            reduced_cost=0, flow=1, old_capacity=4, new_capacity=2
        )
        assert effect is ChangeEffect.NONE

    def test_unchanged_capacity_is_safe(self):
        effect = classify_arc_change(
            reduced_cost=-1, flow=1, old_capacity=2, new_capacity=2
        )
        assert effect is ChangeEffect.NONE

    def test_increasing_cost_on_flow_carrying_arc_breaks_optimality(self):
        effect = classify_arc_change(reduced_cost=-1, flow=1, new_reduced_cost=2)
        assert effect is ChangeEffect.BREAKS_OPTIMALITY

    def test_increasing_cost_without_flow_is_safe(self):
        effect = classify_arc_change(reduced_cost=0, flow=0, new_reduced_cost=3)
        assert effect is ChangeEffect.NONE

    def test_decreasing_cost_below_zero_breaks_optimality(self):
        effect = classify_arc_change(reduced_cost=1, flow=0, new_reduced_cost=-2)
        assert effect is ChangeEffect.BREAKS_OPTIMALITY

    def test_decreasing_cost_staying_nonnegative_is_safe(self):
        effect = classify_arc_change(reduced_cost=5, flow=0, new_reduced_cost=1)
        assert effect is ChangeEffect.NONE

    def test_must_describe_exactly_one_change(self):
        with pytest.raises(ValueError):
            classify_arc_change(reduced_cost=0, flow=0)
        with pytest.raises(ValueError):
            classify_arc_change(
                reduced_cost=0,
                flow=0,
                old_capacity=1,
                new_capacity=2,
                new_reduced_cost=1,
            )


class TestFeasibilityScreening:
    def test_node_addition_with_supply_breaks_feasibility(self):
        net, *_ = simple_network()
        changes = [NodeAddition(node_type=NodeType.TASK, supply=1)]
        assert changes_break_feasibility(net, changes)

    def test_cost_change_does_not_break_feasibility(self):
        net, task, machine, _ = simple_network()
        changes = [ArcCostChange(task.node_id, machine.node_id, 50)]
        assert not changes_break_feasibility(net, changes)

    def test_capacity_reduction_below_flow_breaks_feasibility(self):
        net, task, machine, _ = simple_network()
        net.arc(task.node_id, machine.node_id).flow = 1
        changes = [ArcCapacityChange(task.node_id, machine.node_id, 0)]
        assert changes_break_feasibility(net, changes)

    def test_arc_removal_with_flow_breaks_feasibility(self):
        net, task, machine, _ = simple_network()
        net.arc(task.node_id, machine.node_id).flow = 1
        changes = [ArcRemoval(task.node_id, machine.node_id)]
        assert changes_break_feasibility(net, changes)

    def test_node_removal_breaks_feasibility(self):
        net, task, *_ = simple_network()
        assert changes_break_feasibility(net, [NodeRemoval(task.node_id)])


class TestChangeBatchDiff:
    """ChangeBatch.diff must produce a batch that replays old -> new."""

    def network_signature(self, net):
        return (
            {n.node_id: (n.node_type, n.supply) for n in net.nodes()},
            {a.key(): (a.capacity, a.cost) for a in net.arcs()},
        )

    def test_diff_replays_structural_changes(self):
        from repro.flow.changes import ChangeBatch

        old, task, machine, sink = simple_network()
        new = old.copy()
        new.remove_node(task.node_id)
        new.set_supply(sink.node_id, 0)
        added = new.add_node(NodeType.TASK, supply=1, name="T2")
        new.add_arc(added.node_id, machine.node_id, 2, 7)
        new.set_supply(sink.node_id, -1)
        new.set_arc_cost(machine.node_id, sink.node_id, 4)
        new.set_arc_capacity(machine.node_id, sink.node_id, 3)

        batch = ChangeBatch.diff(old, new)
        replayed = old.copy()
        batch.apply_to(replayed)
        assert self.network_signature(replayed) == self.network_signature(new)

    def test_diff_of_identical_networks_is_empty(self):
        from repro.flow.changes import ChangeBatch

        old, *_ = simple_network()
        batch = ChangeBatch.diff(old, old.copy())
        assert len(batch) == 0
        assert batch  # an empty batch is still a meaningful "nothing changed"

    def test_diff_records_revisions(self):
        from repro.flow.changes import ChangeBatch

        old, *_ = simple_network()
        new = old.copy()
        old.revision = 4
        new.revision = 5
        batch = ChangeBatch.diff(old, new)
        assert batch.base_revision == 4
        assert batch.target_revision == 5

    def test_diff_ignores_flow_values(self):
        from repro.flow.changes import ChangeBatch

        old, task, machine, _ = simple_network()
        new = old.copy()
        new.arc(task.node_id, machine.node_id).flow = 1
        assert len(ChangeBatch.diff(old, new)) == 0


class TestChangeBatchBuilder:
    """The builder applies mutations and emits the equivalent batch directly."""

    def _replay_matches(self, before, builder_network, batch):
        replayed = before.copy()
        batch.apply_to(replayed)
        assert replayed.structurally_equal(builder_network) == []

    def test_mutations_round_trip_through_the_emitted_batch(self):
        from repro.flow.changes import ChangeBatchBuilder

        net, task, machine, sink = simple_network()
        before = net.copy()
        builder = ChangeBatchBuilder(net, base_revision=1)

        other = builder.add_node(NodeType.TASK, supply=1, name="T2")
        builder.add_arc(other.node_id, machine.node_id, 1, 7)
        builder.set_supply(sink.node_id, -2)
        builder.set_arc_cost(task.node_id, machine.node_id, 9)
        builder.set_arc_capacity(machine.node_id, sink.node_id, 2)

        batch = builder.finish(target_revision=2)
        assert batch.base_revision == 1 and batch.target_revision == 2
        self._replay_matches(before, net, batch)

    def test_node_removal_records_incident_arc_removals_first(self):
        from repro.flow.changes import ChangeBatchBuilder

        net, task, machine, sink = simple_network()
        before = net.copy()
        builder = ChangeBatchBuilder(net, base_revision=1)
        builder.set_supply(sink.node_id, 0)
        builder.remove_node(task.node_id)
        batch = builder.finish(target_revision=2)

        kinds = [type(c).__name__ for c in batch]
        assert kinds.index("ArcRemoval") < kinds.index("NodeRemoval")
        self._replay_matches(before, net, batch)

    def test_same_round_add_and_remove_cancels(self):
        from repro.flow.changes import ChangeBatchBuilder

        net, task, machine, sink = simple_network()
        before = net.copy()
        builder = ChangeBatchBuilder(net, base_revision=1)
        ephemeral = builder.add_node(NodeType.OTHER, name="tmp")
        builder.add_arc(machine.node_id, ephemeral.node_id, 1, 0)
        builder.remove_arc(machine.node_id, ephemeral.node_id)
        builder.remove_node(ephemeral.node_id)
        batch = builder.finish(target_revision=2)
        assert len(batch) == 0
        self._replay_matches(before, net, batch)

    def test_patch_back_to_original_value_is_dropped(self):
        from repro.flow.changes import ChangeBatchBuilder

        net, task, machine, _ = simple_network()
        builder = ChangeBatchBuilder(net, base_revision=1)
        builder.set_arc_cost(task.node_id, machine.node_id, 11)
        builder.set_arc_cost(task.node_id, machine.node_id, 3)  # original
        batch = builder.finish(target_revision=2)
        assert len(batch) == 0

    def test_supply_patch_folds_into_same_round_node_addition(self):
        from repro.flow.changes import ChangeBatchBuilder

        net, _, _, _ = simple_network()
        builder = ChangeBatchBuilder(net, base_revision=1)
        node = builder.add_node(NodeType.TASK, supply=1, name="T9")
        builder.set_supply(node.node_id, 3)
        batch = builder.finish(target_revision=2)
        additions = [c for c in batch if isinstance(c, NodeAddition)]
        assert len(additions) == 1 and additions[0].supply == 3
        assert not [c for c in batch if isinstance(c, SupplyChange)]

    def test_prune_candidates_track_removed_arc_endpoints(self):
        from repro.flow.changes import ChangeBatchBuilder

        net, task, machine, sink = simple_network()
        builder = ChangeBatchBuilder(net, base_revision=1)
        builder.remove_arc(machine.node_id, sink.node_id)
        assert machine.node_id in builder.prune_candidates
        assert sink.node_id in builder.prune_candidates
