"""Unit tests for flow feasibility and optimality checkers."""

import pytest

from repro.flow.graph import FlowNetwork, NodeType
from repro.flow.validation import (
    assert_optimal,
    check_complementary_slackness,
    check_epsilon_optimality,
    check_feasibility,
    check_reduced_cost_optimality,
    flow_cost,
    has_negative_cycle,
    is_feasible,
)


def diamond_network():
    """Task with a cheap and an expensive route to the sink."""
    net = FlowNetwork()
    task = net.add_node(NodeType.TASK, supply=1)
    cheap = net.add_node(NodeType.MACHINE, name="cheap")
    costly = net.add_node(NodeType.MACHINE, name="costly")
    sink = net.add_node(NodeType.SINK, supply=-1)
    net.add_arc(task.node_id, cheap.node_id, 1, 1)
    net.add_arc(task.node_id, costly.node_id, 1, 10)
    net.add_arc(cheap.node_id, sink.node_id, 1, 0)
    net.add_arc(costly.node_id, sink.node_id, 1, 0)
    return net, task, cheap, costly, sink


class TestFeasibility:
    def test_zero_flow_on_balanced_graph_is_infeasible(self):
        net, *_ = diamond_network()
        problems = check_feasibility(net)
        # Supply at the task and demand at the sink are not routed.
        assert len(problems) == 2
        assert not is_feasible(net)

    def test_valid_flow_is_feasible(self):
        net, task, cheap, _, sink = diamond_network()
        net.arc(task.node_id, cheap.node_id).flow = 1
        net.arc(cheap.node_id, sink.node_id).flow = 1
        assert is_feasible(net)
        assert flow_cost(net) == 1

    def test_capacity_violation_detected(self):
        net, task, cheap, _, sink = diamond_network()
        net.arc(task.node_id, cheap.node_id).flow = 2
        net.arc(cheap.node_id, sink.node_id).flow = 2
        problems = check_feasibility(net)
        assert any("exceeds capacity" in p for p in problems)

    def test_negative_flow_detected(self):
        net, task, cheap, _, _ = diamond_network()
        net.arc(task.node_id, cheap.node_id).flow = -1
        problems = check_feasibility(net)
        assert any("negative flow" in p for p in problems)

    def test_mass_balance_violation_detected(self):
        net, task, cheap, _, _ = diamond_network()
        net.arc(task.node_id, cheap.node_id).flow = 1
        problems = check_feasibility(net)
        assert any("mass balance" in p for p in problems)


class TestOptimalityConditions:
    def test_optimal_flow_passes_all_checks(self):
        net, task, cheap, costly, sink = diamond_network()
        net.arc(task.node_id, cheap.node_id).flow = 1
        net.arc(cheap.node_id, sink.node_id).flow = 1
        potentials = {task.node_id: 1, cheap.node_id: 0, costly.node_id: 0, sink.node_id: 0}
        assert check_reduced_cost_optimality(net, potentials) == []
        assert check_epsilon_optimality(net, potentials, epsilon=0) == []
        assert not has_negative_cycle(net)
        assert_optimal(net, potentials)

    def test_suboptimal_flow_fails_negative_cycle_check(self):
        net, task, cheap, costly, sink = diamond_network()
        # Route through the expensive machine: residual cycle via the cheap
        # one has negative cost.
        net.arc(task.node_id, costly.node_id).flow = 1
        net.arc(costly.node_id, sink.node_id).flow = 1
        assert has_negative_cycle(net)
        with pytest.raises(AssertionError):
            assert_optimal(net)

    def test_reduced_cost_violation_detected(self):
        net, task, cheap, costly, sink = diamond_network()
        net.arc(task.node_id, costly.node_id).flow = 1
        net.arc(costly.node_id, sink.node_id).flow = 1
        potentials = {n.node_id: 0 for n in net.nodes()}
        problems = check_reduced_cost_optimality(net, potentials)
        assert problems  # the unsaturated cheap arc plus residual back-arcs

    def test_epsilon_optimality_is_weaker_than_reduced_cost(self):
        net, task, cheap, costly, sink = diamond_network()
        net.arc(task.node_id, costly.node_id).flow = 1
        net.arc(costly.node_id, sink.node_id).flow = 1
        potentials = {n.node_id: 0 for n in net.nodes()}
        # The worst residual reduced cost is -10 (back-arc of the costly
        # route), so the flow is 10-optimal but not 5-optimal.
        assert check_epsilon_optimality(net, potentials, epsilon=10) == []
        assert check_epsilon_optimality(net, potentials, epsilon=5) != []

    def test_complementary_slackness(self):
        net, task, cheap, costly, sink = diamond_network()
        net.arc(task.node_id, cheap.node_id).flow = 1
        net.arc(cheap.node_id, sink.node_id).flow = 1
        # With these potentials the cheap arc has negative reduced cost and
        # is saturated, the costly arc has positive reduced cost and is idle.
        potentials = {task.node_id: 5, cheap.node_id: 0, costly.node_id: 0, sink.node_id: 0}
        assert check_complementary_slackness(net, potentials) == []
        # Removing the flow breaks the "saturate negative arcs" half.
        net.clear_flow()
        assert check_complementary_slackness(net, potentials) != []

    def test_assert_optimal_rejects_infeasible_flow(self):
        net, *_ = diamond_network()
        with pytest.raises(AssertionError, match="infeasible"):
            assert_optimal(net)

    def test_empty_network_has_no_negative_cycle(self):
        assert not has_negative_cycle(FlowNetwork())
