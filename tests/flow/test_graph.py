"""Unit tests for the flow-network data structure."""

import pytest

from repro.flow.graph import Arc, FlowNetwork, Node, NodeType


class TestNodeManagement:
    def test_add_node_allocates_sequential_ids(self):
        net = FlowNetwork()
        first = net.add_node(NodeType.TASK, supply=1)
        second = net.add_node(NodeType.MACHINE)
        assert first.node_id == 0
        assert second.node_id == 1
        assert net.num_nodes == 2

    def test_add_node_with_explicit_id(self):
        net = FlowNetwork()
        node = net.add_node(NodeType.SINK, node_id=42)
        assert node.node_id == 42
        assert net.has_node(42)
        # The allocator continues past the explicit id.
        assert net.add_node(NodeType.TASK).node_id == 43

    def test_add_duplicate_node_id_rejected(self):
        net = FlowNetwork()
        net.add_node(NodeType.TASK, node_id=1)
        with pytest.raises(ValueError):
            net.add_node(NodeType.TASK, node_id=1)

    def test_remove_node_removes_incident_arcs(self):
        net = FlowNetwork()
        a = net.add_node(NodeType.TASK, supply=1)
        b = net.add_node(NodeType.MACHINE)
        c = net.add_node(NodeType.SINK, supply=-1)
        net.add_arc(a.node_id, b.node_id, 1, 5)
        net.add_arc(b.node_id, c.node_id, 1, 0)
        net.remove_node(b.node_id)
        assert net.num_arcs == 0
        assert not net.has_node(b.node_id)

    def test_remove_missing_node_raises(self):
        net = FlowNetwork()
        with pytest.raises(KeyError):
            net.remove_node(7)

    def test_nodes_of_type(self):
        net = FlowNetwork()
        net.add_node(NodeType.TASK, supply=1)
        net.add_node(NodeType.TASK, supply=1)
        net.add_node(NodeType.MACHINE)
        assert len(net.nodes_of_type(NodeType.TASK)) == 2
        assert len(net.nodes_of_type(NodeType.MACHINE)) == 1
        assert net.nodes_of_type(NodeType.SINK) == []

    def test_set_supply(self):
        net = FlowNetwork()
        node = net.add_node(NodeType.TASK, supply=1)
        net.set_supply(node.node_id, 3)
        assert net.node(node.node_id).supply == 3


class TestArcManagement:
    def _two_nodes(self):
        net = FlowNetwork()
        a = net.add_node(NodeType.TASK, supply=1)
        b = net.add_node(NodeType.SINK, supply=-1)
        return net, a, b

    def test_add_arc(self):
        net, a, b = self._two_nodes()
        arc = net.add_arc(a.node_id, b.node_id, capacity=3, cost=7)
        assert arc.capacity == 3
        assert arc.cost == 7
        assert arc.flow == 0
        assert arc.residual_capacity == 3
        assert net.has_arc(a.node_id, b.node_id)
        assert net.num_arcs == 1

    def test_add_arc_missing_endpoint_rejected(self):
        net, a, _ = self._two_nodes()
        with pytest.raises(KeyError):
            net.add_arc(a.node_id, 99, 1, 1)

    def test_add_duplicate_arc_rejected(self):
        net, a, b = self._two_nodes()
        net.add_arc(a.node_id, b.node_id, 1, 1)
        with pytest.raises(ValueError):
            net.add_arc(a.node_id, b.node_id, 2, 2)

    def test_negative_capacity_rejected(self):
        net, a, b = self._two_nodes()
        with pytest.raises(ValueError):
            net.add_arc(a.node_id, b.node_id, -1, 0)

    def test_remove_arc(self):
        net, a, b = self._two_nodes()
        net.add_arc(a.node_id, b.node_id, 1, 1)
        net.remove_arc(a.node_id, b.node_id)
        assert not net.has_arc(a.node_id, b.node_id)
        assert net.outgoing(a.node_id) == []
        assert net.incoming(b.node_id) == []

    def test_update_capacity_and_cost(self):
        net, a, b = self._two_nodes()
        net.add_arc(a.node_id, b.node_id, 1, 1)
        net.set_arc_capacity(a.node_id, b.node_id, 5)
        net.set_arc_cost(a.node_id, b.node_id, 9)
        arc = net.arc(a.node_id, b.node_id)
        assert arc.capacity == 5
        assert arc.cost == 9

    def test_set_negative_capacity_rejected(self):
        net, a, b = self._two_nodes()
        net.add_arc(a.node_id, b.node_id, 1, 1)
        with pytest.raises(ValueError):
            net.set_arc_capacity(a.node_id, b.node_id, -2)

    def test_adjacency_lists(self):
        net = FlowNetwork()
        a = net.add_node(NodeType.TASK, supply=1)
        b = net.add_node(NodeType.MACHINE)
        c = net.add_node(NodeType.SINK, supply=-1)
        ab = net.add_arc(a.node_id, b.node_id, 1, 1)
        bc = net.add_arc(b.node_id, c.node_id, 1, 0)
        assert net.outgoing(a.node_id) == [ab]
        assert net.incoming(b.node_id) == [ab]
        assert net.outgoing(b.node_id) == [bc]
        assert net.incoming(c.node_id) == [bc]


class TestViewsAndProperties:
    def test_supply_queries(self):
        net = FlowNetwork()
        t = net.add_node(NodeType.TASK, supply=2)
        s = net.add_node(NodeType.SINK, supply=-2)
        net.add_node(NodeType.MACHINE)
        assert net.total_supply() == 0
        assert [n.node_id for n in net.source_nodes()] == [t.node_id]
        assert [n.node_id for n in net.sink_nodes()] == [s.node_id]

    def test_max_cost_and_capacity(self):
        net = FlowNetwork()
        a = net.add_node(NodeType.TASK, supply=1)
        b = net.add_node(NodeType.SINK, supply=-1)
        net.add_arc(a.node_id, b.node_id, 4, -7)
        assert net.max_arc_cost() == 7
        assert net.max_arc_capacity() == 4

    def test_max_cost_empty_network(self):
        net = FlowNetwork()
        assert net.max_arc_cost() == 0
        assert net.max_arc_capacity() == 0

    def test_flow_assignment_helpers(self):
        net = FlowNetwork()
        a = net.add_node(NodeType.TASK, supply=1)
        b = net.add_node(NodeType.SINK, supply=-1)
        net.add_arc(a.node_id, b.node_id, 2, 1)
        net.set_flows({(a.node_id, b.node_id): 2})
        assert net.flows() == {(a.node_id, b.node_id): 2}
        net.clear_flow()
        assert net.flows() == {}

    def test_copy_is_deep(self):
        net = FlowNetwork()
        a = net.add_node(NodeType.TASK, supply=1, name="t")
        b = net.add_node(NodeType.SINK, supply=-1)
        net.add_arc(a.node_id, b.node_id, 2, 3)
        net.arc(a.node_id, b.node_id).flow = 1
        clone = net.copy()
        clone.arc(a.node_id, b.node_id).flow = 2
        clone.node(a.node_id).supply = 5
        assert net.arc(a.node_id, b.node_id).flow == 1
        assert net.node(a.node_id).supply == 1
        assert clone.num_nodes == net.num_nodes
        assert clone.num_arcs == net.num_arcs

    def test_validate_structure_detects_imbalance(self):
        net = FlowNetwork()
        net.add_node(NodeType.TASK, supply=1)
        problems = net.validate_structure()
        assert any("total supply" in p for p in problems)

    def test_validate_structure_ok(self):
        net = FlowNetwork()
        a = net.add_node(NodeType.TASK, supply=1)
        b = net.add_node(NodeType.SINK, supply=-1)
        net.add_arc(a.node_id, b.node_id, 1, 0)
        assert net.validate_structure() == []

    def test_to_networkx_round_trip(self):
        import networkx as nx

        net = FlowNetwork()
        a = net.add_node(NodeType.TASK, supply=1)
        b = net.add_node(NodeType.SINK, supply=-1)
        net.add_arc(a.node_id, b.node_id, 1, 5)
        graph = net.to_networkx()
        assert graph.nodes[a.node_id]["demand"] == -1
        assert graph.nodes[b.node_id]["demand"] == 1
        assert graph[a.node_id][b.node_id]["capacity"] == 1
        assert graph[a.node_id][b.node_id]["weight"] == 5
        flow = nx.min_cost_flow(graph)
        assert flow[a.node_id][b.node_id] == 1
