"""Tests for DIMACS serialization and the incremental-change text format."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.flow.changes import (
    ArcAddition,
    ArcCapacityChange,
    ArcCostChange,
    ArcRemoval,
    NodeAddition,
    NodeRemoval,
    SupplyChange,
    apply_changes,
)
from repro.flow.dimacs import (
    DimacsFormatError,
    read_dimacs,
    read_incremental,
    write_dimacs,
    write_incremental,
)
from repro.flow.graph import FlowNetwork, NodeType

from tests.conftest import build_scheduling_network, reference_min_cost


def networks_equal(a: FlowNetwork, b: FlowNetwork) -> bool:
    """Structural equality on node ids, supplies, types, and arcs."""
    if set(a.node_ids()) != set(b.node_ids()):
        return False
    for node in a.nodes():
        other = b.node(node.node_id)
        if node.supply != other.supply or node.node_type is not other.node_type:
            return False
    arcs_a = {arc.key(): (arc.capacity, arc.cost) for arc in a.arcs()}
    arcs_b = {arc.key(): (arc.capacity, arc.cost) for arc in b.arcs()}
    return arcs_a == arcs_b


class TestFullGraphRoundTrip:
    def test_round_trip_preserves_structure(self):
        network = build_scheduling_network(seed=3)
        restored = read_dimacs(write_dimacs(network))
        assert networks_equal(network, restored)

    def test_round_trip_preserves_node_types(self):
        network = build_scheduling_network(seed=1)
        restored = read_dimacs(write_dimacs(network))
        for node in network.nodes():
            assert restored.node(node.node_id).node_type is node.node_type

    def test_round_trip_preserves_optimal_cost(self):
        network = build_scheduling_network(seed=7)
        restored = read_dimacs(write_dimacs(network))
        assert reference_min_cost(network) == reference_min_cost(restored)

    def test_node_types_can_be_omitted(self):
        network = build_scheduling_network(seed=5)
        text = write_dimacs(network, include_node_types=False)
        restored = read_dimacs(text)
        assert all(node.node_type is NodeType.OTHER for node in restored.nodes())
        assert networks_equal_ignoring_types(network, restored)

    def test_document_contains_problem_line(self):
        network = build_scheduling_network(seed=2)
        first_data_line = [
            line for line in write_dimacs(network).splitlines() if not line.startswith("c")
        ][0]
        assert first_data_line == f"p min {network.num_nodes} {network.num_arcs}"

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_property_round_trip_any_scheduling_network(self, seed):
        network = build_scheduling_network(seed=seed, num_tasks=5, num_machines=3)
        assert networks_equal(network, read_dimacs(write_dimacs(network)))


def networks_equal_ignoring_types(a: FlowNetwork, b: FlowNetwork) -> bool:
    arcs_a = {arc.key(): (arc.capacity, arc.cost) for arc in a.arcs()}
    arcs_b = {arc.key(): (arc.capacity, arc.cost) for arc in b.arcs()}
    supplies_a = {n.node_id: n.supply for n in a.nodes()}
    supplies_b = {n.node_id: n.supply for n in b.nodes()}
    return arcs_a == arcs_b and supplies_a == supplies_b


class TestDimacsParsing:
    def test_nodes_only_referenced_by_arcs_are_created(self):
        text = "p min 3 2\nn 0 2\nn 2 -2\na 0 1 0 2 5\na 1 2 0 2 5\n"
        network = read_dimacs(text)
        assert network.has_node(1)
        assert network.node(1).supply == 0

    def test_missing_problem_line_rejected(self):
        with pytest.raises(DimacsFormatError):
            read_dimacs("n 0 1\n")

    def test_malformed_problem_line_rejected(self):
        with pytest.raises(DimacsFormatError):
            read_dimacs("p max 3 2\n")

    def test_malformed_arc_line_rejected(self):
        with pytest.raises(DimacsFormatError):
            read_dimacs("p min 2 1\na 0 1 0 2\n")

    def test_non_integer_field_rejected(self):
        with pytest.raises(DimacsFormatError):
            read_dimacs("p min 2 1\na 0 one 0 2 5\n")

    def test_nonzero_lower_bound_rejected(self):
        with pytest.raises(DimacsFormatError):
            read_dimacs("p min 2 1\na 0 1 1 2 5\n")

    def test_arc_count_mismatch_rejected(self):
        with pytest.raises(DimacsFormatError):
            read_dimacs("p min 2 2\na 0 1 0 2 5\n")

    def test_unknown_line_kind_rejected(self):
        with pytest.raises(DimacsFormatError):
            read_dimacs("p min 1 0\nx nonsense\n")

    def test_comments_and_blank_lines_are_ignored(self):
        text = "c header\n\np min 2 1\nc another comment\nn 0 1\nn 1 -1\na 0 1 0 1 3\n"
        network = read_dimacs(text)
        assert network.num_nodes == 2
        assert network.num_arcs == 1


class TestIncrementalFormat:
    def changes(self):
        return [
            NodeAddition(node_type=NodeType.TASK, supply=1, node_id=10),
            ArcAddition(src=10, dst=1, capacity=1, cost=7),
            SupplyChange(node_id=0, delta=-1),
            ArcCapacityChange(src=2, dst=1, new_capacity=5),
            ArcCostChange(src=2, dst=1, new_cost=9),
            ArcRemoval(src=3, dst=1),
            NodeRemoval(node_id=4),
        ]

    def test_round_trip_preserves_change_sequence(self):
        text = write_incremental(self.changes())
        parsed = read_incremental(text)
        assert [type(c).__name__ for c in parsed] == [
            "NodeAddition",
            "ArcAddition",
            "SupplyChange",
            "ArcCapacityChange",
            "ArcCostChange",
            "ArcRemoval",
            "NodeRemoval",
        ]
        assert parsed[0].node_id == 10
        assert parsed[0].supply == 1
        assert parsed[0].node_type is NodeType.TASK
        assert parsed[2].delta == -1
        assert parsed[3].new_capacity == 5
        assert parsed[4].new_cost == 9

    def test_node_addition_arcs_become_arc_additions(self):
        change = NodeAddition(
            node_type=NodeType.TASK,
            supply=1,
            node_id=42,
            arcs_out=((1, 1, 3),),
            arcs_in=((2, 1, 4),),
        )
        parsed = read_incremental(write_incremental([change]))
        assert isinstance(parsed[0], NodeAddition)
        assert isinstance(parsed[1], ArcAddition)
        assert isinstance(parsed[2], ArcAddition)
        assert parsed[1].src == 42 and parsed[1].dst == 1
        assert parsed[2].src == 2 and parsed[2].dst == 42

    def test_applied_changes_match_direct_application(self):
        base = build_scheduling_network(seed=11)
        direct = base.copy()
        via_text = base.copy()

        task_node = [n for n in base.nodes() if n.node_type is NodeType.TASK][0]
        machine_node = [n for n in base.nodes() if n.node_type is NodeType.MACHINE][0]
        sink = [n for n in base.nodes() if n.node_type is NodeType.SINK][0]
        new_id = max(base.node_ids()) + 1
        changes = [
            NodeAddition(
                node_type=NodeType.TASK,
                supply=1,
                node_id=new_id,
                arcs_out=((machine_node.node_id, 1, 2),),
            ),
            SupplyChange(node_id=sink.node_id, delta=-1),
            ArcCostChange(
                src=machine_node.node_id, dst=sink.node_id, new_cost=3
            ),
        ]
        apply_changes(direct, changes)
        apply_changes(via_text, read_incremental(write_incremental(changes)))
        assert networks_equal(direct, via_text)
        _ = task_node  # referenced for clarity; the task node itself is unchanged

    def test_node_addition_without_id_cannot_be_serialized(self):
        with pytest.raises(ValueError):
            write_incremental([NodeAddition(node_type=NodeType.TASK, supply=1)])

    def test_empty_change_list_round_trips(self):
        assert write_incremental([]) == ""
        assert read_incremental("") == []

    def test_unknown_command_rejected(self):
        with pytest.raises(DimacsFormatError):
            read_incremental("d explode 1 2\n")

    def test_malformed_change_line_rejected(self):
        with pytest.raises(DimacsFormatError):
            read_incremental("q supply 1 2\n")
