"""Figure 11: incremental cost scaling vs solving from scratch.

The paper finds incremental cost scaling ~25 % faster than from-scratch cost
scaling under the Quincy policy and ~50 % faster under the load-spreading
policy.  The benchmark reproduces the comparison: solve a cluster snapshot,
apply a realistic batch of changes (some tasks finish, a new job arrives,
costs drift), and re-solve both ways.
"""

from __future__ import annotations

import random
import time

import pytest

from benchmarks.common import (
    add_pending_batch_job,
    bench_scale,
    build_cluster_state,
    build_policy_network,
)
from repro.analysis.reporting import format_table
from repro.core import GraphManager, QuincyPolicy
from repro.core.policies import LoadSpreadingPolicy
from repro.solvers import CostScalingSolver, IncrementalCostScalingSolver

MACHINES = 64 * bench_scale()


def evolve_state(state, manager, rounds_seed: int):
    """Apply one scheduling round's worth of cluster changes."""
    rng = random.Random(rounds_seed)
    running = state.running_tasks()
    for task in rng.sample(running, min(len(running) // 10 + 1, len(running))):
        state.complete_task(task.task_id, now=20.0)
    add_pending_batch_job(state, MACHINES // 4, seed=rounds_seed + 7,
                          job_id=800_000 + rounds_seed, submit_time=20.0)


def measure_policy(policy_factory, label):
    state = build_cluster_state(MACHINES, utilization=0.6, seed=11)
    add_pending_batch_job(state, MACHINES // 2, seed=12)
    manager = GraphManager(policy_factory())
    incremental = IncrementalCostScalingSolver()

    # Round 0 establishes the warm-start state.
    network = manager.update(state, now=10.0)
    incremental.solve(network)
    # Place the pending tasks somewhere so the next round has churn.
    for task in state.pending_tasks():
        for machine_id in state.topology.machines:
            if state.free_slots(machine_id) > 0:
                state.place_task(task.task_id, machine_id, now=10.0)
                break

    evolve_state(state, manager, rounds_seed=1)
    network = manager.update(state, now=20.0)

    start = time.perf_counter()
    CostScalingSolver().solve(network.copy())
    scratch_time = time.perf_counter() - start

    # The incremental solve consumes the manager-emitted change batch, so it
    # patches its persistent residual network instead of rebuilding it.
    start = time.perf_counter()
    incremental_result = incremental.solve(
        network.copy(), changes=manager.last_changes
    )
    incremental_time = time.perf_counter() - start
    assert incremental_result.statistics.warm_start
    assert incremental.delta_solves == 1 and incremental.delta_fallbacks == 0
    return label, scratch_time, incremental_time


def test_fig11_incremental_cost_scaling_beats_from_scratch(benchmark):
    """Regenerates Figure 11 (scaled down)."""
    rows = []
    speedups = {}
    for policy_factory, label in [
        (QuincyPolicy, "quincy"),
        (LoadSpreadingPolicy, "load_spreading"),
    ]:
        label, scratch, incremental = measure_policy(policy_factory, label)
        speedups[label] = scratch / max(incremental, 1e-9)
        rows.append([label, f"{scratch:.3f}", f"{incremental:.3f}",
                     f"{100 * (1 - incremental / scratch):.0f}%"])
    print()
    print(f"Figure 11: from-scratch vs incremental cost scaling ({MACHINES} machines)")
    print(format_table(
        ["policy", "from scratch [s]", "incremental [s]", "improvement"], rows
    ))

    # Incremental re-optimization patches the persistent residual from the
    # change batch; at benchmark scale the kernels run for single-digit
    # milliseconds per sample, so keep the per-policy floor noise-tolerant
    # (a GC pause can halve one sample) and assert the qualitative claim on
    # the best case: the delta path must win clearly for at least one
    # policy.  The delta_solves assertion above pins the mechanism.
    assert speedups["quincy"] > 0.8
    assert speedups["load_spreading"] > 0.8
    assert max(speedups.values()) > 1.5

    state = build_cluster_state(MACHINES, utilization=0.6, seed=31)
    add_pending_batch_job(state, MACHINES // 2, seed=32)
    _, network = build_policy_network(state, QuincyPolicy())
    solver = IncrementalCostScalingSolver()
    solver.solve(network.copy())
    # Steady-state kernel: an unchanged round expressed as an empty change
    # batch, served entirely by the persistent-residual delta path.
    from repro.flow.changes import ChangeBatch

    noop = ChangeBatch(
        base_revision=network.revision, target_revision=network.revision
    )
    benchmark(lambda: solver.solve(network.copy(), changes=noop))
    assert solver.delta_fallbacks == 0
