"""Trace-scale replay: the event engine at 1,000 machines / 10^5 tasks.

The paper's simulator replays the full Google trace (12,500 machines);
this benchmark pushes the reproduction's event engine to 1,000 machines
and 10^5 tasks through the *complete* ingestion path -- synthetic workload
serialized to a CSV trace, streamed back through
:func:`repro.simulation.ingest.read_trace`, and replayed job-by-job via
``submit_job_stream`` so the workload is never materialized -- and reports
**wall-clock seconds per simulated hour** plus engine throughput
(events/second).

The replay drives a queue-based baseline scheduler: the subject under test
is the event engine (queue discipline, streaming ingestion, O(1) pending
bookkeeping, apply-or-void accounting), not the pure-Python MCMF solver,
which cannot run 1,000-machine rounds in benchmark time (Figure 3 measures
solver scaling separately).  ``REPRO_BENCH_SCALE`` multiplies machines and
tasks for closer-to-paper runs.

The conservation law is asserted after the replay: even at 10^5 tasks no
recorded placement may go unaccounted.
"""

from __future__ import annotations

import time

from benchmarks.common import bench_scale, build_cluster_state
from repro.baselines import SparrowScheduler
from repro.simulation import (
    ClusterSimulator,
    GoogleTraceGenerator,
    SimulationConfig,
    TraceConfig,
    read_trace,
    verify_placement_conservation,
    write_jobs_csv,
)

MACHINES = 1_000 * bench_scale()
SLOTS_PER_MACHINE = 4
TARGET_TASKS = 100_000 * bench_scale()
TARGET_UTILIZATION = 0.6
MEAN_TASK_DURATION = 60.0
#: Batch scheduling rounds at 0.2 Hz (Firmament's batch step): per-event
#: scheduling of 10^5 tasks would measure the baseline scheduler's queue
#: scans, not the engine.
SCHEDULER_INTERVAL = 5.0


def trace_duration() -> float:
    """Virtual seconds needed for ~TARGET_TASKS arrivals (Little's law)."""
    arrival_rate = (
        MACHINES * SLOTS_PER_MACHINE * TARGET_UTILIZATION / MEAN_TASK_DURATION
    )
    return TARGET_TASKS / arrival_rate


def capped_stream(jobs, max_tasks):
    """Stop a job stream once ``max_tasks`` tasks have been yielded."""
    total = 0
    for job in jobs:
        yield job
        total += job.num_tasks
        if total >= max_tasks:
            return


def write_trace_csv(path) -> int:
    """Serialize the synthetic workload to a CSV trace; returns task rows."""
    config = TraceConfig(
        num_machines=MACHINES,
        slots_per_machine=SLOTS_PER_MACHINE,
        target_utilization=TARGET_UTILIZATION,
        duration=trace_duration(),
        mean_batch_task_duration=MEAN_TASK_DURATION,
        seed=101,
        service_job_fraction=0.05,
        constant_service_load=True,
    )
    generator = GoogleTraceGenerator(config)
    return write_jobs_csv(capped_stream(generator.iter_jobs(), TARGET_TASKS), path)


def replay(path):
    """Stream the CSV trace through a full replay; returns (result, wall_s)."""
    state = build_cluster_state(
        MACHINES, slots_per_machine=SLOTS_PER_MACHINE, machines_per_rack=40
    )
    scheduler = SparrowScheduler(per_task_decision_seconds=0.0005)
    simulator = ClusterSimulator(
        state,
        scheduler,
        SimulationConfig(
            max_time=trace_duration(),
            min_scheduler_interval=SCHEDULER_INTERVAL,
            drain=False,
        ),
    )
    simulator.submit_job_stream(read_trace(path))
    start = time.perf_counter()
    try:
        result = simulator.run()
    finally:
        simulator.close()
    return result, time.perf_counter() - start


def test_sim_scale_trace_replay(benchmark, tmp_path):
    """1k machines / 10^5 tasks through ingestion + event engine."""
    path = tmp_path / "trace.csv"
    rows = write_trace_csv(path)
    assert rows >= TARGET_TASKS * 0.9  # the arrival process is stochastic

    holder = {}

    def run():
        holder["result"], holder["wall"] = replay(path)

    benchmark.pedantic(run, rounds=1, iterations=1)
    result, wall = holder["result"], holder["wall"]

    tallies = verify_placement_conservation(result)
    simulated_hours = result.virtual_time / 3_600.0
    wall_per_hour = wall / max(simulated_hours, 1e-9)
    events_per_second = result.events_processed / max(wall, 1e-9)

    print()
    print(f"sim scale: {MACHINES} machines x {SLOTS_PER_MACHINE} slots, "
          f"{rows} trace tasks, {result.virtual_time:.0f} simulated seconds")
    print(f"  tasks placed:            {result.metrics.tasks_placed}")
    print(f"  tasks completed:         {result.metrics.tasks_completed}")
    print(f"  scheduler rounds:        {len(result.schedule_records)} "
          f"(voided {result.rounds_voided})")
    print(f"  placements applied:      {result.placements_applied} "
          f"(drift-dropped {result.placements_dropped})")
    print(f"  events processed:        {result.events_processed}")
    print(f"  replay wall clock:       {wall:.1f} s")
    print(f"  wall clock/simulated h:  {wall_per_hour:.1f} s/h")
    print(f"  engine throughput:       {events_per_second:,.0f} events/s")

    # The engine kept up: the vast majority of the trace was placed and
    # completed inside the window, and the books balance exactly.
    assert result.metrics.tasks_placed >= rows * 0.8
    assert tallies["recorded"] == (
        tallies["applied"] + tallies["dropped"] + tallies["voided"]
    )
    assert result.events_processed > rows  # submits + completions + rounds
