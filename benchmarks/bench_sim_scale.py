"""Trace-scale replay: the event engine at 1,000 machines / 10^5 tasks.

The paper's simulator replays the full Google trace (12,500 machines);
this benchmark pushes the reproduction's event engine to 1,000 machines
and 10^5 tasks through the *complete* ingestion path -- synthetic workload
serialized to a CSV trace, streamed back through
:func:`repro.simulation.ingest.read_trace`, and replayed job-by-job via
``submit_job_stream`` so the workload is never materialized -- and reports
**wall-clock seconds per simulated hour** plus engine throughput
(events/second).

The replay drives a queue-based baseline scheduler: the subject under test
is the event engine (queue discipline, streaming ingestion, O(1) pending
bookkeeping, apply-or-void accounting), not the pure-Python MCMF solver,
which cannot run 1,000-machine rounds in benchmark time (Figure 3 measures
solver scaling separately).  ``REPRO_BENCH_SCALE`` multiplies machines and
tasks for closer-to-paper runs.

The conservation law is asserted after the replay: even at 10^5 tasks no
recorded placement may go unaccounted.
"""

from __future__ import annotations

import time

from benchmarks.common import bench_scale, build_cluster_state
from repro.baselines import SparrowScheduler
from repro.core import ShardedScheduler
from repro.core.policies import QuincyPolicy
from repro.simulation import (
    ClusterSimulator,
    GoogleTraceGenerator,
    SimulationConfig,
    TraceConfig,
    read_trace,
    verify_placement_conservation,
    write_jobs_csv,
)

MACHINES = 1_000 * bench_scale()
SLOTS_PER_MACHINE = 4
TARGET_TASKS = 100_000 * bench_scale()
TARGET_UTILIZATION = 0.6
MEAN_TASK_DURATION = 60.0
#: Batch scheduling rounds at 0.2 Hz (Firmament's batch step): per-event
#: scheduling of 10^5 tasks would measure the baseline scheduler's queue
#: scans, not the engine.
SCHEDULER_INTERVAL = 5.0

#: The sharded flow replay (PR 8): the monolithic MCMF solver cannot run
#: 1,000-machine rounds in benchmark time, but 8 rack-granular cells cut
#: each round to 1/8-size networks solved incrementally, so the flow-based
#: policy completes the same 1k-machine replay path end to end.  The full
#: trace volume (10^5 tasks, 488 rounds) completes in ~5.3 minutes wall --
#: measured, all 100,007 tasks placed, conservation exact -- which is too
#: heavy for the default suite, so the benchmark replays a 1/5 slice of
#: the same trace and keeps the full run reachable via REPRO_BENCH_SCALE.
SHARDED_CELLS = 8
SHARDED_TASKS = 20_000 * bench_scale()


def trace_duration() -> float:
    """Virtual seconds needed for ~TARGET_TASKS arrivals (Little's law)."""
    arrival_rate = (
        MACHINES * SLOTS_PER_MACHINE * TARGET_UTILIZATION / MEAN_TASK_DURATION
    )
    return TARGET_TASKS / arrival_rate


def capped_stream(jobs, max_tasks):
    """Stop a job stream once ``max_tasks`` tasks have been yielded."""
    total = 0
    for job in jobs:
        yield job
        total += job.num_tasks
        if total >= max_tasks:
            return


def write_trace_csv(path) -> int:
    """Serialize the synthetic workload to a CSV trace; returns task rows."""
    config = TraceConfig(
        num_machines=MACHINES,
        slots_per_machine=SLOTS_PER_MACHINE,
        target_utilization=TARGET_UTILIZATION,
        duration=trace_duration(),
        mean_batch_task_duration=MEAN_TASK_DURATION,
        seed=101,
        service_job_fraction=0.05,
        constant_service_load=True,
    )
    generator = GoogleTraceGenerator(config)
    return write_jobs_csv(capped_stream(generator.iter_jobs(), TARGET_TASKS), path)


def replay(path):
    """Stream the CSV trace through a full replay; returns (result, wall_s)."""
    state = build_cluster_state(
        MACHINES, slots_per_machine=SLOTS_PER_MACHINE, machines_per_rack=40
    )
    scheduler = SparrowScheduler(per_task_decision_seconds=0.0005)
    simulator = ClusterSimulator(
        state,
        scheduler,
        SimulationConfig(
            max_time=trace_duration(),
            min_scheduler_interval=SCHEDULER_INTERVAL,
            drain=False,
        ),
    )
    simulator.submit_job_stream(read_trace(path))
    start = time.perf_counter()
    try:
        result = simulator.run()
    finally:
        simulator.close()
    return result, time.perf_counter() - start


def test_sim_scale_trace_replay(benchmark, tmp_path):
    """1k machines / 10^5 tasks through ingestion + event engine."""
    path = tmp_path / "trace.csv"
    rows = write_trace_csv(path)
    assert rows >= TARGET_TASKS * 0.9  # the arrival process is stochastic

    holder = {}

    def run():
        holder["result"], holder["wall"] = replay(path)

    benchmark.pedantic(run, rounds=1, iterations=1)
    result, wall = holder["result"], holder["wall"]

    tallies = verify_placement_conservation(result)
    simulated_hours = result.virtual_time / 3_600.0
    wall_per_hour = wall / max(simulated_hours, 1e-9)
    events_per_second = result.events_processed / max(wall, 1e-9)

    print()
    print(f"sim scale: {MACHINES} machines x {SLOTS_PER_MACHINE} slots, "
          f"{rows} trace tasks, {result.virtual_time:.0f} simulated seconds")
    print(f"  tasks placed:            {result.metrics.tasks_placed}")
    print(f"  tasks completed:         {result.metrics.tasks_completed}")
    print(f"  scheduler rounds:        {len(result.schedule_records)} "
          f"(voided {result.rounds_voided})")
    print(f"  placements applied:      {result.placements_applied} "
          f"(drift-dropped {result.placements_dropped})")
    print(f"  events processed:        {result.events_processed}")
    print(f"  replay wall clock:       {wall:.1f} s")
    print(f"  wall clock/simulated h:  {wall_per_hour:.1f} s/h")
    print(f"  engine throughput:       {events_per_second:,.0f} events/s")

    # The engine kept up: the vast majority of the trace was placed and
    # completed inside the window, and the books balance exactly.
    assert result.metrics.tasks_placed >= rows * 0.8
    assert tallies["recorded"] == (
        tallies["applied"] + tallies["dropped"] + tallies["voided"]
    )
    assert result.events_processed > rows  # submits + completions + rounds


def sharded_duration() -> float:
    """Virtual seconds for ~SHARDED_TASKS arrivals at the same rates."""
    return trace_duration() * SHARDED_TASKS / TARGET_TASKS


def write_sharded_trace_csv(path) -> int:
    """Serialize the sharded replay's trace slice; returns task rows."""
    config = TraceConfig(
        num_machines=MACHINES,
        slots_per_machine=SLOTS_PER_MACHINE,
        target_utilization=TARGET_UTILIZATION,
        duration=sharded_duration(),
        mean_batch_task_duration=MEAN_TASK_DURATION,
        seed=101,
        service_job_fraction=0.05,
        constant_service_load=True,
    )
    generator = GoogleTraceGenerator(config)
    return write_jobs_csv(
        capped_stream(generator.iter_jobs(), SHARDED_TASKS), path
    )


def test_sim_scale_sharded_flow_replay(benchmark, tmp_path):
    """The flow-based policy completes the 1k-machine replay via sharding.

    Same ingestion path as the queue-based replay above, but the rounds
    are solved by :class:`ShardedScheduler` -- per-cell incremental MCMF
    solves over rack-granular cells -- which is what makes a flow-based
    policy feasible at this cluster size at all.
    """
    path = tmp_path / "sharded_trace.csv"
    rows = write_sharded_trace_csv(path)
    assert rows >= SHARDED_TASKS * 0.9  # the arrival process is stochastic

    holder = {}

    def run():
        state = build_cluster_state(
            MACHINES, slots_per_machine=SLOTS_PER_MACHINE, machines_per_rack=40
        )
        scheduler = ShardedScheduler(QuincyPolicy, num_cells=SHARDED_CELLS)
        simulator = ClusterSimulator(
            state,
            scheduler,
            SimulationConfig(
                max_time=sharded_duration(),
                min_scheduler_interval=SCHEDULER_INTERVAL,
                drain=False,
            ),
        )
        simulator.submit_job_stream(read_trace(path))
        start = time.perf_counter()
        try:
            holder["result"] = simulator.run()
        finally:
            simulator.close()
        holder["wall"] = time.perf_counter() - start

    benchmark.pedantic(run, rounds=1, iterations=1)
    result, wall = holder["result"], holder["wall"]

    tallies = verify_placement_conservation(result)
    rounds = [r for r in result.schedule_records if r.num_cells]
    stragglers = {r.straggler_cell for r in rounds}

    print()
    print(f"sharded flow replay: {MACHINES} machines, {SHARDED_CELLS} cells, "
          f"{rows} trace tasks, {result.virtual_time:.0f} simulated seconds")
    print(f"  tasks placed:       {result.metrics.tasks_placed}")
    print(f"  scheduler rounds:   {len(result.schedule_records)}")
    print(f"  straggler cells:    {sorted(stragglers)}")
    print(f"  replay wall clock:  {wall:.1f} s")

    assert result.metrics.tasks_placed >= rows * 0.8
    assert tallies["recorded"] == (
        tallies["applied"] + tallies["dropped"] + tallies["voided"]
    )
    # The sharded observability chain is threaded through the records.
    # Idle cells are skipped per round, so cells_solved ranges over
    # [1, SHARDED_CELLS]; sustained churn must hit the full fan-out often.
    assert rounds and all(1 <= r.num_cells <= SHARDED_CELLS for r in rounds)
    assert max(r.num_cells for r in rounds) == SHARDED_CELLS
