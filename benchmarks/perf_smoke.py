"""Perf smoke job: guard the incremental hot paths against regression.

Runs two kernels at ``REPRO_BENCH_SCALE=1`` and compares against the
committed baseline in ``perf_baseline.json``:

* the Figure-11 kernel -- one realistic scheduling round solved from
  scratch and via the change-batch delta path -- guarding the incremental
  *solver*,
* the graph-update kernel -- one low-churn round applied through the
  dirty-set-driven incremental graph manager and through the old
  rebuild+diff path -- guarding incremental *graph construction*, and
* the price-refine kernel -- the potential-derivation step of one
  post-seed warm-rebuild round, run with the SPFA sweep and with the
  seeded Dijkstra (incremental) refine -- guarding the *price refine*
  variant selection (the hottest step of warm rebuilds),
* the relaxation kernel -- one uncontested fig07-style round solved by a
  cold relaxation solver (fresh residual build) and by a persistent one
  whose retained residual is patched from the round's change batch --
  guarding the relaxation fast path (typed hot loops + residual reuse),
  and
* the worker-resync kernel -- one chain-broken worker round served by the
  full-snapshot path (DIMACS serialize + reparse + cold solve) and by the
  resync path (composed incremental payload + shadow patch + persistent
  solve) -- guarding the parallel executor's delta transport, and
* the sim-replay kernel -- a small ingested-trace replay (CSV ->
  ``read_trace`` -> streamed event-driven simulation) -- guarding the
  event engine and ingestion path; normalized against the from-scratch
  solve like every other kernel (``bench_sim_scale.py`` is the full-size
  1k-machine/10^5-task version of the same path), and
* the sharded-round kernel -- low-churn steady-state scheduling rounds at
  256 machines solved by the monolithic incremental scheduler and by the
  4-cell sharded scheduler (per-round latency charged as the straggler
  cell's solve) -- guarding the sharding layer's round-latency win
  (``bench_shard_scaling.py`` is the full grid version), and
* the service-round kernel -- a small closed-loop burst against an
  in-process :class:`SchedulerService` over loopback TCP (submit -> coalesced
  admission -> round -> placement stream -> drain) -- guarding the
  scheduler-as-a-service front end; normalized against the from-scratch
  solve like the sim-replay kernel (``bench_service_slo.py`` is the
  full-size subprocess version of the same path), and
* the durability-on service-round kernel -- the identical burst with a
  fsync'd write-ahead admission log and snapshots enabled -- guarding the
  crash-safety layer's overhead (``bench_durability.py`` measures its raw
  append/replay rates).

The gates are host-normalized: the from-scratch solve (resp. the full
rebuild) acts as the calibration workload, so requiring each measured
speedup to stay above half the baseline's is exactly a ">2x regression,
after correcting for host speed" check -- absolute wall times vary 2-3x
across CI hosts and are only printed for context.

Usage::

    PYTHONPATH=src python benchmarks/perf_smoke.py            # check
    PYTHONPATH=src python benchmarks/perf_smoke.py --update   # re-baseline

Exits non-zero on regression.
"""

from __future__ import annotations

import json
import statistics
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from benchmarks.common import add_pending_batch_job, build_cluster_state  # noqa: E402
from repro.core import GraphManager, QuincyPolicy  # noqa: E402
from repro.solvers import (  # noqa: E402
    CostScalingSolver,
    IncrementalCostScalingSolver,
    RelaxationSolver,
)

BASELINE_PATH = Path(__file__).resolve().parent / "perf_baseline.json"
MACHINES = 64
#: The sharded-round kernel needs a cluster large enough that the
#: monolithic solve visibly dominates the per-cell solves (ISSUE PR 8:
#: >= 256 machines, 4 cells).
SHARD_MACHINES = 256
SHARD_CELLS = 4
RUNS = 5
#: Fail when the host-normalized incremental solve regresses by more than
#: 2x, i.e. the measured speedup falls below half the baseline's.
MAX_SPEEDUP_LOSS = 0.5


def measure_round() -> tuple:
    """One Figure-11 round: returns (scratch_seconds, incremental_seconds)."""
    import random

    state = build_cluster_state(MACHINES, utilization=0.6, seed=11)
    add_pending_batch_job(state, MACHINES // 2, seed=12)
    manager = GraphManager(QuincyPolicy())
    incremental = IncrementalCostScalingSolver()

    network = manager.update(state, now=10.0)
    incremental.solve(network)
    for task in state.pending_tasks():
        for machine_id in state.topology.machines:
            if state.free_slots(machine_id) > 0:
                state.place_task(task.task_id, machine_id, now=10.0)
                break
    rng = random.Random(1)
    running = state.running_tasks()
    for task in rng.sample(running, min(len(running) // 10 + 1, len(running))):
        state.complete_task(task.task_id, now=20.0)
    add_pending_batch_job(state, MACHINES // 4, seed=8, job_id=800_001,
                          submit_time=20.0)
    network = manager.update(state, now=20.0)

    start = time.perf_counter()
    CostScalingSolver().solve(network.copy())
    scratch = time.perf_counter() - start

    start = time.perf_counter()
    incremental.solve(network.copy(), changes=manager.last_changes)
    incremental_time = time.perf_counter() - start
    if incremental.delta_solves != 1:
        raise AssertionError("perf smoke: the delta path was not taken")
    return scratch, incremental_time


def measure_graph_round() -> tuple:
    """One low-churn graph round: returns (rebuild_seconds, incremental_s)."""
    import random

    state = build_cluster_state(MACHINES, utilization=0.6, seed=41)
    add_pending_batch_job(state, MACHINES // 2, seed=42)
    incremental_manager = GraphManager(QuincyPolicy())
    rebuild_manager = GraphManager(QuincyPolicy(), incremental=False)
    incremental_manager.update(state, now=10.0)
    rebuild_manager.update(state, now=10.0)

    # Low churn: a handful of completions and a small arriving job (~5%).
    rng = random.Random(43)
    running = state.running_tasks()
    for task in rng.sample(running, min(len(running) // 20 + 1, len(running))):
        state.complete_task(task.task_id, now=20.0)
    add_pending_batch_job(state, max(2, MACHINES // 16), seed=44,
                          job_id=820_001, submit_time=20.0)

    start = time.perf_counter()
    incremental_manager.update(state, now=20.0)
    incremental_time = time.perf_counter() - start
    if incremental_manager.last_update_stats.mode != "incremental":
        raise AssertionError("perf smoke: the incremental graph path was not taken")

    start = time.perf_counter()
    rebuild_manager.update(state, now=20.0)
    rebuild_time = time.perf_counter() - start
    return rebuild_time, incremental_time


def measure_price_refine_round() -> tuple:
    """Price-refine kernel: (spfa_seconds, dijkstra_seconds).

    One post-seed warm-rebuild round (relaxation won the previous round,
    waiting costs drifted since): the only step that differs between the
    two runs is how complementary-slackness potentials are derived -- the
    full SPFA sweep vs the Dijkstra refine seeded from the handed-off
    potentials.  Each measurement sums a few repetitions of the refine
    attribution so the kernel is not dominated by timer noise.
    """
    # A deep pending backlog (the oversubscribed regime where warm rebuilds
    # dominate and SPFA's sweep needs several correction passes).
    state = build_cluster_state(MACHINES, utilization=0.6, seed=71)
    add_pending_batch_job(state, 2 * MACHINES, seed=72)
    manager = GraphManager(QuincyPolicy())
    network = manager.update(state, now=10.0)
    relax = RelaxationSolver().solve(network.copy())
    changed = manager.update(state, now=30.0)

    def refine_seconds(mode: str) -> float:
        solver = CostScalingSolver(price_refine=mode)
        result = solver.solve_warm(
            changed.copy(),
            relax.flows,
            warm_potentials=relax.potentials,
            apply_price_refine=True,
        )
        if result.statistics.price_refine_seconds <= 0.0:
            raise AssertionError(
                f"perf smoke: price refine did not run under mode {mode!r}"
            )
        return result.statistics.price_refine_seconds

    spfa = sum(refine_seconds("spfa") for _ in range(3))
    dijkstra = sum(refine_seconds("auto") for _ in range(3))
    return spfa, dijkstra


def _relaxation_rounds(seed_base: int, churn_rounds: int = 1):
    """Build a fig07-style uncontested scenario at 48 machines.

    Returns ``(base_network, round_networks, batches)``: a copy of the
    first round's network plus ``churn_rounds`` low-churn follow-up rounds
    with their revision-chained change batches.
    """
    import random

    state = build_cluster_state(48, utilization=0.6, seed=seed_base)
    add_pending_batch_job(state, 24, seed=seed_base + 1)
    manager = GraphManager(QuincyPolicy())
    base_network = manager.update(state, now=10.0).copy()
    for task in state.pending_tasks():
        for machine_id in state.topology.machines:
            if state.free_slots(machine_id) > 0:
                state.place_task(task.task_id, machine_id, now=10.0)
                break
    rng = random.Random(seed_base + 2)
    networks, batches = [], []
    now = 20.0
    for round_index in range(churn_rounds):
        running = state.running_tasks()
        for task in rng.sample(running, min(len(running) // 20 + 1, len(running))):
            state.complete_task(task.task_id, now=now)
        add_pending_batch_job(
            state, 3, seed=seed_base + 3 + round_index,
            job_id=900_001 + round_index, submit_time=now,
        )
        networks.append(manager.update(state, now=now).copy())
        batches.append(manager.last_changes)
        now += 10.0
    return base_network, networks, batches


def measure_relaxation_round() -> tuple:
    """Relaxation kernel: (cold_seconds, warm_seconds).

    One steady-state uncontested fig07-style round (low churn: a few
    completions and a small arriving job -- the post-placement round is
    excluded, its batch is placement-sized).  The cold path builds a fresh
    residual network from the flow network and solves; the warm path is a
    persistent solver whose retained residual is patched in place from the
    round's change batch (the relaxation leg of a steady-state dual-race
    round).  Each measurement sums a few repetitions so the kernel is not
    dominated by timer noise.
    """
    from repro.solvers import RelaxationSolver as Relaxation

    base_network, networks, batches = _relaxation_rounds(seed_base=91, churn_rounds=2)
    network = networks[-1]

    cold = 0.0
    warm = 0.0
    for _ in range(3):
        target = network.copy()  # untimed: the copy is a kernel artifact
        start = time.perf_counter()
        Relaxation().solve(target)
        cold += time.perf_counter() - start

        solver = Relaxation()
        # Prime the persistent residual through the preceding rounds.
        solver.solve(base_network.copy())
        solver.solve(networks[0].copy(), changes=batches[0])
        target = network.copy()
        start = time.perf_counter()
        solver.solve(target, changes=batches[1])
        warm += time.perf_counter() - start
        if solver.residual_reuses != 2:
            raise AssertionError("perf smoke: the relaxation delta path was not taken")
    return cold, warm


def measure_worker_resync_round() -> tuple:
    """Worker-resync kernel: (snapshot_seconds, resync_seconds).

    One chain-broken worker round (the worker missed three solo-solved
    rounds).  The snapshot path pays what the pre-resync executor paid:
    full DIMACS serialization, a full reparse, and a cold solve (fresh
    residual build).  The resync path pays the composed incremental
    payload: serialization and parse of the missed changes, an in-place
    shadow patch, and a persistent-residual solve.
    """
    from repro.flow.changes import ChangeBatch
    from repro.flow.dimacs import (
        read_dimacs,
        read_incremental,
        write_dimacs,
        write_incremental,
    )
    from repro.solvers import RelaxationSolver as Relaxation
    from repro.solvers import RevisionChainCache

    base_network, networks, batches = _relaxation_rounds(seed_base=71, churn_rounds=3)
    final_network = networks[-1]
    cache = RevisionChainCache()
    for batch in batches:
        cache.record(batch)
    composed = cache.compose(base_network.revision, final_network.revision)
    if composed is None:
        raise AssertionError("perf smoke: the resync chain did not compose")
    base_text = write_dimacs(base_network, include_node_types=False)

    snapshot = 0.0
    resync = 0.0
    for _ in range(3):
        start = time.perf_counter()
        text = write_dimacs(final_network, include_node_types=False)
        shadow = read_dimacs(text)
        Relaxation().solve(shadow)
        snapshot += time.perf_counter() - start

        # Prime the worker state at the stale base revision (untimed).
        stale_shadow = read_dimacs(base_text)
        stale_shadow.revision = base_network.revision
        solver = Relaxation()
        solver.solve(stale_shadow)

        start = time.perf_counter()
        text = write_incremental(
            composed,
            base_revision=base_network.revision,
            target_revision=final_network.revision,
        )
        parsed = read_incremental(text)
        for change in parsed:
            change.apply(stale_shadow)
        stale_shadow.revision = final_network.revision
        solver.solve(
            stale_shadow,
            changes=ChangeBatch(
                changes=parsed,
                base_revision=base_network.revision,
                target_revision=final_network.revision,
            ),
        )
        resync += time.perf_counter() - start
        if solver.residual_reuses != 1:
            raise AssertionError("perf smoke: the resync delta path was not taken")
    return snapshot, resync


def measure_sim_replay_round() -> float:
    """Sim-replay kernel: wall seconds for one small ingested-trace replay.

    The full ingestion path at CI size: a synthetic workload serialized to
    an in-memory CSV trace, streamed back through ``read_trace``, and
    replayed against a queue-based baseline with batch rounds.  Guards the
    event engine (queue discipline, streaming submission, O(1) pending
    bookkeeping) and the trace reader; the conservation law is asserted so
    the timed run is also a correct one.
    """
    import io

    from benchmarks.common import build_cluster_state as build_state
    from repro.baselines import SparrowScheduler
    from repro.simulation import (
        ClusterSimulator,
        GoogleTraceGenerator,
        SimulationConfig,
        TraceConfig,
        read_trace,
        verify_placement_conservation,
        write_jobs_csv,
    )

    trace_config = TraceConfig(
        num_machines=MACHINES,
        slots_per_machine=4,
        target_utilization=0.6,
        duration=240.0,
        seed=61,
        service_job_fraction=0.05,
        constant_service_load=True,
    )
    buffer = io.StringIO()
    write_jobs_csv(GoogleTraceGenerator(trace_config).iter_jobs(), buffer)
    buffer.seek(0)

    state = build_state(MACHINES)
    simulator = ClusterSimulator(
        state,
        SparrowScheduler(per_task_decision_seconds=0.0005),
        SimulationConfig(max_time=240.0, min_scheduler_interval=2.0, drain=False),
    )
    simulator.submit_job_stream(read_trace(buffer))
    start = time.perf_counter()
    result = simulator.run()
    elapsed = time.perf_counter() - start
    verify_placement_conservation(result)
    if result.metrics.tasks_placed == 0:
        raise AssertionError("perf smoke: the sim replay placed nothing")
    return elapsed


def measure_sharded_round() -> tuple:
    """Sharded-round kernel: (monolithic_seconds, sharded_seconds).

    Three low-churn steady-state rounds at ``SHARD_MACHINES`` machines (a
    small job arrives per round), summed so the kernel is not dominated by
    timer noise.  Both sides are charged the same per-round latency
    yardstick the simulator uses -- ``decision.algorithm_runtime``, which
    for the sharded scheduler is the straggler cell's solve.  The cold
    build round is excluded: the kernel guards the steady-state delta
    path, where the sharding win (per-cell networks are 1/cells the size
    and MCMF solve cost is superlinear) must hold.
    """
    from benchmarks.common import make_job
    from repro.core import FirmamentScheduler, ShardedScheduler

    def run(make_scheduler) -> float:
        state = build_cluster_state(
            SHARD_MACHINES,
            slots_per_machine=4,
            machines_per_rack=16,
            utilization=0.5,
            seed=31,
        )
        scheduler = make_scheduler()
        job_id, task_id = 910_000, 91_000_000
        total = 0.0
        try:
            scheduler.schedule_and_apply(state, now=0.0)  # cold build, untimed
            for round_index in range(1, 4):
                now = round_index * 5.0
                state.submit_job(make_job(job_id, 4, task_id, submit_time=now))
                job_id += 1
                task_id += 4
                decision = scheduler.schedule_and_apply(state, now=now)
                total += decision.algorithm_runtime
        finally:
            scheduler.close()
        return total

    mono = run(
        lambda: FirmamentScheduler(
            QuincyPolicy(), solver=IncrementalCostScalingSolver()
        )
    )
    sharded = run(lambda: ShardedScheduler(QuincyPolicy, num_cells=SHARD_CELLS))
    return mono, sharded


def measure_service_round() -> float:
    """Service-round kernel: wall seconds for one closed-loop service burst.

    An in-process :class:`SchedulerService` on an ephemeral loopback port,
    driven by the closed-loop load generator (2 clients x 2 jobs x 4
    tasks), then drained.  Covers the whole service path -- JSON-lines
    parsing, coalesced admission, the executor-backed round, the
    per-client notification queues, and drain -- with the conservation law
    asserted so the timed run is also a correct one.
    """
    import asyncio

    from repro.cluster.state import ClusterState
    from repro.cluster.topology import build_topology
    from repro.core import FirmamentScheduler
    from repro.core.policies import QuincyPolicy as ServiceQuincyPolicy
    from repro.service import SchedulerService, ServiceConfig
    from repro.service.loadgen import run_loadgen

    async def burst() -> None:
        state = ClusterState(build_topology(16))
        service = SchedulerService(
            state,
            FirmamentScheduler(ServiceQuincyPolicy()),
            ServiceConfig(round_interval=0.002, time_scale=0.01),
        )
        await service.start()
        try:
            result = await run_loadgen(
                "127.0.0.1", service.port, clients=2, jobs_per_client=2,
                tasks_per_job=4, duration=1.0, poll_stats=False,
            )
            if result.tasks_placed != result.tasks_accepted or result.errors:
                raise AssertionError("perf smoke: the service burst lost tasks")
        finally:
            snapshot = await service.stop()
            if not snapshot["conserved"]:
                raise AssertionError(
                    "perf smoke: the service conservation law was violated"
                )

    start = time.perf_counter()
    asyncio.run(burst())
    return time.perf_counter() - start


def measure_service_round_durable() -> float:
    """Durability-on service-round kernel: the same closed-loop burst as
    :func:`measure_service_round`, but with a :class:`DurabilityLayer` on a
    throwaway state directory (fsync on -- the real crash-safety cost).
    Guards the write-ahead admission log + snapshot path from regressing
    the service round by more than the gated factor.
    """
    import asyncio
    import shutil
    import tempfile

    from repro.cluster.state import ClusterState
    from repro.cluster.topology import build_topology
    from repro.core import FirmamentScheduler
    from repro.core.policies import QuincyPolicy as ServiceQuincyPolicy
    from repro.service import DurabilityLayer, SchedulerService, ServiceConfig
    from repro.service.loadgen import run_loadgen

    state_dir = tempfile.mkdtemp(prefix="perf-smoke-durability-")

    async def burst() -> None:
        state = ClusterState(build_topology(16))
        durability = DurabilityLayer(state_dir, fsync=True)
        service = SchedulerService(
            state,
            FirmamentScheduler(ServiceQuincyPolicy()),
            ServiceConfig(round_interval=0.002, time_scale=0.01),
            durability=durability,
        )
        await service.start()
        try:
            result = await run_loadgen(
                "127.0.0.1", service.port, clients=2, jobs_per_client=2,
                tasks_per_job=4, duration=1.0, poll_stats=False,
            )
            if result.tasks_placed != result.tasks_accepted or result.errors:
                raise AssertionError("perf smoke: the durable burst lost tasks")
        finally:
            snapshot = await service.stop()
            if not snapshot["conserved"]:
                raise AssertionError(
                    "perf smoke: the durable service conservation law was "
                    "violated"
                )

    try:
        start = time.perf_counter()
        asyncio.run(burst())
        return time.perf_counter() - start
    finally:
        shutil.rmtree(state_dir, ignore_errors=True)


def main() -> int:
    update = "--update" in sys.argv[1:]
    scratch_runs, incremental_runs = [], []
    rebuild_runs, graph_runs = [], []
    refine_spfa_runs, refine_dijkstra_runs = [], []
    relax_cold_runs, relax_warm_runs = [], []
    resync_snapshot_runs, resync_delta_runs = [], []
    sim_replay_runs = []
    shard_mono_runs, shard_cell_runs = [], []
    service_round_runs = []
    service_durable_runs = []
    for _ in range(RUNS):
        scratch, incremental = measure_round()
        scratch_runs.append(scratch)
        incremental_runs.append(incremental)
        rebuild, graph = measure_graph_round()
        rebuild_runs.append(rebuild)
        graph_runs.append(graph)
        refine_spfa, refine_dijkstra = measure_price_refine_round()
        refine_spfa_runs.append(refine_spfa)
        refine_dijkstra_runs.append(refine_dijkstra)
        relax_cold, relax_warm = measure_relaxation_round()
        relax_cold_runs.append(relax_cold)
        relax_warm_runs.append(relax_warm)
        resync_snapshot, resync_delta = measure_worker_resync_round()
        resync_snapshot_runs.append(resync_snapshot)
        resync_delta_runs.append(resync_delta)
        sim_replay_runs.append(measure_sim_replay_round())
        shard_mono, shard_cell = measure_sharded_round()
        shard_mono_runs.append(shard_mono)
        shard_cell_runs.append(shard_cell)
        service_round_runs.append(measure_service_round())
        service_durable_runs.append(measure_service_round_durable())
    measured = {
        "machines": MACHINES,
        "scratch_s": round(statistics.median(scratch_runs), 6),
        "incremental_s": round(statistics.median(incremental_runs), 6),
        "graph_rebuild_s": round(statistics.median(rebuild_runs), 6),
        "graph_incremental_s": round(statistics.median(graph_runs), 6),
        "price_refine_spfa_s": round(statistics.median(refine_spfa_runs), 6),
        "price_refine_dijkstra_s": round(
            statistics.median(refine_dijkstra_runs), 6
        ),
        "relaxation_cold_s": round(statistics.median(relax_cold_runs), 6),
        "relaxation_warm_s": round(statistics.median(relax_warm_runs), 6),
        "resync_snapshot_s": round(statistics.median(resync_snapshot_runs), 6),
        "resync_delta_s": round(statistics.median(resync_delta_runs), 6),
        "sim_replay_s": round(statistics.median(sim_replay_runs), 6),
        "sharded_mono_s": round(statistics.median(shard_mono_runs), 6),
        "sharded_cell_s": round(statistics.median(shard_cell_runs), 6),
        "service_round_s": round(statistics.median(service_round_runs), 6),
        "service_round_durable_s": round(
            statistics.median(service_durable_runs), 6
        ),
    }
    measured["speedup"] = round(
        measured["scratch_s"] / max(measured["incremental_s"], 1e-9), 3
    )
    measured["graph_speedup"] = round(
        measured["graph_rebuild_s"] / max(measured["graph_incremental_s"], 1e-9), 3
    )
    measured["price_refine_speedup"] = round(
        measured["price_refine_spfa_s"]
        / max(measured["price_refine_dijkstra_s"], 1e-9),
        3,
    )
    measured["relaxation_speedup"] = round(
        measured["relaxation_cold_s"] / max(measured["relaxation_warm_s"], 1e-9), 3
    )
    measured["resync_speedup"] = round(
        measured["resync_snapshot_s"] / max(measured["resync_delta_s"], 1e-9), 3
    )
    # Host normalization for the sim replay: the from-scratch solve is the
    # calibration workload, so the ratio is host-independent and a drop
    # below half the baseline's means the replay itself got >2x slower.
    measured["sim_replay_speedup"] = round(
        measured["scratch_s"] / max(measured["sim_replay_s"], 1e-9), 3
    )
    measured["sharded_speedup"] = round(
        measured["sharded_mono_s"] / max(measured["sharded_cell_s"], 1e-9), 3
    )
    # Host normalization for the service round mirrors the sim replay: the
    # from-scratch solve calibrates host speed, so the ratio only drops if
    # the service path itself (parsing, admission, round, stream, drain)
    # got slower.
    measured["service_round_speedup"] = round(
        measured["scratch_s"] / max(measured["service_round_s"], 1e-9), 3
    )
    # Same normalization for the durability-on burst: the ratio only drops
    # if the WAL append + snapshot path itself got slower.
    measured["service_durability_speedup"] = round(
        measured["scratch_s"] / max(measured["service_round_durable_s"], 1e-9), 3
    )
    print(f"measured: {json.dumps(measured)}")

    if update or not BASELINE_PATH.exists():
        BASELINE_PATH.write_text(json.dumps(measured, indent=2) + "\n")
        print(f"baseline written to {BASELINE_PATH}")
        return 0

    baseline = json.loads(BASELINE_PATH.read_text())
    print(f"baseline: {json.dumps(baseline)}")
    failed = False
    if measured["incremental_s"] > 2.0 * baseline["incremental_s"]:
        # Context only: absolute times are machine-dependent.
        print(
            "note: absolute incremental time "
            f"{measured['incremental_s']:.4f}s exceeds 2x the baseline's "
            f"{baseline['incremental_s']:.4f}s (slower host, or a real "
            "regression if the speedup check below also trips)"
        )
    if measured["speedup"] < MAX_SPEEDUP_LOSS * baseline["speedup"]:
        print(
            f"FAIL: incremental solve regressed >2x host-normalized: speedup "
            f"{measured['speedup']:.2f}x vs baseline {baseline['speedup']:.2f}x"
        )
        failed = True
    baseline_graph_speedup = baseline.get("graph_speedup")
    if (
        baseline_graph_speedup
        and measured["graph_speedup"] < MAX_SPEEDUP_LOSS * baseline_graph_speedup
    ):
        print(
            "FAIL: incremental graph update regressed >2x host-normalized: "
            f"speedup {measured['graph_speedup']:.2f}x vs baseline "
            f"{baseline_graph_speedup:.2f}x"
        )
        failed = True
    baseline_refine_speedup = baseline.get("price_refine_speedup")
    if (
        baseline_refine_speedup
        and measured["price_refine_speedup"]
        < MAX_SPEEDUP_LOSS * baseline_refine_speedup
    ):
        print(
            "FAIL: seeded price refine regressed >2x host-normalized: "
            f"speedup {measured['price_refine_speedup']:.2f}x vs baseline "
            f"{baseline_refine_speedup:.2f}x"
        )
        failed = True
    baseline_relax_speedup = baseline.get("relaxation_speedup")
    if (
        baseline_relax_speedup
        and measured["relaxation_speedup"] < MAX_SPEEDUP_LOSS * baseline_relax_speedup
    ):
        print(
            "FAIL: relaxation delta path regressed >2x host-normalized: "
            f"speedup {measured['relaxation_speedup']:.2f}x vs baseline "
            f"{baseline_relax_speedup:.2f}x"
        )
        failed = True
    baseline_resync_speedup = baseline.get("resync_speedup")
    if (
        baseline_resync_speedup
        and measured["resync_speedup"] < MAX_SPEEDUP_LOSS * baseline_resync_speedup
    ):
        print(
            "FAIL: worker resync regressed >2x host-normalized: "
            f"speedup {measured['resync_speedup']:.2f}x vs baseline "
            f"{baseline_resync_speedup:.2f}x"
        )
        failed = True
    baseline_sim_speedup = baseline.get("sim_replay_speedup")
    if (
        baseline_sim_speedup
        and measured["sim_replay_speedup"] < MAX_SPEEDUP_LOSS * baseline_sim_speedup
    ):
        print(
            "FAIL: sim replay regressed >2x host-normalized: "
            f"speedup {measured['sim_replay_speedup']:.2f}x vs baseline "
            f"{baseline_sim_speedup:.2f}x"
        )
        failed = True
    baseline_sharded_speedup = baseline.get("sharded_speedup")
    if baseline_sharded_speedup and (
        measured["sharded_speedup"] < MAX_SPEEDUP_LOSS * baseline_sharded_speedup
        or measured["sharded_speedup"] < 2.0
    ):
        # Both host-normalized (vs baseline) and absolute (ISSUE PR 8:
        # 4 cells at >= 256 machines must stay > 2x per round): the ratio
        # of two same-host round latencies is already host-independent.
        print(
            "FAIL: sharded round latency regressed: speedup "
            f"{measured['sharded_speedup']:.2f}x vs baseline "
            f"{baseline_sharded_speedup:.2f}x (floor 2.0x)"
        )
        failed = True
    baseline_service_speedup = baseline.get("service_round_speedup")
    if (
        baseline_service_speedup
        and measured["service_round_speedup"]
        < MAX_SPEEDUP_LOSS * baseline_service_speedup
    ):
        print(
            "FAIL: service round regressed >2x host-normalized: "
            f"speedup {measured['service_round_speedup']:.2f}x vs baseline "
            f"{baseline_service_speedup:.2f}x"
        )
        failed = True
    baseline_durability_speedup = baseline.get("service_durability_speedup")
    if (
        baseline_durability_speedup
        and measured["service_durability_speedup"]
        < MAX_SPEEDUP_LOSS * baseline_durability_speedup
    ):
        print(
            "FAIL: durability-on service round regressed >2x host-normalized: "
            f"speedup {measured['service_durability_speedup']:.2f}x vs "
            f"baseline {baseline_durability_speedup:.2f}x"
        )
        failed = True
    if failed:
        return 1
    print("perf smoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
