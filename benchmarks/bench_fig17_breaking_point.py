"""Figure 17: the breaking point for workloads of very short tasks.

Jobs of ten short tasks arrive at an interarrival time that keeps the
cluster at 80 % load; as the task duration shrinks, the scheduler must keep
up with an ever higher placement throughput.  With an ideal scheduler, job
response time equals task duration; the breaking point is where the measured
response time departs from that diagonal.  The paper finds Firmament stays
near-ideal down to 5 ms tasks on 100 machines and 375 ms tasks on 1,000
machines.  The benchmark sweeps task durations on two cluster sizes and
reports the response-time inflation over the ideal.
"""

from __future__ import annotations

import pytest

from benchmarks.common import bench_scale, build_cluster_state
from repro.analysis.reporting import format_table
from repro.analysis.stats import percentile
from repro.core import FirmamentScheduler, QuincyPolicy
from repro.simulation import ClusterSimulator, SimulationConfig, make_job_of_short_tasks

CLUSTER_SIZES = [16 * bench_scale(), 48 * bench_scale()]
TASK_DURATIONS = [4.0, 1.0, 0.25]
TASKS_PER_JOB = 10
TARGET_LOAD = 0.8
EXPERIMENT_SECONDS = 30.0


def run_short_task_workload(num_machines: int, task_duration: float):
    state = build_cluster_state(num_machines, slots_per_machine=4)
    total_slots = state.topology.total_slots
    # Interarrival time that keeps the cluster at the target load if the
    # scheduler itself adds no overhead.
    jobs_per_second = TARGET_LOAD * total_slots / (TASKS_PER_JOB * task_duration)
    interarrival = 1.0 / jobs_per_second
    simulator = ClusterSimulator(
        state,
        FirmamentScheduler(QuincyPolicy()),
        SimulationConfig(max_time=EXPERIMENT_SECONDS),
    )
    submit_time = 0.0
    job_id = 1
    task_id = 0
    while submit_time < EXPERIMENT_SECONDS:
        simulator.submit_job(
            make_job_of_short_tasks(
                job_id=job_id,
                num_tasks=TASKS_PER_JOB,
                task_duration=task_duration,
                submit_time=submit_time,
                task_id_offset=task_id,
            )
        )
        job_id += 1
        task_id += TASKS_PER_JOB
        submit_time += interarrival
    result = simulator.run()
    return result


def test_fig17_job_response_time_vs_task_duration(benchmark):
    """Regenerates Figure 17 (scaled down)."""
    rows = []
    inflation = {}
    for num_machines in CLUSTER_SIZES:
        for duration in TASK_DURATIONS:
            result = run_short_task_workload(num_machines, duration)
            job_response = percentile(result.metrics.job_response_times, 50)
            ratio = job_response / duration
            inflation[(num_machines, duration)] = ratio
            rows.append([
                num_machines, f"{duration * 1000:.0f} ms", f"{job_response:.3f}",
                f"{ratio:.2f}x",
            ])
    print()
    print("Figure 17: median job response time vs task duration (ideal = task duration)")
    print(format_table(
        ["machines", "task duration", "median job response [s]", "inflation over ideal"],
        rows,
    ))

    for num_machines in CLUSTER_SIZES:
        # Long tasks are handled near-ideally (the flat part of the curve).
        assert inflation[(num_machines, TASK_DURATIONS[0])] < 1.8
        # Shorter tasks see monotonically growing relative overhead: the
        # approach to the breaking point.
        assert (
            inflation[(num_machines, TASK_DURATIONS[-1])]
            >= inflation[(num_machines, TASK_DURATIONS[0])]
        )
    # A larger cluster reaches its breaking point at longer task durations.
    assert (
        inflation[(CLUSTER_SIZES[-1], TASK_DURATIONS[-1])]
        >= inflation[(CLUSTER_SIZES[0], TASK_DURATIONS[-1])] * 0.8
    )

    benchmark(lambda: run_short_task_workload(CLUSTER_SIZES[0], TASK_DURATIONS[1]))
