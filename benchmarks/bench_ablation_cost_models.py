"""Ablation: scheduling policies (cost models) beyond the paper's three.

Firmament's contribution is the fast solver; the policy layer on top is
pluggable (Section 3.3).  This ablation exercises the additional cost models
shipped with the reproduction and asserts the placement-quality properties
each one is supposed to deliver:

* the shortest-job-first model reduces mean batch response time on a
  slot-scarce cluster relative to runtime-oblivious load spreading, and
* the CPU/RAM model never overcommits a machine in any resource dimension,
  while the slot-only load-spreading model (which ignores CPU/RAM) does
  overcommit on the same workload.
"""

from __future__ import annotations

import pytest

from benchmarks.common import bench_scale
from repro.analysis.reporting import format_table
from repro.cluster import ClusterState, Job, JobType, KnowledgeBase, ResourceVector, Task, build_topology
from repro.core import FirmamentScheduler
from repro.core.policies import CpuMemoryPolicy, LoadSpreadingPolicy, ShortestJobFirstPolicy
from repro.simulation import ClusterSimulator, SimulationConfig

SCALE = bench_scale()


def make_mixed_duration_jobs(num_short: int, num_long: int):
    """Short and long batch tasks with distinguishable resource classes."""
    short = Job(job_id=1, job_type=JobType.BATCH, submit_time=0.0)
    for index in range(num_short):
        short.add_task(Task(task_id=index, job_id=1, duration=10.0, cpu_request=1.0))
    long = Job(job_id=2, job_type=JobType.BATCH, submit_time=0.0)
    for index in range(num_long):
        long.add_task(Task(task_id=1000 + index, job_id=2, duration=150.0, cpu_request=2.0))
    return [short, long]


def mean_response_time(policy, jobs) -> float:
    topology = build_topology(num_machines=2 * SCALE, slots_per_machine=2)
    state = ClusterState(topology)
    simulator = ClusterSimulator(
        state, FirmamentScheduler(policy), SimulationConfig(max_time=800.0)
    )
    simulator.submit_jobs(jobs)
    result = simulator.run()
    times = result.metrics.response_times
    return sum(times) / len(times) if times else 0.0


def overcommit_count(policy) -> int:
    """Place a RAM-heavy workload and count machines overcommitted on RAM."""
    topology = build_topology(
        num_machines=4 * SCALE, slots_per_machine=8, cpu_cores=8, ram_gb=32
    )
    state = ClusterState(topology)
    job = Job(job_id=1, job_type=JobType.BATCH)
    for index in range(8 * SCALE):
        job.add_task(
            Task(task_id=index, job_id=1, duration=60.0, cpu_request=2.0, ram_request_gb=24.0)
        )
    state.submit_job(job)
    FirmamentScheduler(policy).schedule_and_apply(state, now=0.0)
    overcommitted = 0
    for machine_id in topology.machines:
        in_use = state.resources_in_use(machine_id)
        capacity = ResourceVector.for_machine(topology.machine(machine_id))
        if in_use.ram_gb > capacity.ram_gb + 1e-9:
            overcommitted += 1
    return overcommitted


def test_ablation_cost_models(benchmark):
    """SJF cuts mean response time; the CPU/RAM model prevents overcommit."""
    jobs = make_mixed_duration_jobs(num_short=4 * SCALE, num_long=4 * SCALE)
    knowledge_base = KnowledgeBase()
    for job in jobs:
        for task in job.tasks:
            knowledge_base.record_completion(task, runtime=task.duration)

    sjf_mean = mean_response_time(
        ShortestJobFirstPolicy(knowledge_base=knowledge_base),
        make_mixed_duration_jobs(num_short=4 * SCALE, num_long=4 * SCALE),
    )
    spreading_mean = mean_response_time(
        LoadSpreadingPolicy(),
        make_mixed_duration_jobs(num_short=4 * SCALE, num_long=4 * SCALE),
    )

    cpu_memory_overcommit = overcommit_count(CpuMemoryPolicy())
    slot_only_overcommit = overcommit_count(LoadSpreadingPolicy())

    print()
    print("Ablation: additional cost models")
    print(format_table(
        ["metric", "load_spreading", "alternative model"],
        [
            ["mean batch response time [s]", f"{spreading_mean:.1f}",
             f"{sjf_mean:.1f} (shortest_job_first)"],
            ["machines RAM-overcommitted", str(slot_only_overcommit),
             f"{cpu_memory_overcommit} (cpu_memory)"],
        ],
    ))

    assert sjf_mean <= spreading_mean
    assert cpu_memory_overcommit == 0
    assert slot_only_overcommit > 0

    benchmark(lambda: overcommit_count(CpuMemoryPolicy()))
