"""Figure 10: early termination of MCMF yields poor placements.

The paper measures how many tasks are "misplaced" (scheduled on a different
machine than in the optimal solution, or spuriously preempted) when cost
scaling and relaxation are terminated early, and finds thousands of
misplacements persisting until shortly before the optimal solution --
rejecting approximate MCMF as a latency optimization.  The benchmark
terminates cost scaling after a varying number of epsilon phases (and cycle
canceling after a varying number of cycle cancellations) and counts
misplacements against the optimal assignment.
"""

from __future__ import annotations

import pytest

from benchmarks.common import (
    add_pending_batch_job,
    bench_scale,
    build_cluster_state,
    build_policy_network,
)
from repro.analysis.reporting import format_table
from repro.core import QuincyPolicy, extract_placements
from repro.solvers import CostScalingSolver, CycleCancelingSolver

MACHINES = 48 * bench_scale()
PHASE_LIMITS = [1, 2, 4, 8, None]


def build_problem():
    state = build_cluster_state(MACHINES, utilization=0.85, seed=5)
    add_pending_batch_job(state, MACHINES, seed=6)
    manager, network = build_policy_network(state, QuincyPolicy())
    return manager, network


def placements_for(manager, network, solver):
    solver.solve(network)
    return extract_placements(
        network, manager.task_nodes, manager.machine_nodes, manager.sink_node
    )


def count_misplacements(reference, candidate, all_tasks):
    """Tasks placed differently than in the optimal solution (including tasks
    left unscheduled that the optimal solution places, and vice versa)."""
    return sum(
        1 for task_id in all_tasks if reference.get(task_id) != candidate.get(task_id)
    )


def test_fig10_early_termination_misplaces_tasks(benchmark):
    """Regenerates Figure 10 (scaled down)."""
    manager, network = build_problem()
    optimal = placements_for(manager, network.copy(), CostScalingSolver())
    all_tasks = list(manager.task_nodes)

    rows = []
    misplacements_by_limit = {}
    for limit in PHASE_LIMITS:
        solver = CostScalingSolver(max_phases=limit)
        candidate = placements_for(manager, network.copy(), solver)
        misplaced = count_misplacements(optimal, candidate, all_tasks)
        misplacements_by_limit[limit] = misplaced
        rows.append([
            "optimal" if limit is None else f"{limit} phases",
            misplaced,
            f"{100.0 * misplaced / len(all_tasks):.1f}%",
        ])

    # Cycle canceling terminated early as a second data point.
    early_cycle = placements_for(
        manager, network.copy(), CycleCancelingSolver(max_iterations=2)
    )
    cycle_misplaced = count_misplacements(optimal, early_cycle, all_tasks)

    print()
    print(f"Figure 10: misplaced tasks vs early termination ({len(all_tasks)} tasks)")
    print(format_table(["cost scaling run", "misplaced tasks", "fraction"], rows))
    print(f"cycle canceling stopped after 2 cycles: {cycle_misplaced} misplaced")

    # Running to completion misplaces nothing, by construction.
    assert misplacements_by_limit[None] == 0
    # Terminating in the first phases misplaces a substantial share of tasks.
    assert misplacements_by_limit[1] > len(all_tasks) * 0.2
    # Even later phases still misplace tasks, and the count is volatile
    # rather than smoothly converging -- the paper's reason for rejecting
    # early termination as a latency optimization.
    assert misplacements_by_limit[4] > 0
    assert misplacements_by_limit[8] > 0

    benchmark(lambda: CostScalingSolver(max_phases=1).solve(network.copy()))
