"""Extended randomized cross-solver equivalence sweep (benchmark tier).

The tier-1 suite (``tests/solvers/test_cross_solver_equivalence.py``) runs a
few dozen seeds with three change rounds each.  This sweep pushes the same
harness much further -- more seeds, deeper perturbation chains, and the
subprocess-racing executor on every seed -- and is collected only when named
explicitly (every item under ``benchmarks/`` carries the ``benchmark``
marker).  Scale with ``REPRO_BENCH_SCALE``.
"""

from __future__ import annotations

import pytest

from benchmarks.common import bench_scale
from tests.solvers.test_cross_solver_equivalence import run_equivalence_rounds

SEEDS = range(100, 100 + 50 * bench_scale())


@pytest.mark.parametrize("seed", SEEDS)
def test_equivalence_sweep(seed):
    """Deep fuzz: every solver and both executors, eight change rounds."""
    run_equivalence_rounds(seed, rounds=8, include_subprocess=seed % 5 == 0)
