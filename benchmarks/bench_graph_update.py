"""Per-round graph-update latency: incremental vs rebuild-and-diff.

PR 1/PR 2 made the *solver* O(|changes|) per round, which left graph
construction -- rebuild the whole flow network, then diff it against the
previous round -- as the dominant per-round cost on large, low-churn
clusters.  This benchmark measures :meth:`GraphManager.update` wall time
across machine counts and churn rates for the two paths:

* ``incremental``: the dirty-set-driven persistent network (default), and
* ``rebuild``: the old full-rebuild + :meth:`ChangeBatch.diff` path
  (``GraphManager(..., incremental=False)``).

Both managers consume identical cluster mutations in lockstep, so the
reported ratio is the per-round construction speedup the incremental layer
delivers.  The acceptance bar of the incremental-construction PR is a >= 5x
speedup on a low-churn round (<= 5 % of tasks changing, >= 48 machines).

Usage::

    PYTHONPATH=src python benchmarks/bench_graph_update.py
    PYTHONPATH=src python -m pytest benchmarks/bench_graph_update.py -s
"""

from __future__ import annotations

import random
import statistics
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from benchmarks.common import (  # noqa: E402
    add_pending_batch_job,
    bench_scale,
    build_cluster_state,
)
from repro.analysis.reporting import format_table  # noqa: E402
from repro.core import GraphManager, QuincyPolicy  # noqa: E402

MACHINE_COUNTS = [16, 48, 128]
CHURN_FRACTIONS = [0.02, 0.05, 0.20]
ROUNDS = 12


def _churn(state, rng: random.Random, fraction: float, now: float, job_id: int) -> None:
    """Touch roughly ``fraction`` of the schedulable tasks this round."""
    tasks = state.schedulable_tasks()
    budget = max(1, int(len(tasks) * fraction))
    completions = budget // 2
    running = state.running_tasks()
    for task in rng.sample(running, min(completions, len(running))):
        state.complete_task(task.task_id, now)
    arrivals = max(1, budget - completions)
    add_pending_batch_job(
        state, arrivals, seed=int(now) + job_id, job_id=job_id, submit_time=now
    )
    # Place a few pending tasks (scheduler effects between rounds).
    placed = 0
    for task in state.pending_tasks():
        if placed >= budget // 2:
            break
        for machine_id in state.topology.machines:
            if state.free_slots(machine_id) > 0:
                state.place_task(task.task_id, machine_id, now)
                placed += 1
                break


def measure(machines: int, churn: float):
    """Return (incremental medians, rebuild medians, arcs) for one config."""
    incremental_times = []
    rebuild_times = []
    arcs = 0
    state = build_cluster_state(machines, utilization=0.6, seed=7)
    add_pending_batch_job(state, machines // 2, seed=8)
    inc_manager = GraphManager(QuincyPolicy())
    reb_manager = GraphManager(QuincyPolicy(), incremental=False)
    inc_manager.update(state, now=0.0)
    reb_manager.update(state, now=0.0)

    rng = random.Random(9)
    for round_index in range(1, ROUNDS + 1):
        now = round_index * 10.0
        _churn(state, rng, churn, now, job_id=700_000 + round_index)

        start = time.perf_counter()
        network = inc_manager.update(state, now)
        incremental_times.append(time.perf_counter() - start)
        if inc_manager.last_update_stats.mode != "incremental":
            raise AssertionError("expected the incremental path")

        start = time.perf_counter()
        reb_manager.update(state, now)
        rebuild_times.append(time.perf_counter() - start)
        arcs = network.num_arcs

    return (
        statistics.median(incremental_times),
        statistics.median(rebuild_times),
        arcs,
    )


def run() -> list:
    scale = bench_scale()
    rows = []
    results = []
    for machines in [m * scale for m in MACHINE_COUNTS]:
        for churn in CHURN_FRACTIONS:
            incremental, rebuild, arcs = measure(machines, churn)
            speedup = rebuild / max(incremental, 1e-9)
            results.append((machines, churn, incremental, rebuild, speedup))
            rows.append(
                [
                    str(machines),
                    f"{100 * churn:.0f}%",
                    str(arcs),
                    f"{1000 * rebuild:.2f}",
                    f"{1000 * incremental:.2f}",
                    f"{speedup:.1f}x",
                ]
            )
    print()
    print("Graph-update latency per round: rebuild+diff vs incremental (Quincy)")
    print(
        format_table(
            [
                "machines",
                "churn",
                "arcs",
                "rebuild [ms]",
                "incremental [ms]",
                "speedup",
            ],
            rows,
        )
    )
    return results


def test_graph_update_incremental_beats_rebuild(benchmark):
    """Low-churn rounds must be >= 5x faster than rebuild+diff."""
    results = run()
    low_churn = [
        speedup
        for machines, churn, _, _, speedup in results
        if machines >= 48 and churn <= 0.05
    ]
    assert low_churn, "no low-churn configuration measured"
    assert max(low_churn) >= 5.0, (
        f"low-churn graph-update speedups {low_churn} never reached 5x"
    )

    # Timed kernel: one incremental round at 48 machines, 5% churn.
    state = build_cluster_state(48, utilization=0.6, seed=17)
    add_pending_batch_job(state, 24, seed=18)
    manager = GraphManager(QuincyPolicy())
    manager.update(state, now=0.0)
    rng = random.Random(19)
    counter = [0]

    def one_round():
        counter[0] += 1
        now = counter[0] * 10.0
        _churn(state, rng, 0.05, now, job_id=720_000 + counter[0])
        manager.update(state, now)

    benchmark(one_round)


if __name__ == "__main__":
    results = run()
    worst_low_churn = max(
        speedup
        for machines, churn, _, _, speedup in results
        if machines >= 48 and churn <= 0.05
    )
    print(f"\nbest low-churn speedup at >=48 machines: {worst_low_churn:.1f}x")
    sys.exit(0 if worst_low_churn >= 5.0 else 1)
