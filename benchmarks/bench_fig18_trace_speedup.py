"""Figure 18: keeping up with an accelerated Google trace.

The paper divides all task runtimes and interarrival times in the Google
trace by a speedup factor, simulating a future workload of ever shorter
tasks, and measures task placement latency.  Relaxation alone develops tail
latencies above ten seconds beyond a 150x speedup, while Firmament (running
both algorithms) keeps up to 250-300x.  The benchmark accelerates the
synthetic trace on a scaled-down cluster and compares Firmament against the
relaxation-only configuration.

The replays use the trace generator's **constant-service-load** mode: the
long-running service jobs are pinned to a fixed t=0 allotment instead of
scaling their arrivals with the speedup.  Without it, accelerated replays
multiply service-job arrivals whose never-completing tasks hold their slots
forever, so beyond roughly 8x service work swallowed every slot and the
experiment stopped exercising batch placement at all (see EXPERIMENTS.md,
PR 1).  With it the sweep pushes to 16x and beyond.

The Firmament replays race with the subprocess-backed
:class:`~repro.solvers.parallel_executor.ParallelDualExecutor`: at 16x the
incremental cost-scaling side degrades badly under the per-round churn
(hundreds of task arrivals and completions per batch), and the sequential
executor would grind every losing run to completion -- 165 s of real CPU
for the replay, versus ~25 s when the race cancels the loser.  A second
test pins that wall-clock advantage against the sequential executor at a
moderate speedup where running both to completion is still affordable.
"""

from __future__ import annotations

import pytest

from benchmarks.common import (
    EXECUTOR_RACE_HEADER,
    bench_scale,
    build_cluster_state,
    executor_race_row,
)
from repro.analysis.reporting import format_table
from repro.analysis.stats import percentile
from repro.core import FirmamentScheduler, QuincyPolicy
from repro.simulation import (
    ClusterSimulator,
    GoogleTraceGenerator,
    SimulationConfig,
    TraceConfig,
)
from repro.solvers import ParallelDualExecutor, RelaxationSolver

MACHINES = 32 * bench_scale()
SPEEDUPS = [1.0, 4.0, 16.0]
TRACE_SECONDS = 25.0


def replay(speedup: float, solver):
    state = build_cluster_state(MACHINES, utilization=0.6, seed=71)
    config = TraceConfig(
        num_machines=MACHINES,
        slots_per_machine=4,
        target_utilization=0.35,
        duration=TRACE_SECONDS,
        speedup=speedup,
        seed=72,
        service_job_fraction=0.1,
        mean_batch_task_duration=30.0,
        constant_service_load=True,
    )
    scheduler = FirmamentScheduler(QuincyPolicy(), solver=solver) if solver else \
        FirmamentScheduler(QuincyPolicy())
    # Batch scheduling rounds at 2 Hz and skip the drain phase: the
    # scheduler gets charged the *effective* (winner's) runtime, so
    # without an interval the simulator would re-run both solvers after
    # every single completion event -- hundreds of rounds per simulated
    # minute measuring the same latencies at many times the benchmark's
    # wall cost (each simulated round costs real CPU for two full solver
    # runs).  All configurations share the settings, so the comparison is
    # unchanged.
    simulator = ClusterSimulator(
        state,
        scheduler,
        SimulationConfig(
            max_time=TRACE_SECONDS, min_scheduler_interval=0.5, drain=False
        ),
    )
    simulator.submit_job_stream(GoogleTraceGenerator(config).iter_jobs())
    try:
        result = simulator.run()
    finally:
        simulator.close()
    return result, scheduler


def test_fig18_firmament_keeps_up_with_accelerated_traces(benchmark):
    """Regenerates Figure 18 (scaled down, constant service load, to 16x)."""
    rows = []
    stats = {}
    for speedup in SPEEDUPS:
        executor = ParallelDualExecutor()
        try:
            firmament_run, _ = replay(speedup, solver=executor)
        finally:
            executor.close()
        relaxation_run, _ = replay(speedup, solver=RelaxationSolver())
        firmament_p99 = percentile(firmament_run.metrics.placement_latencies, 99)
        relaxation_p99 = percentile(relaxation_run.metrics.placement_latencies, 99)
        stats[speedup] = (firmament_p99, relaxation_p99,
                          firmament_run.metrics.tasks_placed,
                          relaxation_run.metrics.tasks_placed)
        rows.append([
            f"{speedup:.0f}x",
            firmament_run.metrics.tasks_placed,
            f"{percentile(firmament_run.metrics.placement_latencies, 50):.3f}",
            f"{firmament_p99:.3f}",
            f"{relaxation_p99:.3f}",
        ])
    print()
    print(f"Figure 18: placement latency vs trace speedup ({MACHINES} machines, "
          "constant service load)")
    print(format_table(
        ["speedup", "tasks placed (firmament)", "firmament p50 [s]",
         "firmament p99 [s]", "relaxation-only p99 [s]"],
        rows,
    ))

    # Firmament keeps placing the accelerated workload (more tasks arrive at
    # higher speedups, and they all get placed) ...
    assert stats[SPEEDUPS[-1]][2] > stats[SPEEDUPS[0]][2]
    # ... and its tail latency never exceeds the relaxation-only
    # configuration's by more than measurement noise.  The additive guard
    # covers the near-zero-latency regime (low speedups place in
    # milliseconds, where the real race's IPC and scheduling overhead on
    # shared cores is the whole number); the figure's signal is the
    # multi-second divergence at high speedups, which the multiplicative
    # bound pins.
    for speedup in SPEEDUPS:
        firmament_p99, relaxation_p99, *_ = stats[speedup]
        assert firmament_p99 <= relaxation_p99 * 1.25 + 0.1

    # One timed replay: constant-service-load rounds do real scheduling
    # work at every speedup, so calibrated multi-round timing would cost
    # minutes for no extra signal.
    def timed_replay():
        executor = ParallelDualExecutor()
        try:
            replay(SPEEDUPS[1], solver=executor)
        finally:
            executor.close()

    benchmark.pedantic(timed_replay, rounds=1, iterations=1)


def test_fig18_parallel_executor_real_wall_clock(benchmark):
    """The real race beats the sequential executor's wall clock per round.

    The sequential executor charges the simulator the modeled winner's
    runtime but pays the sum of both algorithms in real CPU; the parallel
    executor's measured wall clock approximates the winner alone because
    the losing run is cancelled or abandoned.  This turns the paper's
    "running both is cheap" claim into a measured property.  The
    comparison runs at a moderate speedup: at 16x the sequential
    executor's losing cost-scaling runs alone cost minutes of CPU, which
    is precisely why the sweep above races with the parallel executor.
    """
    speedup = 8.0
    _, sequential_scheduler = replay(speedup, solver=None)
    sequential = sequential_scheduler.solver

    parallel = ParallelDualExecutor()
    try:
        parallel_run, _ = replay(speedup, solver=parallel)
        print()
        print(f"Figure 18 executor wall clock at {speedup:.0f}x "
              f"({MACHINES} machines)")
        print(format_table(
            EXECUTOR_RACE_HEADER,
            [
                executor_race_row("sequential (modeled race)", sequential),
                executor_race_row("parallel (subprocess race)", parallel),
            ],
        ))

        assert parallel.rounds > 0
        assert parallel.fallback_rounds == 0
        assert parallel_run.metrics.tasks_placed > 0
        # The real race's mean wall clock per round must undercut the
        # sequential executor's (which pays the sum of both algorithms).
        # The 5 % allowance absorbs single-core scheduling noise: when
        # parent and worker time-slice one CPU the loser steals roughly
        # half the cycles until cancelled, so the structural gap observed
        # here (parallel at 0.7-0.9x of sequential) is itself a worst
        # case relative to any multi-core host.
        parallel_per_round = parallel.total_wall_clock_seconds / parallel.rounds
        sequential_per_round = (
            sequential.total_wall_clock_seconds / max(sequential.rounds, 1)
        )
        print(f"wall clock per round: parallel {1e3 * parallel_per_round:.2f} ms "
              f"vs sequential {1e3 * sequential_per_round:.2f} ms")
        assert parallel_per_round < sequential_per_round * 1.05
    finally:
        parallel.close()

    def timed_replay():
        executor = ParallelDualExecutor()
        try:
            replay(speedup, solver=executor)
        finally:
            executor.close()

    benchmark.pedantic(timed_replay, rounds=1, iterations=1)
