"""Figure 18: keeping up with an accelerated Google trace.

The paper divides all task runtimes and interarrival times in the Google
trace by a speedup factor, simulating a future workload of ever shorter
tasks, and measures task placement latency.  Relaxation alone develops tail
latencies above ten seconds beyond a 150x speedup, while Firmament (running
both algorithms) keeps up to 250-300x.  The benchmark accelerates the
synthetic trace on a scaled-down cluster and compares Firmament against the
relaxation-only configuration.
"""

from __future__ import annotations

import pytest

from benchmarks.common import bench_scale, build_cluster_state
from repro.analysis.reporting import format_table
from repro.analysis.stats import percentile
from repro.core import FirmamentScheduler, QuincyPolicy
from repro.simulation import (
    ClusterSimulator,
    GoogleTraceGenerator,
    SimulationConfig,
    TraceConfig,
)
from repro.solvers import RelaxationSolver

MACHINES = 32 * bench_scale()
SPEEDUPS = [1.0, 4.0, 8.0]
TRACE_SECONDS = 25.0


def replay(speedup: float, solver):
    state = build_cluster_state(MACHINES, utilization=0.6, seed=71)
    config = TraceConfig(
        num_machines=MACHINES,
        slots_per_machine=4,
        target_utilization=0.35,
        duration=TRACE_SECONDS,
        speedup=speedup,
        seed=72,
        service_job_fraction=0.1,
        mean_batch_task_duration=30.0,
    )
    scheduler = FirmamentScheduler(QuincyPolicy(), solver=solver) if solver else \
        FirmamentScheduler(QuincyPolicy())
    # Batch scheduling rounds at 2 Hz and skip the drain phase: the
    # scheduler now gets charged the *effective* (winner's) runtime, so
    # without an interval the simulator would re-run both solvers after
    # every single completion event -- hundreds of rounds per simulated
    # minute measuring the same latencies at many times the benchmark's
    # wall cost (each simulated round costs real CPU for two full solver
    # runs).  Both configurations share the settings, so the comparison is
    # unchanged.
    simulator = ClusterSimulator(
        state,
        scheduler,
        SimulationConfig(
            max_time=TRACE_SECONDS, min_scheduler_interval=0.5, drain=False
        ),
    )
    simulator.submit_jobs(GoogleTraceGenerator(config).generate())
    return simulator.run()


def test_fig18_firmament_keeps_up_with_accelerated_traces(benchmark):
    """Regenerates Figure 18 (scaled down)."""
    rows = []
    stats = {}
    for speedup in SPEEDUPS:
        firmament_run = replay(speedup, solver=None)
        relaxation_run = replay(speedup, solver=RelaxationSolver())
        firmament_p99 = percentile(firmament_run.metrics.placement_latencies, 99)
        relaxation_p99 = percentile(relaxation_run.metrics.placement_latencies, 99)
        stats[speedup] = (firmament_p99, relaxation_p99,
                          firmament_run.metrics.tasks_placed,
                          relaxation_run.metrics.tasks_placed)
        rows.append([
            f"{speedup:.0f}x",
            firmament_run.metrics.tasks_placed,
            f"{percentile(firmament_run.metrics.placement_latencies, 50):.3f}",
            f"{firmament_p99:.3f}",
            f"{relaxation_p99:.3f}",
        ])
    print()
    print(f"Figure 18: placement latency vs trace speedup ({MACHINES} machines)")
    print(format_table(
        ["speedup", "tasks placed (firmament)", "firmament p50 [s]",
         "firmament p99 [s]", "relaxation-only p99 [s]"],
        rows,
    ))

    # Firmament keeps placing the accelerated workload (more tasks arrive at
    # higher speedups, and they all get placed) ...
    assert stats[SPEEDUPS[-1]][2] > stats[SPEEDUPS[0]][2]
    # ... and its tail latency never exceeds the relaxation-only
    # configuration's by more than measurement noise at any speedup.
    for speedup in SPEEDUPS:
        firmament_p99, relaxation_p99, *_ = stats[speedup]
        assert firmament_p99 <= relaxation_p99 * 1.25 + 0.05

    benchmark(lambda: replay(SPEEDUPS[1], solver=None))
