"""Crash-recovery timing: WAL append/replay rates and snapshot sizes.

The durability layer (:mod:`repro.service.durability`) buys crash safety
with exactly two mechanical costs: a fsync'd framed append per admission
batch / applied round, and a periodic full-state snapshot.  This
benchmark measures both directly, without a service in the way:

* **WAL append rate** -- framed ``admit``/``round`` records appended to a
  real segment file, fsync on (the production cost) and off (pure
  serialization, isolating disk latency);
* **log replay rate** -- :func:`repro.service.durability.recover` replays
  the same records through the ``ClusterState`` mutators; the replayed
  state must equal an in-memory oracle that applied the identical
  operations (``ClusterState.__eq__``), and the conservation counters
  must balance;
* **snapshot size and restore time at 128/512 machines** -- a half-loaded
  cluster snapshotted through :meth:`DurabilityLayer.write_snapshot`
  (temp file + atomic rename, fsync on), then restored and compared
  ``==`` to the original.

The assertions pin correctness (equivalence, counts), never absolute
speed -- the printed rates are the EXPERIMENTS.md numbers.
"""

from __future__ import annotations

import time
from types import SimpleNamespace
from typing import Dict, List, Tuple

from benchmarks.common import bench_scale, build_cluster_state, make_job
from repro.analysis.reporting import format_table
from repro.service.durability import (
    DurabilityLayer,
    admit_payload,
    new_ledger,
    recover,
    round_payload,
    snapshot_cluster_state,
)

#: Jobs in the replay workload; each contributes one admit record (with the
#: previous job's completions) and one round record (its placements).
NUM_JOBS = 64 * bench_scale()
TASKS_PER_JOB = 4

#: Snapshot-size grid (ISSUE 10: 128 and 512 machines).
SNAPSHOT_MACHINES = (128, 512)


def _workload(num_machines: int) -> List[Tuple[str, Dict]]:
    """Build the record stream: admit (submit + prior completions) then
    round (placements), slots recycled so the cluster never overflows."""
    records: List[Tuple[str, Dict]] = []
    prev_completions: List[Tuple[int, float]] = []
    for index in range(NUM_JOBS):
        now_admit = index * 0.01
        now_round = now_admit + 0.005
        job = make_job(
            job_id=index + 1,
            num_tasks=TASKS_PER_JOB,
            task_id_offset=(index + 1) * 1000,
        )
        records.append((
            "admit",
            admit_payload(
                submissions=[(f"bench-{index}", job)],
                machines_added=[],
                machines_removed=[],
                completions=prev_completions,
                now=now_admit,
            ),
        ))
        machine_id = index % num_machines
        placements = {task.task_id: machine_id for task in job.tasks}
        records.append((
            "round",
            round_payload(
                SimpleNamespace(
                    placements=placements, migrations={}, preemptions=[],
                    degraded=False,
                ),
                now=now_round,
            ),
        ))
        prev_completions = [(task.task_id, now_round) for task in job.tasks]
    return records


def _oracle_state(num_machines: int):
    """Apply the same workload in memory: the replay-equivalence baseline."""
    state = build_cluster_state(num_machines)
    prev: List[Tuple[int, float]] = []
    for index in range(NUM_JOBS):
        now_admit = index * 0.01
        now_round = now_admit + 0.005
        for task_id, start in prev:
            state.complete_task(task_id, now_admit)
        job = make_job(
            job_id=index + 1,
            num_tasks=TASKS_PER_JOB,
            task_id_offset=(index + 1) * 1000,
        )
        state.submit_job(job)
        machine_id = index % num_machines
        for task in job.tasks:
            state.place_task(task.task_id, machine_id, now_round)
        prev = [(task.task_id, now_round) for task in job.tasks]
    return state


def _append_all(layer: DurabilityLayer, records) -> float:
    start = time.perf_counter()
    for kind, payload in records:
        if kind == "admit":
            layer.log_admission(payload)
        else:
            layer.log_round(payload)
    return time.perf_counter() - start


def test_wal_append_and_replay_rates(tmp_path, benchmark):
    """Append rate (fsync on/off) and replay rate, with replay equivalence."""
    num_machines = 128
    records = _workload(num_machines)

    rates = {}
    for fsync in (True, False):
        directory = tmp_path / ("fsync-on" if fsync else "fsync-off")
        layer = DurabilityLayer(directory, fsync=fsync)
        layer.write_snapshot(
            snapshot_cluster_state(build_cluster_state(num_machines)),
            new_ledger(), 0.0,
        )
        elapsed = _append_all(layer, records)
        layer.close()
        rates[fsync] = (len(records) / elapsed, layer.bytes_appended / elapsed)

    # Replay the fsync'd directory and prove equivalence to the oracle.
    replay_start = time.perf_counter()
    recovered = recover(tmp_path / "fsync-on")
    replay_elapsed = time.perf_counter() - replay_start
    assert recovered.replayed_records == len(records)
    assert not recovered.torn_tail_dropped
    assert recovered.state == _oracle_state(num_machines)
    ledger = recovered.ledger
    assert ledger["accepted"] == NUM_JOBS * TASKS_PER_JOB
    assert ledger["placed"] == NUM_JOBS * TASKS_PER_JOB
    assert ledger["completions"] == (NUM_JOBS - 1) * TASKS_PER_JOB
    assert ledger["rounds"] == NUM_JOBS

    replay_rate = recovered.replayed_records / max(replay_elapsed, 1e-9)
    print()
    print(
        f"WAL rates ({NUM_JOBS} jobs x {TASKS_PER_JOB} tasks = "
        f"{len(records)} records, {num_machines} machines)"
    )
    print(format_table(
        ["path", "records/s", "MiB/s"],
        [
            ["append, fsync on", f"{rates[True][0]:.0f}",
             f"{rates[True][1] / (1 << 20):.2f}"],
            ["append, fsync off", f"{rates[False][0]:.0f}",
             f"{rates[False][1] / (1 << 20):.2f}"],
            ["replay (recover)", f"{replay_rate:.0f}", "-"],
        ],
    ))

    # pytest-benchmark kernel: one fsync'd admit append (the per-batch
    # cost every admission pays on the serving path).
    layer = DurabilityLayer(tmp_path / "kernel", fsync=True)
    layer.write_snapshot(
        snapshot_cluster_state(build_cluster_state(8)), new_ledger(), 0.0
    )
    payload = records[0][1]
    try:
        benchmark(lambda: layer.log_admission(payload))
    finally:
        layer.close()


def test_snapshot_size_and_restore_at_scale(tmp_path):
    """Snapshot bytes, write time, and restore time at 128/512 machines."""
    rows = []
    for num_machines in SNAPSHOT_MACHINES:
        state = build_cluster_state(num_machines, utilization=0.5)
        layer = DurabilityLayer(tmp_path / f"m{num_machines}", fsync=True)
        write_start = time.perf_counter()
        path = layer.write_snapshot(
            snapshot_cluster_state(state), new_ledger(),
            clock=1.0,
        )
        write_elapsed = time.perf_counter() - write_start
        layer.close()
        size = path.stat().st_size

        restore_start = time.perf_counter()
        recovered = recover(tmp_path / f"m{num_machines}")
        restore_elapsed = time.perf_counter() - restore_start
        assert recovered.replayed_records == 0
        assert recovered.state == state, (
            f"snapshot round trip diverged at {num_machines} machines"
        )
        rows.append([
            str(num_machines),
            str(len(state.tasks)),
            f"{size / 1024:.1f}",
            f"{write_elapsed * 1000:.1f}",
            f"{restore_elapsed * 1000:.1f}",
        ])

    print()
    print("Snapshot size and restore time (50% slot utilization, fsync on)")
    print(format_table(
        ["machines", "tasks", "size [KiB]", "write [ms]", "restore [ms]"],
        rows,
    ))
