"""Figure 8: relaxation degrades near full cluster utilization.

The paper pushes a 90 %-utilized cluster towards oversubscription by
submitting increasingly large jobs: relaxation's runtime rises rapidly and
crosses cost scaling at roughly 93 % slot utilization, while cost scaling is
insensitive to load.  The benchmark reproduces the sweep at reduced scale
and checks (i) relaxation's runtime grows much faster than cost scaling's
and (ii) a crossover exists in the oversubscribed regime.
"""

from __future__ import annotations

import time

import pytest

from benchmarks.common import (
    add_pending_batch_job,
    bench_scale,
    build_cluster_state,
    build_policy_network,
)
from repro.analysis.reporting import format_table
from repro.core import QuincyPolicy
from repro.solvers import CostScalingSolver, RelaxationSolver

MACHINES = 64 * bench_scale()
BASE_UTILIZATION = 0.90
#: Pending-job sizes expressed as a fraction of the cluster's free slots;
#: above 1.0 the cluster is oversubscribed.
PRESSURE_LEVELS = [0.25, 0.75, 1.5, 3.0, 6.0]


def build_network(pressure: float, seed: int = 0):
    state = build_cluster_state(MACHINES, utilization=BASE_UTILIZATION, seed=seed)
    free_slots = state.total_free_slots()
    pending = max(1, int(free_slots * pressure))
    add_pending_batch_job(state, pending, seed=seed + 1, with_locality=False)
    _, network = build_policy_network(state, QuincyPolicy())
    total_slots = state.topology.total_slots
    utilization_after = min(
        1.0 * (total_slots * BASE_UTILIZATION + pending) / total_slots, 2.0
    )
    return network, utilization_after


def test_fig08_relaxation_degrades_under_oversubscription(benchmark):
    """Regenerates Figure 8 (scaled down)."""
    # Warm both solvers once so the first pressure level's sample is not a
    # cold-start outlier (it anchors the growth-ratio assertion below).
    warmup_network, _ = build_network(PRESSURE_LEVELS[0])
    RelaxationSolver().solve(warmup_network.copy())
    CostScalingSolver().solve(warmup_network.copy())

    rows = []
    relaxation_times = []
    cost_scaling_times = []
    for pressure in PRESSURE_LEVELS:
        network, utilization = build_network(pressure)
        start = time.perf_counter()
        RelaxationSolver().solve(network.copy())
        relaxation_time = time.perf_counter() - start
        start = time.perf_counter()
        CostScalingSolver().solve(network.copy())
        cost_scaling_time = time.perf_counter() - start
        relaxation_times.append(relaxation_time)
        cost_scaling_times.append(cost_scaling_time)
        rows.append([
            f"{min(utilization, 1.0) * 100:.0f}%" + ("+" if utilization > 1.0 else ""),
            f"{relaxation_time:.3f}",
            f"{cost_scaling_time:.3f}",
        ])
    print()
    print(f"Figure 8: runtime vs slot utilization ({MACHINES} machines, 90% base load)")
    print(format_table(["target utilization", "relaxation [s]", "cost scaling [s]"], rows))

    # Relaxation degrades much faster than cost scaling as pressure rises.
    relaxation_growth = relaxation_times[-1] / max(relaxation_times[0], 1e-9)
    cost_scaling_growth = cost_scaling_times[-1] / max(cost_scaling_times[0], 1e-9)
    print(f"relaxation grew {relaxation_growth:.1f}x, cost scaling {cost_scaling_growth:.1f}x")
    assert relaxation_growth > 2 * cost_scaling_growth
    # In the uncontended regime relaxation wins comfortably.
    assert relaxation_times[0] < cost_scaling_times[0]

    network, _ = build_network(PRESSURE_LEVELS[-1])
    benchmark(lambda: RelaxationSolver().solve(network.copy()))
