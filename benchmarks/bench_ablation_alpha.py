"""Ablation: the cost-scaling alpha factor (Section 7.2 footnote).

Quincy's cs2 solver divides epsilon by alpha = 2 between scaling phases; the
paper found alpha = 9 to be ~30 % faster on scheduling graphs.  This ablation
sweeps alpha on the same Quincy-policy graph and reports runtime and the
number of scaling phases, asserting the qualitative claim: a larger alpha
uses fewer phases and the tuned value is not slower than cs2's default.
"""

from __future__ import annotations

import time

import pytest

from benchmarks.common import bench_scale, scheduling_network
from repro.analysis.reporting import format_table
from repro.solvers import CostScalingSolver

MACHINES = 48 * bench_scale()
ALPHAS = (2, 4, 9, 16)


def measure(alpha: int, network):
    solver = CostScalingSolver(alpha=alpha)
    start = time.perf_counter()
    result = solver.solve(network.copy())
    runtime = time.perf_counter() - start
    return runtime, result.statistics.epsilon_phases, result.total_cost


def test_ablation_alpha_factor(benchmark):
    """Larger alpha -> fewer scaling phases; alpha=9 never loses to alpha=2."""
    network = scheduling_network(MACHINES, utilization=0.6, pending_tasks=MACHINES)

    rows = []
    runtimes = {}
    phases = {}
    costs = set()
    for alpha in ALPHAS:
        runtime, num_phases, cost = measure(alpha, network)
        runtimes[alpha] = runtime
        phases[alpha] = num_phases
        costs.add(cost)
        rows.append([str(alpha), f"{runtime:.3f}", str(num_phases)])

    print()
    print(f"Ablation: cost-scaling alpha factor ({MACHINES} machines, Quincy policy)")
    print(format_table(["alpha", "runtime [s]", "scaling phases"], rows))

    # The alpha factor is a performance knob only: every setting must find a
    # flow of the same optimal cost.
    assert len(costs) == 1
    # More aggressive scaling uses fewer phases...
    assert phases[9] < phases[2]
    assert phases[16] <= phases[9]
    # ...and the paper's tuned value must not lose badly to cs2's default
    # (the paper reports ~30 % faster; at this scale we assert no regression
    # beyond noise).
    assert runtimes[9] <= runtimes[2] * 1.25

    benchmark(lambda: CostScalingSolver(alpha=9).solve(network.copy()))
