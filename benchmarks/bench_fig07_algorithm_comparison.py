"""Figure 7: average runtime of the four MCMF algorithms vs cluster size.

The paper's result: relaxation is fastest despite its worst-case bound
(two orders of magnitude ahead of cost scaling at 12,500 machines), cost
scaling is second, successive shortest path scales poorly, and cycle
canceling is unusable.  At benchmark scale the same ordering and the growing
relaxation advantage are what we check.
"""

from __future__ import annotations

import time

import pytest

from benchmarks.common import bench_scale, scheduling_network
from repro.analysis.reporting import format_table
from repro.solvers import (
    CostScalingSolver,
    CycleCancelingSolver,
    RelaxationSolver,
    SuccessiveShortestPathSolver,
)

CLUSTER_SIZES = [16 * bench_scale(), 48 * bench_scale(), 128 * bench_scale()]
#: Cycle canceling is orders of magnitude slower; only run it on the
#: smallest cluster (the paper similarly cannot run it at full scale).
CYCLE_CANCELING_LIMIT = 16 * bench_scale()


def measure(solver_factory, network, repeats: int = 2) -> float:
    """Return the best-of-N runtime to damp scheduler/CPU noise."""
    best = float("inf")
    for _ in range(repeats):
        solver = solver_factory()
        start = time.perf_counter()
        solver.solve(network.copy())
        best = min(best, time.perf_counter() - start)
    return best


def test_fig07_average_algorithm_runtime_vs_cluster_size(benchmark):
    """Regenerates Figure 7 (scaled down) and checks the algorithm ordering."""
    factories = {
        "cycle_canceling": CycleCancelingSolver,
        "successive_shortest_path": SuccessiveShortestPathSolver,
        "cost_scaling": CostScalingSolver,
        "relaxation": RelaxationSolver,
    }
    results = {name: {} for name in factories}
    for size in CLUSTER_SIZES:
        network = scheduling_network(size, utilization=0.5, pending_tasks=size)
        for name, factory in factories.items():
            if name == "cycle_canceling" and size > CYCLE_CANCELING_LIMIT:
                continue
            results[name][size] = measure(factory, network)

    rows = []
    for name in factories:
        row = [name]
        for size in CLUSTER_SIZES:
            value = results[name].get(size)
            row.append(f"{value:.3f}" if value is not None else "-")
        rows.append(row)
    print()
    print("Figure 7: average MCMF algorithm runtime [s] vs cluster size")
    print(format_table(["algorithm"] + [f"{s} machines" for s in CLUSTER_SIZES], rows))

    largest = CLUSTER_SIZES[-1]
    smallest = CLUSTER_SIZES[0]
    # Relaxation is (essentially) the fastest algorithm at every size; at the
    # smallest scales successive shortest path can be within noise of it, so
    # allow a modest tolerance there but require a strict win at scale.
    for size in CLUSTER_SIZES:
        competitors = [results[n][size] for n in results if size in results[n]]
        assert results["relaxation"][size] <= min(competitors) * 1.5
    assert results["relaxation"][largest] == min(
        results[n][largest] for n in results if largest in results[n]
    )
    # Cycle canceling is the slowest where it runs at all ...
    assert results["cycle_canceling"][smallest] == max(
        results[n][smallest] for n in results
    )
    # ... and relaxation beats cost scaling by a growing margin at scale.
    small_ratio = results["cost_scaling"][smallest] / results["relaxation"][smallest]
    large_ratio = results["cost_scaling"][largest] / results["relaxation"][largest]
    print(f"cost_scaling/relaxation ratio: {small_ratio:.1f}x at {smallest} machines, "
          f"{large_ratio:.1f}x at {largest} machines")
    assert large_ratio > 2.0

    network = scheduling_network(largest, utilization=0.5, pending_tasks=largest)
    benchmark(lambda: RelaxationSolver().solve(network.copy()))
