"""Figure 19: placement quality on the 40-machine testbed.

Short batch analytics tasks (3.5-5 s, 4-8 GB inputs) run under different
schedulers, (a) on an otherwise idle network and (b) with high-priority
iperf and nginx background traffic.  Firmament's network-aware policy keeps
task response times close to the idle-isolation baseline and improves the
99th percentile by 3.4x over SwarmKit/Kubernetes and 6.2x over Sparrow in
the paper's loaded configuration.

The benchmark runs the flow-level testbed model with the same workload for
every scheduler and reports the response-time percentiles for both network
conditions.
"""

from __future__ import annotations

import pytest

from repro.analysis.reporting import format_table
from repro.baselines import (
    KubernetesScheduler,
    MesosScheduler,
    SparrowScheduler,
    SwarmKitScheduler,
)
from repro.core import FirmamentScheduler, NetworkAwarePolicy
from repro.testbed import TestbedConfig, TestbedExperiment

NUM_JOBS = 16
TASKS_PER_JOB = 10


def scheduler_fleet():
    return [
        ("firmament", FirmamentScheduler(NetworkAwarePolicy(), allow_migrations=False)),
        ("swarmkit", SwarmKitScheduler()),
        ("kubernetes", KubernetesScheduler()),
        ("mesos", MesosScheduler()),
        ("sparrow", SparrowScheduler()),
    ]


def run_condition(with_background: bool):
    config = TestbedConfig(
        num_jobs=NUM_JOBS, tasks_per_job=TASKS_PER_JOB, with_background=with_background
    )
    experiment = TestbedExperiment(config)
    results = {"idle (isolation)": experiment.run_idle_baseline()}
    for name, scheduler in scheduler_fleet():
        results[name] = experiment.run_with_scheduler(scheduler, name)
    return results


def print_results(title, results):
    rows = []
    for name, run in results.items():
        rows.append([
            name, f"{run.percentile(50):.2f}", f"{run.percentile(90):.2f}",
            f"{run.percentile(99):.2f}",
        ])
    print()
    print(title)
    print(format_table(["scheduler", "p50 [s]", "p90 [s]", "p99 [s]"], rows))


def test_fig19a_idle_network(benchmark):
    """Figure 19a: short batch tasks on an otherwise idle network."""
    results = run_condition(with_background=False)
    print_results("Figure 19a: task response time, idle network", results)

    idle = results["idle (isolation)"]
    firmament = results["firmament"]
    # Firmament's tail stays close to the isolation baseline on an idle
    # network (the paper: closest to baseline above the 80th percentile).
    assert firmament.percentile(90) <= idle.percentile(90) * 1.6
    # And it is never the worst scheduler.
    worst_p99 = max(run.percentile(99) for name, run in results.items()
                    if name != "idle (isolation)")
    assert firmament.percentile(99) < worst_p99

    config = TestbedConfig(num_jobs=8, tasks_per_job=TASKS_PER_JOB, with_background=False)
    experiment = TestbedExperiment(config)
    benchmark(lambda: experiment.run_with_scheduler(
        FirmamentScheduler(NetworkAwarePolicy(), allow_migrations=False), "firmament"
    ))


def test_fig19b_with_background_traffic(benchmark):
    """Figure 19b: the same workload with iperf/nginx background traffic."""
    results = run_condition(with_background=True)
    print_results("Figure 19b: task response time, with background traffic", results)

    firmament = results["firmament"]
    swarmkit = results["swarmkit"]
    kubernetes = results["kubernetes"]
    sparrow = results["sparrow"]
    tail_factor_swarmkit = swarmkit.percentile(99) / firmament.percentile(99)
    tail_factor_sparrow = sparrow.percentile(99) / firmament.percentile(99)
    print(f"p99 improvement over swarmkit: {tail_factor_swarmkit:.1f}x, "
          f"over sparrow: {tail_factor_sparrow:.1f}x")

    # The network-aware policy improves the tail over schedulers that ignore
    # network load (the paper reports 3.4x and 6.2x; the factor depends on
    # scale, but Firmament must win clearly).
    assert firmament.percentile(99) < swarmkit.percentile(99)
    assert firmament.percentile(99) < kubernetes.percentile(99)
    assert firmament.percentile(99) < sparrow.percentile(99)
    # Firmament's own tail stays within a small factor of the idle baseline.
    idle = results["idle (isolation)"]
    assert firmament.percentile(99) <= idle.percentile(99) * 3.0

    config = TestbedConfig(num_jobs=8, tasks_per_job=TASKS_PER_JOB, with_background=True)
    experiment = TestbedExperiment(config)
    benchmark(lambda: experiment.run_with_scheduler(
        FirmamentScheduler(NetworkAwarePolicy(), allow_migrations=False), "firmament"
    ))
