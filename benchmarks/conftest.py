"""Pytest configuration for the benchmark harness."""

import sys
from pathlib import Path

# Make `benchmarks.common` importable regardless of pytest's rootdir setup.
sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
