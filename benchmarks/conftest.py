"""Pytest configuration for the benchmark harness."""

import sys
from pathlib import Path

import pytest

# Make `benchmarks.common` importable regardless of pytest's rootdir setup.
sys.path.insert(0, str(Path(__file__).resolve().parent.parent))


def pytest_collection_modifyitems(items):
    """Mark every benchmark item so `-m "not benchmark"` deselects them."""
    for item in items:
        if "benchmarks" in str(item.fspath):
            item.add_marker(pytest.mark.benchmark)
