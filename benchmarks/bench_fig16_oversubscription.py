"""Figure 16: running two algorithms beats either one under oversubscription.

The paper shrinks the per-machine slot count until the cluster reaches 97 %
average utilization, producing transient oversubscription.  Relaxation alone
takes hundreds of seconds per run in those periods, cost scaling alone is
stable but always slow, and Firmament -- speculatively running both --
follows the faster of the two and recovers from the overload earlier.

The benchmark drives a sequence of scheduling rounds through an overloaded
and then a recovering cluster and compares the per-round effective solver
runtime for the three configurations.
"""

from __future__ import annotations

import random
import time

import pytest

from benchmarks.common import add_pending_batch_job, bench_scale, build_cluster_state
from repro.analysis.reporting import format_table
from repro.core import GraphManager, QuincyPolicy
from repro.solvers import (
    CostScalingSolver,
    DualAlgorithmExecutor,
    IncrementalCostScalingSolver,
    RelaxationSolver,
)

MACHINES = 48 * bench_scale()
ROUNDS = 4


def build_round_networks():
    """Produce the sequence of flow networks for the experiment's rounds.

    Rounds 0-1 are oversubscribed (pending tasks far exceed free slots);
    rounds 2-3 model the recovery after a wave of completions.
    """
    rng = random.Random(61)
    state = build_cluster_state(MACHINES, utilization=0.97, seed=61)
    manager = GraphManager(QuincyPolicy())
    networks = []
    for round_index in range(ROUNDS):
        if round_index < 2:
            add_pending_batch_job(
                state, MACHINES * 2, seed=62 + round_index,
                job_id=700_000 + round_index, submit_time=10.0 * round_index,
            )
        else:
            running = state.running_tasks()
            for task in rng.sample(running, len(running) // 3):
                state.complete_task(task.task_id, now=10.0 * round_index)
        networks.append(manager.update(state, now=10.0 * round_index).copy())
        # Place whatever fits so the next round sees realistic occupancy.
        for task in state.pending_tasks():
            for machine_id in state.topology.machines:
                if state.free_slots(machine_id) > 0:
                    state.place_task(task.task_id, machine_id, now=10.0 * round_index)
                    break
    return networks


def test_fig16_dual_algorithm_bounds_overload_latency(benchmark):
    """Regenerates Figure 16 (scaled down)."""
    networks = build_round_networks()

    relaxation_times = []
    cost_scaling_times = []
    firmament_times = []
    dual = DualAlgorithmExecutor(
        relaxation=RelaxationSolver(), incremental=IncrementalCostScalingSolver()
    )
    for network in networks:
        start = time.perf_counter()
        RelaxationSolver().solve(network.copy())
        relaxation_times.append(time.perf_counter() - start)

        start = time.perf_counter()
        CostScalingSolver().solve(network.copy())
        cost_scaling_times.append(time.perf_counter() - start)

        detailed = dual.solve_detailed(network.copy())
        firmament_times.append(detailed.effective_runtime_seconds)

    rows = []
    for index in range(ROUNDS):
        phase = "oversubscribed" if index < 2 else "recovering"
        rows.append([
            index, phase, f"{relaxation_times[index]:.3f}",
            f"{cost_scaling_times[index]:.3f}", f"{firmament_times[index]:.3f}",
        ])
    print()
    print(f"Figure 16: per-round solver runtime [s] at ~97% utilization ({MACHINES} machines)")
    print(format_table(
        ["round", "phase", "relaxation only", "cost scaling only", "firmament (dual)"],
        rows,
    ))

    # Firmament's effective latency is never meaningfully worse than the
    # better single algorithm in any round (allowing for timing noise on
    # millisecond-scale kernels) ...
    for index in range(ROUNDS):
        best_single = min(relaxation_times[index], cost_scaling_times[index])
        assert firmament_times[index] <= best_single * 2.0 + 0.01
    # ... and over the whole overload episode it does not lose to either
    # single-algorithm configuration.
    assert sum(firmament_times) <= sum(relaxation_times) * 1.2 + 0.02
    assert sum(firmament_times) <= sum(cost_scaling_times) * 1.2 + 0.02

    benchmark(lambda: DualAlgorithmExecutor().solve(networks[0].copy()))
