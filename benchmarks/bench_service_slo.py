"""Service-level placement SLO: p50/p99 submission-to-placement latency.

Drives a real ``firmament-repro serve`` process end to end: the service
listens on an ephemeral TCP port, the closed-loop load generator
(:mod:`repro.service.loadgen`) offers sustained load at two or more
levels (offered load is the number of concurrent closed-loop clients),
and the benchmark reports the p50/p99 submission-to-placement latency the
service achieved at each level, plus the service's conservation counters.

The assertions pin the service contract rather than absolute speed:

* every accepted task is placed (the cluster is sized so the offered load
  fits), and the conservation law ``accepted == placed + pending +
  rejected`` holds exactly at every load level and at drain;
* latency percentiles are finite and ordered (p50 <= p99);
* the drained server process exits 0 (it self-checks conservation).
"""

from __future__ import annotations

import json
import os
import socket
import subprocess
import sys

from benchmarks.common import bench_scale
from repro.analysis.reporting import format_table
from repro.service.loadgen import run_loadgen_sync

MACHINES = 128 * bench_scale()

#: Offered-load levels: concurrent closed-loop clients.
LOAD_LEVELS = (4, 16)
JOBS_PER_CLIENT = 4
TASKS_PER_JOB = 8


def test_service_slo_p99_under_load(benchmark):
    """p50/p99 placement latency at >= 2 offered loads, exact conservation."""
    env = dict(os.environ)
    repo_src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
    env["PYTHONPATH"] = repo_src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli.main", "serve",
            "--machines", str(MACHINES),
            "--round-interval", "0.02",
            "--time-scale", "0.01",
            "--serve-seconds", "300",
        ],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True, env=env,
    )
    try:
        handshake = proc.stdout.readline().strip()
        assert handshake.startswith("serving on "), handshake
        port = int(handshake.rsplit(":", 1)[1])

        rows = []
        results = {}
        for clients in LOAD_LEVELS:
            result = run_loadgen_sync(
                "127.0.0.1", port,
                clients=clients,
                jobs_per_client=JOBS_PER_CLIENT,
                tasks_per_job=TASKS_PER_JOB,
                duration=1.0,
            )
            results[clients] = result
            stats = result.service_stats
            assert stats is not None
            # The conservation law holds exactly while under load.
            assert stats["conserved"] is True
            # The cluster fits the offered load: everything gets placed.
            assert result.tasks_placed == result.tasks_accepted
            assert result.errors == 0
            rows.append([
                str(clients),
                str(result.tasks_accepted),
                f"{result.latency_percentile(50) * 1000:.1f}",
                f"{result.latency_percentile(99) * 1000:.1f}",
                str(stats["rounds"]),
                str(stats["degraded_rounds"]),
            ])

        print()
        print(
            f"Service placement SLO ({MACHINES} machines, closed-loop "
            f"clients x {JOBS_PER_CLIENT} jobs x {TASKS_PER_JOB} tasks)"
        )
        print(format_table(
            ["clients", "tasks", "p50 [ms]", "p99 [ms]", "rounds",
             "degraded"],
            rows,
        ))

        for result in results.values():
            assert result.latencies, "no placement latencies measured"
            assert (
                result.latency_percentile(50) <= result.latency_percentile(99)
            )

        # Drain via the protocol; the server self-checks conservation and
        # must exit 0.
        with socket.create_connection(("127.0.0.1", port), timeout=10) as sock:
            sock.sendall(b'{"op": "shutdown"}\n')
            final = json.loads(sock.recv(65536).split(b"\n")[0])
        assert final["conserved"] is True
        out, _ = proc.communicate(timeout=60)
        assert proc.returncode == 0, out
        assert "conservation: accepted == placed + pending + rejected" in out

        # pytest-benchmark kernel: one full closed-loop burst at the low
        # load level against a fresh in-process service (subprocess startup
        # excluded so the number is the service round trip, not fork+import).
        benchmark(_inprocess_burst)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.communicate()


def _spawn_serve(extra=()):
    """Start a ``serve`` subprocess, return ``(proc, port)`` after handshake."""
    env = dict(os.environ)
    repo_src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
    env["PYTHONPATH"] = repo_src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli.main", "serve",
            "--machines", str(MACHINES),
            "--round-interval", "0.02",
            "--time-scale", "0.01",
            "--serve-seconds", "300",
            *extra,
        ],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True, env=env,
    )
    handshake = proc.stdout.readline().strip()
    assert handshake.startswith("serving on "), handshake
    return proc, int(handshake.rsplit(":", 1)[1])


def test_wal_overhead_p99_durability_on_vs_off(tmp_path, benchmark):
    """WAL-overhead experiment (ISSUE 10): p99 submission-to-placement
    latency at 4/16 clients with the durability layer off vs on (fsync'd
    write-ahead log + snapshots on a real state directory).

    The guard is relative, not absolute: with durability on, p99 at each
    load level must stay within ``max(2 x p99_off, p99_off + 50ms)`` --
    the WAL is one fsync'd append per admission batch, so it must never
    dominate the round interval.
    """
    p99 = {}  # (durable, clients) -> seconds
    rows = []
    for durable in (False, True):
        extra = ()
        if durable:
            extra = ("--state-dir", str(tmp_path / "slo-state"))
        proc, port = _spawn_serve(extra)
        try:
            for clients in LOAD_LEVELS:
                result = run_loadgen_sync(
                    "127.0.0.1", port,
                    clients=clients,
                    jobs_per_client=JOBS_PER_CLIENT,
                    tasks_per_job=TASKS_PER_JOB,
                    duration=1.0,
                )
                stats = result.service_stats
                assert stats is not None and stats["conserved"] is True
                assert result.tasks_placed == result.tasks_accepted
                assert result.errors == 0
                p99[(durable, clients)] = result.latency_percentile(99)
                rows.append([
                    "on" if durable else "off",
                    str(clients),
                    str(result.tasks_accepted),
                    f"{result.latency_percentile(50) * 1000:.1f}",
                    f"{result.latency_percentile(99) * 1000:.1f}",
                ])
            with socket.create_connection(("127.0.0.1", port), timeout=10) as sock:
                sock.sendall(b'{"op": "shutdown"}\n')
                final = json.loads(sock.recv(65536).split(b"\n")[0])
            assert final["conserved"] is True
            out, _ = proc.communicate(timeout=60)
            assert proc.returncode == 0, out
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()

    print()
    print(
        f"WAL overhead ({MACHINES} machines, fsync on): p99 with durability "
        "on vs off"
    )
    print(format_table(
        ["durability", "clients", "tasks", "p50 [ms]", "p99 [ms]"], rows
    ))

    for clients in LOAD_LEVELS:
        off = p99[(False, clients)]
        on = p99[(True, clients)]
        assert on <= max(2.0 * off, off + 0.05), (
            f"durability-on p99 {on * 1000:.1f}ms at {clients} clients "
            f"blew past the guard (off: {off * 1000:.1f}ms)"
        )

    benchmark(_inprocess_burst)


def _inprocess_burst() -> None:
    import asyncio

    from repro.cluster.state import ClusterState
    from repro.cluster.topology import build_topology
    from repro.core import FirmamentScheduler
    from repro.core.policies import QuincyPolicy

    from repro.service import SchedulerService, ServiceConfig

    async def burst():
        state = ClusterState(build_topology(32))
        service = SchedulerService(
            state,
            FirmamentScheduler(QuincyPolicy()),
            ServiceConfig(round_interval=0.005, time_scale=0.01),
        )
        await service.start()
        try:
            from repro.service.loadgen import run_loadgen

            result = await run_loadgen(
                "127.0.0.1", service.port, clients=2, jobs_per_client=2,
                tasks_per_job=4, duration=1.0, poll_stats=False,
            )
            assert result.tasks_placed == result.tasks_accepted
        finally:
            await service.stop()

    asyncio.run(burst())
