"""Residual construction vs delta patch across cluster sizes.

The tentpole of the delta-driven solver core: instead of reconstructing the
array-based :class:`~repro.solvers.residual.ResidualNetwork` from the
``FlowNetwork`` object graph every scheduling round (O(nodes + arcs) of
Python object traversal), the incremental solver patches its persistent
residual from the typed change batch the graph manager emits
(O(|changes|)).  This benchmark measures both operations on the same
realistic round-over-round change batches and reports the ratio; the gap
widens with cluster size because the batch size tracks cluster *churn*,
not cluster size.
"""

from __future__ import annotations

import random
import time

import pytest

from benchmarks.common import (
    add_pending_batch_job,
    bench_scale,
    build_cluster_state,
)
from repro.analysis.reporting import format_table
from repro.core import GraphManager, QuincyPolicy
from repro.solvers.residual import ResidualNetwork

SIZES = [16 * bench_scale(), 32 * bench_scale(), 64 * bench_scale()]
REPS = 5


def round_pair(machines: int):
    """Build two consecutive scheduling rounds and the batch between them."""
    state = build_cluster_state(machines, utilization=0.6, seed=51)
    add_pending_batch_job(state, machines // 2, seed=52)
    manager = GraphManager(QuincyPolicy())
    # Snapshot: the manager mutates one persistent network in place, so the
    # "before" side of the pair must be copied out of it.
    before = manager.update(state, now=10.0).copy()

    rng = random.Random(53)
    for task in state.pending_tasks():
        for machine_id in state.topology.machines:
            if state.free_slots(machine_id) > 0:
                state.place_task(task.task_id, machine_id, now=10.0)
                break
    running = state.running_tasks()
    for task in rng.sample(running, min(len(running) // 10 + 1, len(running))):
        state.complete_task(task.task_id, now=20.0)
    add_pending_batch_job(state, machines // 4, seed=54, job_id=810_000,
                          submit_time=20.0)
    after = manager.update(state, now=20.0)
    return before, after, manager.last_changes


def measure(machines: int):
    before, after, batch = round_pair(machines)
    build_times = []
    patch_times = []
    for _ in range(REPS):
        start = time.perf_counter()
        ResidualNetwork(after)
        build_times.append(time.perf_counter() - start)

        residual = ResidualNetwork(before)  # untimed: the persistent state
        start = time.perf_counter()
        residual.apply_changes(batch)
        patch_times.append(time.perf_counter() - start)
    return (
        after.num_arcs,
        len(batch),
        min(build_times),
        min(patch_times),
    )


def test_residual_delta_patch_beats_rebuild(benchmark):
    """Delta-patching the residual must beat rebuilding it from the graph."""
    rows = []
    ratios = {}
    for machines in SIZES:
        arcs, batch_size, build_s, patch_s = measure(machines)
        ratios[machines] = build_s / max(patch_s, 1e-9)
        rows.append([
            str(machines), str(arcs), str(batch_size),
            f"{build_s * 1e3:.2f}", f"{patch_s * 1e3:.2f}",
            f"{ratios[machines]:.1f}x",
        ])
    print()
    print("Residual construction vs delta patch (min over "
          f"{REPS} reps, scale={bench_scale()})")
    print(format_table(
        ["machines", "arcs", "|changes|", "rebuild [ms]", "patch [ms]", "ratio"],
        rows,
    ))

    # The patch is O(|changes|); the rebuild is O(nodes + arcs).  At the
    # largest size the patch must win clearly.
    assert ratios[SIZES[-1]] > 2.0

    # pytest-benchmark kernel: patch at the largest size (fresh residual per
    # round via setup, because a batch only applies once).
    before, _, batch = round_pair(SIZES[-1])

    def setup():
        return (ResidualNetwork(before), batch), {}

    benchmark.pedantic(
        lambda residual, changes: residual.apply_changes(changes),
        setup=setup,
        rounds=20,
    )
