"""Figure 12: problem-specific heuristics.

(a) Arc prioritization biases relaxation's tree growth towards nodes with
    demand; the paper reports ~45 % lower runtime on contended graphs.
(b) Efficient task removal drains the stale flow of removed tasks down to
    the sink before incremental cost scaling runs; the paper reports ~10 %.

The benchmark measures both heuristics on/off on the workloads they target
and requires the heuristic never to hurt and to help on the contended case.
"""

from __future__ import annotations

import random
import time

import pytest

from benchmarks.common import (
    add_pending_batch_job,
    bench_scale,
    build_cluster_state,
    build_policy_network,
)
from repro.analysis.reporting import format_table
from repro.cluster import Job, Task
from repro.core import GraphManager, QuincyPolicy
from repro.core.policies import LoadSpreadingPolicy
from repro.solvers import IncrementalCostScalingSolver, RelaxationSolver

MACHINES = 48 * bench_scale()


def contended_network():
    """Load-spreading policy with a big job: the Figure 12a workload."""
    state = build_cluster_state(MACHINES, utilization=0.2, seed=3)
    job = Job(job_id=9_000, submit_time=0.0)
    for index in range(MACHINES * 6):
        job.add_task(Task(task_id=9_000_000 + index, job_id=9_000, duration=120.0))
    state.submit_job(job)
    _, network = build_policy_network(state, LoadSpreadingPolicy())
    return network


def best_of(callable_, repeats=2):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - start)
    return best


def test_fig12a_arc_prioritization(benchmark):
    """Arc prioritization reduces relaxation work on contended graphs."""
    network = contended_network()
    with_heuristic = RelaxationSolver(arc_prioritization=True)
    without_heuristic = RelaxationSolver(arc_prioritization=False)

    time_with = best_of(lambda: with_heuristic.solve(network.copy()))
    time_without = best_of(lambda: without_heuristic.solve(network.copy()))
    scans_with = with_heuristic.solve(network.copy()).statistics.arcs_scanned
    scans_without = without_heuristic.solve(network.copy()).statistics.arcs_scanned

    print()
    print("Figure 12a: relaxation with/without arc prioritization (AP)")
    print(format_table(
        ["variant", "runtime [s]", "arcs scanned"],
        [["no AP", f"{time_without:.3f}", scans_without],
         ["AP", f"{time_with:.3f}", scans_with]],
    ))
    print(f"runtime reduction: {100 * (1 - time_with / time_without):.0f}%")
    # The heuristic must not scan more arcs; runtime is reported for context
    # but only loosely bounded because the kernels run for milliseconds.
    assert scans_with <= scans_without
    assert time_with <= time_without * 1.5

    benchmark(lambda: RelaxationSolver(arc_prioritization=True).solve(network.copy()))


def test_fig12b_efficient_task_removal(benchmark):
    """Task-removal draining speeds up incremental cost scaling."""
    rng = random.Random(17)

    def run(enabled: bool) -> float:
        state = build_cluster_state(MACHINES, utilization=0.7, seed=21)
        add_pending_batch_job(state, MACHINES // 2, seed=22)
        manager = GraphManager(QuincyPolicy())
        solver = IncrementalCostScalingSolver(efficient_task_removal=enabled)
        solver.solve(manager.update(state, now=10.0))
        # A wave of running tasks completes (the Figure 12b change type).
        running = state.running_tasks()
        for task in rng.sample(running, len(running) // 3):
            state.complete_task(task.task_id, now=20.0)
        network = manager.update(state, now=20.0)
        start = time.perf_counter()
        result = solver.solve(network)
        elapsed = time.perf_counter() - start
        assert result.statistics.warm_start
        return elapsed

    time_without = run(enabled=False)
    time_with = run(enabled=True)
    print()
    print("Figure 12b: incremental cost scaling with/without task removal (TR)")
    print(format_table(
        ["variant", "runtime [s]"],
        [["no TR", f"{time_without:.3f}"], ["TR", f"{time_with:.3f}"]],
    ))
    print(f"runtime reduction: {100 * (1 - time_with / time_without):.0f}%")
    # The heuristic is a modest but real improvement (paper: ~10 %); allow
    # generous noise but it must not make things clearly worse.
    assert time_with <= time_without * 1.5

    benchmark(lambda: run(enabled=True))
