"""Figure 3: Quincy's algorithm runtime grows poorly with cluster size.

The paper replays Google-trace subsets against Quincy (flow scheduling with
a from-scratch cost-scaling solver) and shows the algorithm runtime rising
to a 64 s median / 83 s 99th percentile at 12,500 machines.  This benchmark
sweeps scaled-down cluster sizes with proportional workload growth and
reports the same box-plot percentiles; the expected shape is a superlinear
increase of runtime with cluster size.
"""

from __future__ import annotations

import time

import pytest

from benchmarks.common import bench_scale, scheduling_network
from repro.analysis.reporting import format_table
from repro.analysis.stats import boxplot_stats
from repro.solvers import CostScalingSolver

CLUSTER_SIZES = [16 * bench_scale(), 48 * bench_scale(), 96 * bench_scale(),
                 192 * bench_scale()]
RUNS_PER_SIZE = 3


def quincy_runtime_samples(num_machines: int, runs: int = RUNS_PER_SIZE):
    """Measure from-scratch cost-scaling runtimes at one cluster size."""
    samples = []
    for run in range(runs):
        network = scheduling_network(
            num_machines, utilization=0.5, pending_tasks=num_machines, seed=run
        )
        solver = CostScalingSolver()
        start = time.perf_counter()
        solver.solve(network)
        samples.append(time.perf_counter() - start)
    return samples


def test_fig03_quincy_runtime_grows_with_cluster_size(benchmark):
    """Regenerates Figure 3 (scaled down) and checks the growth shape."""
    rows = []
    medians = {}
    for size in CLUSTER_SIZES:
        stats = boxplot_stats(quincy_runtime_samples(size))
        medians[size] = stats.p50
        rows.append([size, f"{stats.p25:.3f}", f"{stats.p50:.3f}", f"{stats.p75:.3f}",
                     f"{stats.maximum:.3f}"])
    print()
    print("Figure 3: Quincy (cost scaling) algorithm runtime vs cluster size")
    print(format_table(["machines", "p25 [s]", "p50 [s]", "p75 [s]", "max [s]"], rows))

    smallest, largest = CLUSTER_SIZES[0], CLUSTER_SIZES[-1]
    growth = medians[largest] / max(medians[smallest], 1e-9)
    size_ratio = largest / smallest
    print(f"median runtime grew {growth:.1f}x for a {size_ratio:.0f}x larger cluster")
    # Quincy's runtime must grow at least linearly with cluster size (the
    # paper observes clearly superlinear growth).
    assert growth > size_ratio * 0.5

    # pytest-benchmark timing for the largest configuration.
    network = scheduling_network(largest, utilization=0.5, pending_tasks=largest, seed=99)
    benchmark(lambda: CostScalingSolver().solve(network.copy()))
