"""Sharded multi-cell scheduling: round throughput vs the monolithic solver.

The sharding layer's claim is architectural: cutting the cluster into
rack-granular cells makes each round cost the *slowest cell's* solve on a
network of |cluster|/cells -- and MCMF solve cost is superlinear in
network size, so per-cell solves shrink faster than the cell count grows.
This benchmark pins the claim on a cells x machines x churn grid: a
prefilled cluster runs a sequence of scheduling rounds under sustained
churn, and each configuration reports its median steady-state round time
(``decision.algorithm_runtime`` -- the same per-round latency yardstick
the simulator charges, i.e. the straggler cell's solve for the sharded
scheduler) and the resulting round throughput.

The acceptance gate: at the largest cluster on low-churn rounds, 4 cells
must deliver >= 3x the monolithic round throughput.  Low churn is the
honest case for the gate -- it isolates the per-round incremental solve
(delta path everywhere) from cold-build effects; the high-churn column is
reported so regressions in the dirty-routing path stay visible too.

Run directly (``python benchmarks/bench_shard_scaling.py``) or through
pytest; ``REPRO_BENCH_SCALE`` scales the cluster sizes.
"""

from __future__ import annotations

import statistics
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from benchmarks.common import bench_scale, build_cluster_state, make_job  # noqa: E402
from repro.core import FirmamentScheduler, ShardedScheduler  # noqa: E402
from repro.core.policies import QuincyPolicy  # noqa: E402
from repro.solvers import IncrementalCostScalingSolver  # noqa: E402

MACHINE_GRID = tuple(m * bench_scale() for m in (256, 512))
CELL_GRID = (1, 2, 4, 8)  # 1 = the monolithic scheduler
MACHINES_PER_RACK = 16
SLOTS_PER_MACHINE = 4
PREFILL_UTILIZATION = 0.5
ROUNDS = 8

#: Churn profiles: jobs submitted per round x tasks per job.  Low churn is
#: the steady-state case the >=3x gate runs on; high churn stresses the
#: dirty-routing and per-cell delta paths with an order of magnitude more
#: graph change per round.
CHURN_PROFILES = {"low": (1, 4), "high": (8, 4)}

#: Acceptance gate (ISSUE PR 8): 4+ cells at the largest cluster on
#: low-churn rounds must beat the monolithic round throughput >= 3x.
GATE_CELLS = 4
GATE_SPEEDUP = 3.0


def make_scheduler(num_cells: int):
    if num_cells == 1:
        return FirmamentScheduler(
            QuincyPolicy(), solver=IncrementalCostScalingSolver()
        )
    return ShardedScheduler(QuincyPolicy, num_cells=num_cells)


def median_round_seconds(num_machines: int, num_cells: int, churn: str) -> float:
    """Median steady-state round latency for one grid configuration."""
    jobs_per_round, tasks_per_job = CHURN_PROFILES[churn]
    state = build_cluster_state(
        num_machines,
        slots_per_machine=SLOTS_PER_MACHINE,
        machines_per_rack=MACHINES_PER_RACK,
        utilization=PREFILL_UTILIZATION,
    )
    scheduler = make_scheduler(num_cells)
    job_id, task_id = 900_000, 90_000_000
    samples = []
    try:
        scheduler.schedule_and_apply(state, now=0.0)  # cold build, excluded
        for round_index in range(1, ROUNDS):
            now = round_index * 5.0
            for _ in range(jobs_per_round):
                state.submit_job(
                    make_job(job_id, tasks_per_job, task_id, submit_time=now)
                )
                job_id += 1
                task_id += tasks_per_job
            decision = scheduler.schedule_and_apply(state, now=now)
            samples.append(decision.algorithm_runtime)
    finally:
        scheduler.close()
    return statistics.median(samples)


def run_grid():
    """Sweep the grid; returns {(machines, cells, churn): median_seconds}."""
    results = {}
    print()
    print("shard scaling: median steady-state round latency "
          f"({ROUNDS - 1} churn rounds, prefill {PREFILL_UTILIZATION:.0%})")
    header = f"{'machines':>9} {'churn':>6} " + "".join(
        f"{('mono' if c == 1 else f'{c} cells'):>12}" for c in CELL_GRID
    )
    print(header)
    for num_machines in MACHINE_GRID:
        for churn in CHURN_PROFILES:
            row = f"{num_machines:>9} {churn:>6} "
            for num_cells in CELL_GRID:
                median = median_round_seconds(num_machines, num_cells, churn)
                results[(num_machines, num_cells, churn)] = median
                row += f"{median * 1000:>10.2f}ms"
            print(row)
    print()
    print("round-throughput speedup vs monolithic (same machines, same churn):")
    for num_machines in MACHINE_GRID:
        for churn in CHURN_PROFILES:
            mono = results[(num_machines, 1, churn)]
            speedups = ", ".join(
                f"{c} cells {mono / results[(num_machines, c, churn)]:.1f}x"
                for c in CELL_GRID[1:]
            )
            print(f"  {num_machines} machines, {churn} churn: {speedups}")
    return results


def test_shard_scaling_round_throughput(benchmark):
    """Grid sweep + the >=3x gate at 4 cells on the largest cluster."""
    holder = {}

    def run():
        holder["results"] = run_grid()

    benchmark.pedantic(run, rounds=1, iterations=1)
    results = holder["results"]

    largest = MACHINE_GRID[-1]
    mono = results[(largest, 1, "low")]
    sharded = results[(largest, GATE_CELLS, "low")]
    speedup = mono / sharded
    print(f"gate: {GATE_CELLS} cells at {largest} machines, low churn: "
          f"{speedup:.1f}x (required >= {GATE_SPEEDUP:.0f}x)")
    assert speedup >= GATE_SPEEDUP, (
        f"{GATE_CELLS} cells delivered only {speedup:.2f}x round throughput "
        f"at {largest} machines (gate: {GATE_SPEEDUP}x)"
    )
    # Sanity on the grid's shape: more cells never makes rounds slower on
    # low churn at the largest size.
    assert results[(largest, 8, "low")] <= results[(largest, 2, "low")]


if __name__ == "__main__":
    results = run_grid()
    largest = MACHINE_GRID[-1]
    speedup = results[(largest, 1, "low")] / results[(largest, GATE_CELLS, "low")]
    print(f"gate speedup: {speedup:.1f}x")
