"""Figure 15 / Table 15b: lower locality thresholds pay off only for Firmament.

The Quincy policy's preference threshold controls how much of a task's input
must be local before a preference arc is added.  Lowering it from 14 % to
2 % adds many arcs: Quincy's cost-scaling runtime blows up (40 s+ in the
paper) while Firmament stays sub-second, and data locality improves from
56 % to 71 % of input bytes.  The benchmark measures solver runtime and the
achieved locality for both thresholds.
"""

from __future__ import annotations

import random
import time

import pytest

from benchmarks.common import bench_scale, build_cluster_state
from repro.analysis.reporting import format_table
from repro.cluster import Job, Task
from repro.core import FirmamentScheduler, GraphManager, QuincyPolicy, extract_placements
from repro.simulation.metrics import input_data_locality
from repro.solvers import CostScalingSolver, RelaxationSolver

MACHINES = 64 * bench_scale()
TASKS = MACHINES
THRESHOLDS = [0.14, 0.02]


def build_state(seed: int = 51):
    """Cluster plus a pending batch job with widely spread block locality."""
    rng = random.Random(seed)
    state = build_cluster_state(MACHINES, utilization=0.3, seed=seed)
    job = Job(job_id=600_000, submit_time=0.0)
    for index in range(TASKS):
        # Many machines hold a small fraction of each input, so the
        # preference threshold decides how many arcs appear.
        locality = {
            machine: rng.uniform(0.02, 0.2)
            for machine in rng.sample(range(MACHINES), min(12, MACHINES))
        }
        job.add_task(
            Task(
                task_id=600_000_000 + index,
                job_id=600_000,
                duration=120.0,
                input_size_gb=rng.uniform(2.0, 8.0),
                input_locality=locality,
            )
        )
    state.submit_job(job)
    return state


def measure(threshold: float):
    policy = QuincyPolicy(machine_preference_threshold=threshold,
                          max_preference_arcs=20)
    state = build_state()
    manager = GraphManager(policy)
    network = manager.update(state, now=5.0)

    start = time.perf_counter()
    RelaxationSolver().solve(network)
    firmament_time = time.perf_counter() - start
    start = time.perf_counter()
    CostScalingSolver().solve(network.copy())
    quincy_time = time.perf_counter() - start

    placements = extract_placements(
        network, manager.task_nodes, manager.machine_nodes, manager.sink_node
    )
    for task_id, machine_id in placements.items():
        # The extracted assignment also covers tasks that were already
        # running (their flow keeps traversing the continuation arc); only
        # pending tasks are newly placed here.
        if state.tasks[task_id].is_running:
            continue
        if state.free_slots(machine_id) > 0:
            state.place_task(task_id, machine_id, now=5.0)
    locality = input_data_locality(state)
    return network.num_arcs, firmament_time, quincy_time, locality


def test_fig15_low_threshold_needs_firmament(benchmark):
    """Regenerates Figure 15a and Table 15b (scaled down)."""
    rows = []
    measurements = {}
    for threshold in THRESHOLDS:
        arcs, firmament_time, quincy_time, locality = measure(threshold)
        measurements[threshold] = (arcs, firmament_time, quincy_time, locality)
        rows.append([
            f"{threshold:.0%}", arcs, f"{firmament_time:.3f}", f"{quincy_time:.3f}",
            f"{locality:.0%}",
        ])
    print()
    print(f"Figure 15 / Table 15b: preference threshold sweep ({MACHINES} machines)")
    print(format_table(
        ["threshold", "graph arcs", "firmament [s]", "quincy (cost scaling) [s]",
         "input locality"],
        rows,
    ))

    arcs_14, firmament_14, quincy_14, locality_14 = measurements[0.14]
    arcs_02, firmament_02, quincy_02, locality_02 = measurements[0.02]
    # The lower threshold adds many arcs and improves locality ...
    assert arcs_02 > arcs_14
    assert locality_02 > locality_14
    # ... and Firmament absorbs the larger graph far better than Quincy.
    assert firmament_02 < quincy_02
    assert firmament_02 <= firmament_14 * 20

    state = build_state()
    policy = QuincyPolicy(machine_preference_threshold=0.02, max_preference_arcs=20)
    manager = GraphManager(policy)
    network = manager.update(state, now=5.0)
    benchmark(lambda: RelaxationSolver().solve(network.copy()))
