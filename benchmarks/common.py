"""Shared builders for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures on a
scaled-down cluster (pure-Python MCMF cannot hit 12,500 machines in CI
time).  The scale factor can be raised with the ``REPRO_BENCH_SCALE``
environment variable (1 = CI default, 2/4/8 = larger clusters and longer
traces for closer-to-paper runs); the *shape* of every result -- who wins,
by roughly what factor, where crossovers fall -- is what the benchmarks
reproduce and what ``EXPERIMENTS.md`` records.

Benchmarks print their table or series to stdout (visible with
``pytest --benchmark-only -s``) in addition to pytest-benchmark's timing
statistics for the measured kernel.
"""

from __future__ import annotations

import os
import random
from typing import Dict, List, Optional, Tuple

from repro.cluster import ClusterState, Job, Task, build_topology
from repro.core import GraphManager, QuincyPolicy
from repro.core.policies.base import SchedulingPolicy
from repro.flow.graph import FlowNetwork
from repro.simulation import fill_cluster_to_utilization


def bench_scale() -> int:
    """Return the benchmark scale factor (>= 1) from the environment."""
    try:
        return max(1, int(os.environ.get("REPRO_BENCH_SCALE", "1")))
    except ValueError:
        return 1


def make_job(
    job_id: int,
    num_tasks: int,
    task_id_offset: int,
    submit_time: float = 0.0,
    duration: Optional[float] = 60.0,
    input_size_gb: float = 0.0,
    locality: Optional[Dict[int, float]] = None,
) -> Job:
    """Build a benchmark job of identical tasks."""
    job = Job(job_id=job_id, submit_time=submit_time)
    for index in range(num_tasks):
        job.add_task(
            Task(
                task_id=task_id_offset + index,
                job_id=job_id,
                duration=duration,
                submit_time=submit_time,
                input_size_gb=input_size_gb,
                input_locality=dict(locality or {}),
            )
        )
    return job


def build_cluster_state(
    num_machines: int,
    slots_per_machine: int = 4,
    machines_per_rack: int = 20,
    utilization: float = 0.0,
    seed: int = 1,
) -> ClusterState:
    """Build a cluster state, optionally pre-filled to a target utilization."""
    topology = build_topology(
        num_machines=num_machines,
        machines_per_rack=machines_per_rack,
        slots_per_machine=slots_per_machine,
    )
    state = ClusterState(topology)
    if utilization > 0:
        fill_cluster_to_utilization(state, utilization, rng=random.Random(seed))
    return state


def add_pending_batch_job(
    state: ClusterState,
    num_tasks: int,
    seed: int = 2,
    with_locality: bool = True,
    job_id: int = 999_000,
    submit_time: float = 0.0,
) -> Job:
    """Submit one pending batch job with randomized data locality."""
    rng = random.Random(seed)
    num_machines = state.topology.num_machines
    job = Job(job_id=job_id, submit_time=submit_time)
    # Space jobs far apart so task ids of consecutive job ids cannot collide
    # (task_id = offset + index).
    offset = 900_000_000 + job_id * 100_000
    for index in range(num_tasks):
        locality: Dict[int, float] = {}
        if with_locality:
            for machine_id in rng.sample(range(num_machines), min(3, num_machines)):
                locality[machine_id] = rng.uniform(0.1, 0.6)
        job.add_task(
            Task(
                task_id=offset + index,
                job_id=job_id,
                duration=60.0,
                submit_time=submit_time,
                input_size_gb=rng.uniform(1.0, 8.0) if with_locality else 0.0,
                input_locality=locality,
            )
        )
    state.submit_job(job)
    return job


def build_policy_network(
    state: ClusterState,
    policy: Optional[SchedulingPolicy] = None,
    now: float = 10.0,
) -> Tuple[GraphManager, FlowNetwork]:
    """Build the scheduling flow network for the state under a policy."""
    manager = GraphManager(policy or QuincyPolicy())
    network = manager.update(state, now=now)
    return manager, network


def scheduling_network(
    num_machines: int,
    utilization: float = 0.5,
    pending_tasks: Optional[int] = None,
    policy: Optional[SchedulingPolicy] = None,
    seed: int = 3,
) -> FlowNetwork:
    """One-call builder: cluster at a utilization plus a pending batch job."""
    state = build_cluster_state(num_machines, utilization=utilization, seed=seed)
    if pending_tasks is None:
        pending_tasks = num_machines
    add_pending_batch_job(state, pending_tasks, seed=seed + 1)
    _, network = build_policy_network(state, policy)
    return network


#: Header matching :func:`executor_race_row` (for ``format_table``).
EXECUTOR_RACE_HEADER = [
    "executor", "rounds", "wall/round [ms]", "winner-solo/round [ms]",
    "work/round [ms]", "wins (relax/cs)",
]


def executor_race_row(name: str, executor) -> List:
    """One ``format_table`` row of a dual executor's race counters.

    Shared by the fig14 and fig18 executor-comparison benchmarks so the
    two figures' tables cannot drift apart.
    """
    rounds = max(executor.rounds, 1)
    return [
        name,
        executor.rounds,
        f"{1e3 * executor.total_wall_clock_seconds / rounds:.2f}",
        f"{1e3 * executor.total_winner_runtime_seconds / rounds:.2f}",
        f"{1e3 * executor.total_work_seconds / rounds:.2f}",
        f"{executor.relaxation_wins}/{executor.cost_scaling_wins}",
    ]
