"""Chaos robustness: placement quality and round latency under injected faults.

The paper's production claim (Section 5.2, fig10/fig14) is sub-second task
placement *sustained* -- which a single bad worker process, broken pipe, or
corrupted solver state must not be able to break.  This benchmark replays
the fig14-style synthetic trace once fault-free and once per chaos fault
class (at an aggressive 50 % per-round rate), and reports per class:

* the placement-quality delta vs the fault-free run (tasks placed, and the
  p50 placement latency ratio),
* the p50/p99 scheduler round wall clock, and
* the degraded-round / respawn / breaker counters surfaced through
  ``ScheduleRecord`` -> ``MetricsSummary``.

The acceptance criteria encode the self-healing contract: every run
completes, places the same tasks as the fault-free oracle run, and keeps
its p99 round wall clock within a small multiple of fault-free -- faults
cost a recovery (respawn, full resnapshot, warm rebuild), never a stall.
"""

from __future__ import annotations

import pytest

from benchmarks.common import bench_scale, build_cluster_state
from repro.analysis.reporting import format_table
from repro.analysis.stats import percentile
from repro.chaos import FAULT_KINDS, ChaosPolicy
from repro.core import FirmamentScheduler, QuincyPolicy
from repro.simulation import (
    ClusterSimulator,
    GoogleTraceGenerator,
    SimulationConfig,
    TraceConfig,
)
from repro.solvers import ParallelDualExecutor

MACHINES = 32 * bench_scale()
UTILIZATION = 0.8
TRACE_SECONDS = 45.0
FAULT_RATE = 0.5


def replay_with_chaos(chaos=None):
    """Replay the synthetic trace snippet under an optional chaos policy."""
    state = build_cluster_state(MACHINES, utilization=UTILIZATION, seed=61)
    # delta_solo_threshold=0 consults the worker every round so the
    # transport fault classes are actually exercised each round.
    solver = ParallelDualExecutor(delta_solo_threshold=0)
    scheduler = FirmamentScheduler(QuincyPolicy(), solver=solver, chaos=chaos)
    config = TraceConfig(
        num_machines=MACHINES,
        slots_per_machine=4,
        target_utilization=0.3,
        duration=TRACE_SECONDS,
        # Compress interarrivals so the 45 s snippet yields a couple of
        # hundred scheduler rounds -- enough rounds for a meaningful p99
        # and for the per-round fault rate to deliver dozens of faults.
        speedup=2.0,
        constant_service_load=True,
        seed=62,
        service_job_fraction=0.1,
    )
    simulator = ClusterSimulator(
        state, scheduler, SimulationConfig(max_time=TRACE_SECONDS)
    )
    simulator.submit_job_stream(GoogleTraceGenerator(config).iter_jobs())
    try:
        result = simulator.run()
    finally:
        simulator.close()
    return result, solver


def test_chaos_robustness_placement_quality_and_round_latency(benchmark):
    """Every fault class completes the trace at fault-free placement quality."""
    baseline, _ = replay_with_chaos(None)
    base_runtimes = baseline.metrics.algorithm_runtimes
    base_p50_latency = percentile(baseline.metrics.placement_latencies, 50)
    base_p99_round = percentile(base_runtimes, 99)

    rows = [
        [
            "fault-free",
            "-",
            baseline.metrics.tasks_placed,
            "+0",
            f"{1e3 * percentile(base_runtimes, 50):.1f}",
            f"{1e3 * base_p99_round:.1f}",
            0,
            0,
            0,
        ]
    ]
    for fault in FAULT_KINDS:
        chaos = ChaosPolicy(seed=63, rates={fault: FAULT_RATE}, delay_seconds=0.002)
        run, solver = replay_with_chaos(chaos)
        metrics = run.metrics
        runtimes = metrics.algorithm_runtimes
        placed_delta = metrics.tasks_placed - baseline.metrics.tasks_placed
        rows.append(
            [
                fault,
                chaos.total_injected,
                metrics.tasks_placed,
                f"{placed_delta:+d}",
                f"{1e3 * percentile(runtimes, 50):.1f}",
                f"{1e3 * percentile(runtimes, 99):.1f}",
                metrics.degraded_round_count(),
                metrics.total_worker_respawns(),
                metrics.breaker_open_round_count(),
            ]
        )

        # Robustness contract, per fault class: the run completes with the
        # fault-free run's placement quality ...
        assert metrics.tasks_unplaced == 0
        assert metrics.tasks_placed == baseline.metrics.tasks_placed
        # ... no round was abandoned (no deadline is configured, so every
        # round must be served, degraded never) ...
        assert metrics.degraded_round_count() == 0
        # ... and recovery cost is bounded: p99 round wall clock stays
        # within a small multiple of fault-free (full-resnapshot rounds
        # and respawns are the expected recovery price; a stall or a
        # sum-shaped round would blow far past this).
        assert percentile(runtimes, 99) <= max(4.0 * base_p99_round, 0.25)
        if fault in ("worker_kill", "pipe_break"):
            assert metrics.total_worker_respawns() >= 1

    print()
    print(
        f"Chaos robustness: fig14-style trace, {MACHINES} machines at "
        f"{UTILIZATION:.0%} utilization, per-round fault rate {FAULT_RATE:.0%}"
    )
    print(
        format_table(
            [
                "fault class",
                "injected",
                "placed",
                "delta",
                "p50 round [ms]",
                "p99 round [ms]",
                "degraded",
                "respawns",
                "breaker-open",
            ],
            rows,
        )
    )
    print(
        "fault-free p50 placement latency: "
        f"{base_p50_latency:.3f}s (virtual)"
    )

    # Benchmark kernel: the mixed-fault replay (every class armed at once).
    mixed = {fault: FAULT_RATE for fault in FAULT_KINDS}

    def kernel():
        run, _ = replay_with_chaos(
            ChaosPolicy(seed=64, rates=mixed, delay_seconds=0.002)
        )
        assert run.metrics.tasks_unplaced == 0
        return run

    benchmark(kernel)


def test_chaos_deadline_degradation_bounds_round_tail(benchmark):
    """With a round deadline, every round is in budget or recorded degraded."""
    budget = 0.5
    state = build_cluster_state(MACHINES, utilization=UTILIZATION, seed=61)
    solver = ParallelDualExecutor(
        delta_solo_threshold=0, round_deadline_seconds=budget
    )
    scheduler = FirmamentScheduler(QuincyPolicy(), solver=solver)
    config = TraceConfig(
        num_machines=MACHINES,
        slots_per_machine=4,
        target_utilization=0.3,
        duration=TRACE_SECONDS,
        # Compress interarrivals so the 45 s snippet yields a couple of
        # hundred scheduler rounds -- enough rounds for a meaningful p99
        # and for the per-round fault rate to deliver dozens of faults.
        speedup=2.0,
        constant_service_load=True,
        seed=62,
        service_job_fraction=0.1,
    )
    simulator = ClusterSimulator(
        state, scheduler, SimulationConfig(max_time=TRACE_SECONDS)
    )
    simulator.submit_job_stream(GoogleTraceGenerator(config).iter_jobs())
    try:
        result = simulator.run()
    finally:
        simulator.close()

    watchdog = max(0.05, 0.25 * budget)
    over_budget = [
        record
        for record in result.schedule_records
        if record.algorithm_runtime > budget + watchdog
        and not record.degraded_round
    ]
    print()
    print(
        f"Deadline run: budget {budget:.2f}s, rounds "
        f"{len(result.schedule_records)}, degraded "
        f"{result.metrics.degraded_round_count()}, deadline hits "
        f"{sum(result.metrics.deadline_hits)}"
    )
    assert result.metrics.tasks_unplaced == 0
    # No silently-late rounds: past budget + watchdog means degraded.
    assert over_budget == []

    benchmark(lambda: percentile(result.metrics.algorithm_runtimes, 99))
