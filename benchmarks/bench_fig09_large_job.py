"""Figure 9: large arriving jobs slow relaxation down under contention.

Under the load-spreading policy, every task of a newly arriving job wants
the same under-populated machines, which creates contention.  The paper
shows relaxation's runtime growing roughly linearly with the arriving job's
size and crossing cost scaling at just under 3,000 tasks.  The benchmark
sweeps the arriving-job size on a scaled-down cluster and checks that
relaxation's runtime grows significantly faster than cost scaling's.
"""

from __future__ import annotations

import time

import pytest

from benchmarks.common import bench_scale, build_cluster_state, build_policy_network
from repro.analysis.reporting import format_table
from repro.cluster import Job, Task
from repro.core.policies import LoadSpreadingPolicy
from repro.solvers import CostScalingSolver, RelaxationSolver

MACHINES = 48 * bench_scale()
#: Arriving-job sizes as a fraction of the cluster's total slots; the larger
#: ones exceed the remaining capacity, which is where contention bites.
JOB_SIZES = [12 * bench_scale(), 48 * bench_scale(), 192 * bench_scale(),
             384 * bench_scale()]


def build_network(job_size: int):
    state = build_cluster_state(MACHINES, utilization=0.10, seed=1)
    job = Job(job_id=7_000, submit_time=0.0)
    for index in range(job_size):
        job.add_task(Task(task_id=7_000_000 + index, job_id=7_000, duration=300.0))
    state.submit_job(job)
    _, network = build_policy_network(state, LoadSpreadingPolicy())
    return network


def test_fig09_relaxation_runtime_grows_with_arriving_job_size(benchmark):
    """Regenerates Figure 9 (scaled down)."""
    rows = []
    relaxation_times = []
    cost_scaling_times = []
    for size in JOB_SIZES:
        network = build_network(size)
        start = time.perf_counter()
        RelaxationSolver().solve(network.copy())
        relaxation_times.append(time.perf_counter() - start)
        start = time.perf_counter()
        CostScalingSolver().solve(network.copy())
        cost_scaling_times.append(time.perf_counter() - start)
        rows.append([size, f"{relaxation_times[-1]:.3f}", f"{cost_scaling_times[-1]:.3f}"])

    print()
    print(f"Figure 9: runtime vs arriving job size (load-spreading policy, {MACHINES} machines)")
    print(format_table(["tasks in arriving job", "relaxation [s]", "cost scaling [s]"], rows))

    relaxation_growth = relaxation_times[-1] / max(relaxation_times[0], 1e-9)
    cost_scaling_growth = cost_scaling_times[-1] / max(cost_scaling_times[0], 1e-9)
    size_growth = JOB_SIZES[-1] / JOB_SIZES[0]
    print(f"relaxation grew {relaxation_growth:.1f}x, cost scaling {cost_scaling_growth:.1f}x "
          f"for a {size_growth:.0f}x larger job")
    # Relaxation's runtime is strongly sensitive to the arriving job's size,
    # much more so than cost scaling's (the paper's crossover mechanism).
    assert relaxation_growth > 3.0
    assert relaxation_growth > 1.5 * cost_scaling_growth

    network = build_network(JOB_SIZES[-1])
    benchmark(lambda: RelaxationSolver().solve(network.copy()))
