"""Figure 14: Firmament's task placement latency vs Quincy's.

The paper replays the Google trace on a 12,500-machine cluster at 90 % slot
utilization: Quincy (from-scratch cost scaling) takes 25-60 s to place
tasks, Firmament typically places them in hundreds of milliseconds -- a more
than 20x improvement at identical placement quality.  The benchmark replays
a scaled-down synthetic trace against both configurations and reports the
placement-latency CDF, the speedup, and the alpha-factor ablation the paper
mentions in Section 7.2 (alpha = 9 is ~30 % faster than cs2's default of 2).
"""

from __future__ import annotations

import time

import pytest

from benchmarks.common import (
    EXECUTOR_RACE_HEADER,
    bench_scale,
    build_cluster_state,
    executor_race_row,
)
from repro.analysis.reporting import format_table
from repro.analysis.stats import percentile
from repro.baselines import make_quincy_scheduler
from repro.core import FirmamentScheduler, QuincyPolicy
from repro.simulation import (
    ClusterSimulator,
    GoogleTraceGenerator,
    SimulationConfig,
    TraceConfig,
)
from repro.solvers import CostScalingSolver, DualAlgorithmExecutor, ParallelDualExecutor

MACHINES = 48 * bench_scale()
UTILIZATION = 0.9
TRACE_SECONDS = 60.0

#: Cluster size for the executor-race comparison.  Larger than the latency
#: CDF runs so each solver round is tens of milliseconds: the race's fixed
#: costs (IPC, pipe polling granularity, OS scheduling quanta on shared
#: cores) must be small relative to the winner's runtime for the
#: within-25 % acceptance bound to measure the executor, not the machine.
RACE_MACHINES = 96 * bench_scale()


def replay(scheduler, machines: int = None):
    """Replay the same synthetic trace snippet against a scheduler."""
    machines = machines or MACHINES
    state = build_cluster_state(machines, utilization=UTILIZATION, seed=41)
    config = TraceConfig(
        num_machines=machines,
        slots_per_machine=4,
        target_utilization=0.3,  # arrivals on top of the 90% pre-fill
        duration=TRACE_SECONDS,
        seed=42,
        service_job_fraction=0.1,
    )
    simulator = ClusterSimulator(state, scheduler, SimulationConfig(max_time=TRACE_SECONDS))
    simulator.submit_job_stream(GoogleTraceGenerator(config).iter_jobs())
    return simulator.run()


def arrival_latencies(run):
    """Placement latencies of the *trace arrivals* only.

    The cluster is pre-filled to 90 % utilization at t=0; those tasks are
    placed instantly and would dilute the latency distribution with zeros
    (the seed version of this benchmark measured exactly that, making every
    median 0.0).  The figure is about the tasks that arrive while the
    scheduler is running.
    """
    return [
        task.placement_latency()
        for task in run.state.tasks.values()
        if task.submit_time > 0 and task.placement_latency() is not None
    ]


def test_fig14_firmament_places_tasks_much_faster_than_quincy(benchmark):
    """Regenerates Figure 14 (scaled down) plus the alpha ablation."""
    firmament_run = replay(FirmamentScheduler(QuincyPolicy()))
    quincy_run = replay(make_quincy_scheduler())
    quincy_tuned_run = replay(make_quincy_scheduler(alpha=9))

    def latency_row(name, run):
        latencies = arrival_latencies(run)
        return [
            name,
            f"{percentile(latencies, 50):.3f}",
            f"{percentile(latencies, 90):.3f}",
            f"{percentile(latencies, 99):.3f}",
            len(latencies),
        ]

    rows = [
        latency_row("firmament (dual)", firmament_run),
        latency_row("quincy (cost scaling, alpha=2)", quincy_run),
        latency_row("quincy (cost scaling, alpha=9)", quincy_tuned_run),
    ]
    print()
    print(f"Figure 14: task placement latency [s], {MACHINES} machines at "
          f"{UTILIZATION:.0%} utilization")
    print(format_table(["scheduler", "p50", "p90", "p99", "tasks"], rows))

    firmament_p50 = percentile(arrival_latencies(firmament_run), 50)
    quincy_p50 = percentile(arrival_latencies(quincy_run), 50)
    speedup = quincy_p50 / max(firmament_p50, 1e-9)
    print(f"median placement latency speedup: {speedup:.1f}x")
    # Firmament is substantially faster (the paper reports >20x at full
    # scale; the gap shrinks on small clusters but must stay clear).
    assert speedup > 1.5

    # Placement quality is unchanged: both place essentially every task.
    assert firmament_run.metrics.tasks_placed >= quincy_run.metrics.tasks_placed * 0.95

    # Alpha ablation: the tuned alpha must not be slower overall.
    alpha2_runtime = sum(quincy_run.metrics.algorithm_runtimes)
    alpha9_runtime = sum(quincy_tuned_run.metrics.algorithm_runtimes)
    print(f"total solver runtime: alpha=2 {alpha2_runtime:.2f}s, alpha=9 {alpha9_runtime:.2f}s")
    assert alpha9_runtime <= alpha2_runtime * 1.3

    benchmark(lambda: replay(FirmamentScheduler(QuincyPolicy())))


def test_fig14_parallel_executor_wall_clock_tracks_winner(benchmark):
    """The real race costs ~the winner's runtime per round, not the sum.

    The sequential executor *models* the paper's concurrent deployment (it
    reports min() but pays the sum in wall clock); the parallel executor
    races the algorithms across processes for real.  On the fig14 workload
    its measured steady-state wall clock per round must track the winning
    algorithm's solo runtime -- the speculation is (measurably) cheap,
    even when parent and worker share cores.  The tolerated ratio is 60 %:
    since the PR 5 relaxation overhaul the worker side wins a substantial
    share of the raced rounds in a few milliseconds each, so the fixed
    IPC round trip (ship + response pickling + parent abort latency) is a
    visibly larger *fraction* of the shrunken winner runtime even though
    the absolute wall clock per round went down -- what must stay
    impossible is the sum-shaped cost, pinned against the sequential
    executor's measured work below.
    """
    sequential = DualAlgorithmExecutor()
    replay(FirmamentScheduler(QuincyPolicy(), solver=sequential), machines=RACE_MACHINES)

    parallel = ParallelDualExecutor()
    scheduler = FirmamentScheduler(QuincyPolicy(), solver=parallel)
    try:
        # One warm-up race pays the one-time costs (worker spawn, module
        # imports in the subprocess, cold allocator) before measurement.
        warmup = build_cluster_state(RACE_MACHINES, utilization=UTILIZATION, seed=40)
        scheduler.schedule(warmup, now=0.0)
        parallel.reset_counters()
        parallel_run = replay(scheduler, machines=RACE_MACHINES)
    finally:
        parallel.close()

    print()
    print(f"Figure 14 executor race: real wall clock per round, {RACE_MACHINES} "
          f"machines at {UTILIZATION:.0%} utilization")
    print(format_table(
        EXECUTOR_RACE_HEADER,
        [
            executor_race_row("sequential (modeled race)", sequential),
            executor_race_row("parallel (subprocess race)", parallel),
        ],
    ))

    assert parallel.rounds > 0
    assert parallel.fallback_rounds == 0, "the race must not have fallen back"
    overhead = parallel.total_wall_clock_seconds / max(
        parallel.total_winner_runtime_seconds, 1e-9
    )
    print(f"parallel wall clock / winner solo runtime: {overhead:.3f}x")
    # Acceptance criterion: measured wall clock within 60 % of the winning
    # algorithm's solo runtime (not the sum of both algorithms) ...
    assert overhead <= 1.6
    # ... and strictly below the sum the sequential executor pays for the
    # same rounds (racing must never cost sum-shaped wall clock).
    assert (
        parallel.total_wall_clock_seconds / max(parallel.rounds, 1)
        < sequential.total_work_seconds / max(sequential.rounds, 1)
    )
    # The sequential executor, by construction, pays (at least) the sum.
    assert sequential.total_wall_clock_seconds >= sequential.total_work_seconds * 0.95
    # Placement behaviour is unchanged by the executor strategy.
    assert parallel_run.metrics.tasks_placed > 0

    # Benchmark kernel: one parallel race round on the final network.
    network = scheduler.last_network
    racer = ParallelDualExecutor()
    try:
        racer.solve(network.copy())
        benchmark(lambda: racer.solve(network.copy()))
    finally:
        racer.close()
