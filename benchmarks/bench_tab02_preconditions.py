"""Table 2: the invariants each MCMF algorithm maintains per iteration.

Cost scaling requires feasibility plus epsilon-optimality before every
iteration, which is what makes it expensive to incrementalize; relaxation
and successive shortest path only maintain reduced-cost optimality.  The
benchmark prints the table and verifies the invariants empirically on
solver output: the flow produced by every algorithm is feasible, and the
potentials produced by the dual-maintaining algorithms prove reduced-cost
optimality.
"""

from __future__ import annotations

import pytest

from benchmarks.common import bench_scale, scheduling_network
from repro.analysis.reporting import format_table
from repro.flow.validation import check_feasibility, check_reduced_cost_optimality
from repro.solvers import (
    PRECONDITION_TABLE,
    CostScalingSolver,
    RelaxationSolver,
    SuccessiveShortestPathSolver,
)

MACHINES = 24 * bench_scale()


def test_tab02_algorithm_preconditions(benchmark):
    """Prints Table 2 and verifies the invariants on real solver output."""
    rows = []
    for algorithm, requirements in PRECONDITION_TABLE.items():
        rows.append([
            algorithm,
            "yes" if requirements["feasibility"] else "-",
            "yes" if requirements["reduced_cost_optimality"] else "-",
            "yes" if requirements["epsilon_optimality"] else "-",
        ])
    print()
    print("Table 2: per-iteration preconditions of each algorithm")
    print(format_table(
        ["algorithm", "feasibility", "reduced-cost opt.", "epsilon opt."], rows
    ))

    network = scheduling_network(MACHINES, utilization=0.5, pending_tasks=MACHINES)

    # Every algorithm ends with a feasible flow.
    for solver in (RelaxationSolver(), CostScalingSolver(), SuccessiveShortestPathSolver()):
        candidate = network.copy()
        result = solver.solve(candidate)
        assert check_feasibility(candidate) == []
        if PRECONDITION_TABLE[solver.name]["reduced_cost_optimality"]:
            # The dual-maintaining algorithms return potentials that prove
            # optimality of their flow.
            assert check_reduced_cost_optimality(candidate, result.potentials) == []

    benchmark(lambda: RelaxationSolver().solve(network.copy()))
