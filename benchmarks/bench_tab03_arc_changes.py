"""Table 3: which arc changes break feasibility or optimality.

The classification determines how much repair work incremental cost scaling
must do after a batch of cluster changes.  The benchmark prints the table as
produced by :func:`repro.flow.changes.classify_arc_change` and then measures
the end-to-end consequence: a batch of "green" (safe) changes lets the
incremental solver finish without any scaling phase, while "red" changes
force re-optimization.
"""

from __future__ import annotations

import pytest

from benchmarks.common import bench_scale, scheduling_network
from repro.analysis.reporting import format_table
from repro.flow.changes import ChangeEffect, classify_arc_change
from repro.solvers import IncrementalCostScalingSolver

MACHINES = 24 * bench_scale()


def test_tab03_arc_change_classification(benchmark):
    """Prints Table 3 and checks its consequences for incremental solving."""
    cases = [
        ("increase capacity", dict(old_capacity=1, new_capacity=2)),
        ("decrease capacity (flow fits)", dict(old_capacity=2, new_capacity=1)),
        ("decrease capacity (below flow)", dict(old_capacity=2, new_capacity=0)),
        ("increase cost", dict(new_reduced_cost=5)),
        ("decrease cost (stays >= 0)", dict(new_reduced_cost=0)),
        ("decrease cost (goes < 0)", dict(new_reduced_cost=-3)),
    ]
    reduced_costs = [-1, 0, 1]
    rows = []
    for label, kwargs in cases:
        row = [label]
        for rc in reduced_costs:
            flow = 1 if rc <= 0 else 0
            effect = classify_arc_change(reduced_cost=rc, flow=flow, **kwargs)
            row.append({
                ChangeEffect.NONE: "ok",
                ChangeEffect.BREAKS_OPTIMALITY: "opt!",
                ChangeEffect.BREAKS_FEASIBILITY: "feas!",
            }[effect])
        rows.append(row)
    print()
    print("Table 3: effect of arc changes by sign of the arc's reduced cost")
    print(format_table(["change", "rc < 0", "rc = 0", "rc > 0"], rows))

    # End-to-end consequence: an unchanged problem needs no scaling phase on
    # the warm-started run, while a disruptive cost change forces phases.
    network = scheduling_network(MACHINES, utilization=0.5, pending_tasks=MACHINES)
    solver = IncrementalCostScalingSolver()
    solver.solve(network.copy())
    unchanged = solver.solve(network.copy())
    assert unchanged.statistics.epsilon_phases == 0

    disrupted_network = network.copy()
    flow_arc = max(
        (arc for arc in disrupted_network.arcs() if arc.cost > 0),
        key=lambda arc: arc.cost,
    )
    disrupted_network.set_arc_cost(flow_arc.src, flow_arc.dst, 0)
    disrupted = solver.solve(disrupted_network)
    assert disrupted.statistics.epsilon_phases >= 1

    benchmark(lambda: solver.solve(network.copy()))
