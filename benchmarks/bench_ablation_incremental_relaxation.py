"""Ablation: why Firmament does not use incremental relaxation (Section 5.2).

The paper argues that relaxation *looks* like the better candidate for
incremental operation (it only needs reduced-cost optimality, which graph
changes rarely destroy) but works well "only if tasks are not typically
connected to a large zero-reduced cost tree": the warm state's large trees
must be re-traversed for every new source, so incremental relaxation can be
slower than running relaxation from scratch.  Firmament therefore pairs
from-scratch relaxation with *incremental cost scaling* in its dual executor.

This ablation measures from-scratch relaxation against warm-started
relaxation on the two regimes the paper contrasts: an uncontested
Quincy-policy graph (where relaxation is fast either way) and a contended
load-spreading graph with a large arriving job (where the warm trees hurt).
The assertions are deliberately qualitative -- both paths must find the
optimum, and the warm start must not deliver the kind of order-of-magnitude
win that would have justified using it, which is the paper's point.
"""

from __future__ import annotations

import random
import time

import pytest

from benchmarks.common import (
    add_pending_batch_job,
    bench_scale,
    build_cluster_state,
    build_policy_network,
)
from repro.analysis.reporting import format_table
from repro.core import GraphManager, QuincyPolicy
from repro.core.policies import LoadSpreadingPolicy
from repro.solvers import IncrementalRelaxationSolver, RelaxationSolver

MACHINES = 48 * bench_scale()


def measure_regime(policy_factory, label: str, arriving_tasks: int, seed: int):
    """Return (label, scratch runtime, warm runtime, costs agree)."""
    state = build_cluster_state(MACHINES, utilization=0.6, seed=seed)
    manager = GraphManager(policy_factory())
    incremental = IncrementalRelaxationSolver()

    # Round 0: establish the warm-start state, then place the pending work.
    add_pending_batch_job(state, MACHINES // 2, seed=seed + 1)
    network = manager.update(state, now=10.0)
    incremental.solve(network)
    for task in state.pending_tasks():
        for machine_id in state.topology.machines:
            if state.free_slots(machine_id) > 0:
                state.place_task(task.task_id, machine_id, now=10.0)
                break

    # Round 1: churn plus a new arriving job (large for the contended regime).
    rng = random.Random(seed + 2)
    running = state.running_tasks()
    for task in rng.sample(running, min(len(running) // 10 + 1, len(running))):
        state.complete_task(task.task_id, now=20.0)
    add_pending_batch_job(
        state, arriving_tasks, seed=seed + 3, job_id=810_000 + seed, submit_time=20.0
    )
    network = manager.update(state, now=20.0)

    start = time.perf_counter()
    scratch_result = RelaxationSolver().solve(network.copy())
    scratch = time.perf_counter() - start

    start = time.perf_counter()
    warm_result = incremental.solve(network.copy())
    warm = time.perf_counter() - start

    assert warm_result.statistics.warm_start
    return label, scratch, warm, scratch_result.total_cost == warm_result.total_cost


def test_ablation_incremental_relaxation(benchmark):
    """Warm-started relaxation offers no reliable win over from-scratch runs."""
    rows = []
    agreements = []
    ratios = {}
    for policy_factory, label, arriving in [
        (QuincyPolicy, "quincy (uncontested)", MACHINES // 4),
        (LoadSpreadingPolicy, "load_spreading (contended)", 2 * MACHINES),
    ]:
        label, scratch, warm, costs_agree = measure_regime(
            policy_factory, label, arriving, seed=41
        )
        agreements.append(costs_agree)
        ratios[label] = scratch / max(warm, 1e-9)
        rows.append([label, f"{scratch:.3f}", f"{warm:.3f}", f"{ratios[label]:.2f}x"])

    print()
    print("Ablation: incremental relaxation vs from-scratch relaxation "
          f"({MACHINES} machines)")
    print(format_table(
        ["regime", "from scratch [s]", "incremental [s]", "scratch/incremental"], rows
    ))

    # Both paths find the optimum...
    assert all(agreements)
    # ...and the warm start never delivers the decisive (>=5x) advantage that
    # would have made incremental relaxation the obvious choice -- the
    # paper's reason for pairing from-scratch relaxation with incremental
    # cost scaling instead.
    assert all(ratio < 5.0 for ratio in ratios.values())

    state = build_cluster_state(MACHINES, utilization=0.5, seed=51)
    add_pending_batch_job(state, MACHINES // 2, seed=52)
    _, network = build_policy_network(state, QuincyPolicy())
    solver = IncrementalRelaxationSolver()
    solver.solve(network.copy())
    benchmark(lambda: solver.solve(network.copy()))
