"""Table 1: worst-case complexities of the four MCMF algorithms.

The table itself is static knowledge; the benchmark prints it next to
measured runtimes on an identical scheduling graph, which illustrates the
paper's point that worst-case complexity is a poor predictor of practical
performance on scheduling graphs (successive shortest path has the best
bound yet loses to relaxation, which has the worst).
"""

from __future__ import annotations

import time

import pytest

from benchmarks.common import bench_scale, scheduling_network
from repro.analysis.reporting import format_table
from repro.solvers import (
    COMPLEXITY_TABLE,
    CostScalingSolver,
    CycleCancelingSolver,
    RelaxationSolver,
    SuccessiveShortestPathSolver,
)

MACHINES = 24 * bench_scale()


def test_tab01_worst_case_complexity_vs_measured_runtime(benchmark):
    """Prints Table 1 with measured runtimes on a small scheduling graph."""
    network = scheduling_network(MACHINES, utilization=0.5, pending_tasks=MACHINES)
    solvers = {
        "relaxation": RelaxationSolver(),
        "cycle_canceling": CycleCancelingSolver(),
        "cost_scaling": CostScalingSolver(),
        "successive_shortest_path": SuccessiveShortestPathSolver(),
    }
    measured = {}
    for name, solver in solvers.items():
        start = time.perf_counter()
        solver.solve(network.copy())
        measured[name] = time.perf_counter() - start

    rows = [
        [name, COMPLEXITY_TABLE[name], f"{measured[name]:.3f}"]
        for name in ("relaxation", "cycle_canceling", "cost_scaling",
                     "successive_shortest_path")
    ]
    print()
    print(f"Table 1: worst-case complexity vs measured runtime ({MACHINES} machines)")
    print(format_table(["algorithm", "worst-case", "measured [s]"], rows))

    # The paper's punchline: relaxation has the worst bound but the best
    # measured runtime; cycle canceling is by far the slowest.
    assert measured["relaxation"] == min(measured.values())
    assert measured["cycle_canceling"] == max(measured.values())

    benchmark(lambda: RelaxationSolver().solve(network.copy()))
