"""Ablation: how the warm-start advantage shrinks with the change-batch size.

Incremental cost scaling reuses the previous run's flow and potentials and
repairs only what the graph changes broke (Section 5.2).  The repair work is
proportional to the size of the change batch, so the warm start should win
clearly when few tasks churn between runs and lose its edge as the batch
approaches the whole workload -- which is exactly why Firmament still keeps
a from-scratch path.  This ablation sweeps the churn fraction and reports
the speedup of the incremental solver over solving from scratch.
"""

from __future__ import annotations

import random
import time

import pytest

from benchmarks.common import (
    add_pending_batch_job,
    bench_scale,
    build_cluster_state,
    build_policy_network,
)
from repro.analysis.reporting import format_table
from repro.core import GraphManager, QuincyPolicy
from repro.solvers import CostScalingSolver, IncrementalCostScalingSolver

MACHINES = 48 * bench_scale()
CHURN_FRACTIONS = (0.02, 0.10, 0.30, 0.60)


def churn_state(state, fraction: float, seed: int) -> None:
    """Complete a fraction of running tasks and submit an equal-sized job."""
    rng = random.Random(seed)
    running = state.running_tasks()
    to_complete = max(1, int(len(running) * fraction))
    for task in rng.sample(running, min(to_complete, len(running))):
        state.complete_task(task.task_id, now=20.0)
    add_pending_batch_job(
        state,
        to_complete,
        seed=seed + 1,
        job_id=700_000 + int(fraction * 1000),
        submit_time=20.0,
    )


def measure_speedup(fraction: float):
    state = build_cluster_state(MACHINES, utilization=0.6, seed=5)
    manager = GraphManager(QuincyPolicy())
    incremental = IncrementalCostScalingSolver()

    network = manager.update(state, now=10.0)
    incremental.solve(network)

    churn_state(state, fraction, seed=int(fraction * 100) + 3)
    network = manager.update(state, now=20.0)

    start = time.perf_counter()
    CostScalingSolver().solve(network.copy())
    scratch = time.perf_counter() - start

    start = time.perf_counter()
    incremental.solve(network.copy())
    warm = time.perf_counter() - start
    return scratch, warm


def test_ablation_warm_start_vs_churn(benchmark):
    """The warm start wins for small change batches and degrades gracefully."""
    rows = []
    speedups = {}
    for fraction in CHURN_FRACTIONS:
        scratch, warm = measure_speedup(fraction)
        speedup = scratch / max(warm, 1e-9)
        speedups[fraction] = speedup
        rows.append(
            [f"{100 * fraction:.0f}%", f"{scratch:.3f}", f"{warm:.3f}", f"{speedup:.2f}x"]
        )

    print()
    print(f"Ablation: incremental warm start vs churn fraction ({MACHINES} machines)")
    print(format_table(
        ["tasks churned", "from scratch [s]", "incremental [s]", "speedup"], rows
    ))

    # Small change batches must benefit clearly from the warm start...
    assert speedups[CHURN_FRACTIONS[0]] > 1.1
    # ...and even the largest batch must not make the incremental path
    # pathologically slower than starting over.
    assert speedups[CHURN_FRACTIONS[-1]] > 0.4

    state = build_cluster_state(MACHINES, utilization=0.6, seed=7)
    add_pending_batch_job(state, MACHINES // 4, seed=8)
    _, network = build_policy_network(state, QuincyPolicy())
    solver = IncrementalCostScalingSolver()
    solver.solve(network.copy())
    benchmark(lambda: solver.solve(network.copy()))
