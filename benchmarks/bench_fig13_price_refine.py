"""Figure 13: price refine accelerates the relaxation-to-cost-scaling handoff.

Firmament usually adopts the relaxation solution, but the next incremental
cost scaling run must warm-start from it.  Relaxation's potentials satisfy
only reduced-cost optimality, which fits poorly into cost scaling's
complementary-slackness requirement; the price-refine heuristic recomputes
potentials that do, letting cost scaling start from a small epsilon.  The
paper reports a ~4x speedup in 90 % of cases.
"""

from __future__ import annotations

import time

import pytest

from benchmarks.common import (
    add_pending_batch_job,
    bench_scale,
    build_cluster_state,
    build_policy_network,
)
from repro.analysis.reporting import format_table
from repro.analysis.stats import percentile
from repro.core import GraphManager, QuincyPolicy
from repro.solvers import CostScalingSolver, RelaxationSolver

MACHINES = 48 * bench_scale()
TRIALS = 5

#: Trials of the PR 4 variant kernel (price-refine step on a warm-rebuild
#: round); more trials because the step is sub-millisecond at scale 1.
VARIANT_TRIALS = 7


def one_trial(seed: int):
    """Relaxation solves round N; measure the round N+1 incremental cost
    scaling run with and without price refine."""
    state = build_cluster_state(MACHINES, utilization=0.6, seed=seed)
    add_pending_batch_job(state, MACHINES // 2, seed=seed + 1)
    manager = GraphManager(QuincyPolicy())
    network = manager.update(state, now=10.0)
    relaxation_result = RelaxationSolver().solve(network.copy())

    # The cluster changes a little before the next run: waiting costs grow.
    changed = manager.update(state, now=30.0)

    # The naive handoff cannot reuse relaxation's potentials (they live in a
    # different reduced-cost representation, Section 6.2), so the comparison
    # is "derive potentials with price refine" vs "start with none".
    times = {}
    for use_price_refine in (False, True):
        solver = CostScalingSolver()
        start = time.perf_counter()
        solver.solve_warm(
            changed.copy(),
            relaxation_result.flows,
            warm_potentials=None,
            apply_price_refine=use_price_refine,
        )
        times[use_price_refine] = time.perf_counter() - start
    return times


def test_fig13_price_refine_speeds_up_warm_started_cost_scaling(benchmark):
    """Regenerates Figure 13 (scaled down)."""
    without_refine = []
    with_refine = []
    for seed in range(TRIALS):
        times = one_trial(seed)
        without_refine.append(times[False])
        with_refine.append(times[True])

    rows = [
        ["cost scaling (no price refine)", f"{percentile(without_refine, 50):.3f}",
         f"{max(without_refine):.3f}"],
        ["price refine + cost scaling", f"{percentile(with_refine, 50):.3f}",
         f"{max(with_refine):.3f}"],
    ]
    print()
    print(f"Figure 13: warm-started cost scaling after a relaxation run ({TRIALS} trials)")
    print(format_table(["variant", "median [s]", "max [s]"], rows))
    speedup = percentile(without_refine, 50) / max(percentile(with_refine, 50), 1e-9)
    print(f"median speedup from price refine: {speedup:.1f}x")

    # Price refine must make the handoff faster (the paper observes ~4x).
    assert speedup > 1.3

    state = build_cluster_state(MACHINES, utilization=0.6, seed=99)
    add_pending_batch_job(state, MACHINES // 2, seed=100)
    manager, network = build_policy_network(state, QuincyPolicy())
    relaxation_result = RelaxationSolver().solve(network.copy())
    benchmark(
        lambda: CostScalingSolver().solve_warm(
            network.copy(),
            relaxation_result.flows,
            warm_potentials=None,
            apply_price_refine=True,
        )
    )


def variant_trial(seed: int):
    """PR 4 kernel: the potential-derivation step of one post-seed
    warm-rebuild round, per price-refine variant.

    Relaxation won round N; before round N+1 the waiting costs drifted and
    a deep pending backlog keeps the graph oversubscribed (the regime where
    warm rebuilds dominate).  ``spfa`` derives potentials with the full
    label-correcting sweep; ``dijkstra``/``auto`` seed from the handed-off
    relaxation potentials and repair only the violated region.  Returns the
    per-variant price-refine attribution and total solve time.
    """
    state = build_cluster_state(MACHINES, utilization=0.6, seed=seed)
    add_pending_batch_job(state, 2 * MACHINES, seed=seed + 1)
    manager = GraphManager(QuincyPolicy())
    network = manager.update(state, now=10.0)
    relaxation_result = RelaxationSolver().solve(network.copy())
    changed = manager.update(state, now=30.0)

    refine_times = {}
    total_times = {}
    costs = set()
    for mode in ("spfa", "auto"):
        solver = CostScalingSolver(price_refine=mode)
        start = time.perf_counter()
        result = solver.solve_warm(
            changed.copy(),
            relaxation_result.flows,
            warm_potentials=relaxation_result.potentials,
            apply_price_refine=True,
        )
        total_times[mode] = time.perf_counter() - start
        refine_times[mode] = result.statistics.price_refine_seconds
        costs.add(result.total_cost)
    assert len(costs) == 1, f"variants disagree on the optimum: {costs}"
    return refine_times, total_times


def test_fig13_dijkstra_refine_beats_spfa_on_warm_rebuild_rounds():
    """PR 4: the seeded Dijkstra refine vs the SPFA sweep on warm rebuilds.

    Target: >= 1.5x on the price-refine step at >= 48 machines (the step
    the ROADMAP named as dominating warm-rebuild rounds).
    """
    spfa_refine, auto_refine = [], []
    spfa_total, auto_total = [], []
    for seed in range(VARIANT_TRIALS):
        refine_times, total_times = variant_trial(seed)
        spfa_refine.append(refine_times["spfa"])
        auto_refine.append(refine_times["auto"])
        spfa_total.append(total_times["spfa"])
        auto_total.append(total_times["auto"])

    rows = [
        ["spfa (full sweep)",
         f"{percentile(spfa_refine, 50) * 1000:.3f}",
         f"{percentile(spfa_total, 50) * 1000:.3f}"],
        ["dijkstra (seeded, auto)",
         f"{percentile(auto_refine, 50) * 1000:.3f}",
         f"{percentile(auto_total, 50) * 1000:.3f}"],
    ]
    print()
    print(
        f"PR 4: price refine on post-seed warm-rebuild rounds "
        f"({MACHINES} machines, {VARIANT_TRIALS} trials)"
    )
    print(format_table(["variant", "refine median [ms]", "round median [ms]"], rows))
    speedup = percentile(spfa_refine, 50) / max(percentile(auto_refine, 50), 1e-9)
    print(f"median price-refine speedup (seeded dijkstra): {speedup:.2f}x")

    # Measured 1.5-1.8x on the CI-class container; the hard floor sits a
    # little below the 1.5x target so scheduler noise on busy hosts does
    # not flake the suite while a real regression still trips it.
    assert speedup >= 1.35, (
        f"seeded Dijkstra price refine only {speedup:.2f}x over SPFA on the "
        "warm-rebuild kernel (target 1.5x, hard floor 1.35x)"
    )
