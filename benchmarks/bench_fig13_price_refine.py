"""Figure 13: price refine accelerates the relaxation-to-cost-scaling handoff.

Firmament usually adopts the relaxation solution, but the next incremental
cost scaling run must warm-start from it.  Relaxation's potentials satisfy
only reduced-cost optimality, which fits poorly into cost scaling's
complementary-slackness requirement; the price-refine heuristic recomputes
potentials that do, letting cost scaling start from a small epsilon.  The
paper reports a ~4x speedup in 90 % of cases.
"""

from __future__ import annotations

import time

import pytest

from benchmarks.common import (
    add_pending_batch_job,
    bench_scale,
    build_cluster_state,
    build_policy_network,
)
from repro.analysis.reporting import format_table
from repro.analysis.stats import percentile
from repro.core import GraphManager, QuincyPolicy
from repro.solvers import CostScalingSolver, RelaxationSolver

MACHINES = 48 * bench_scale()
TRIALS = 5


def one_trial(seed: int):
    """Relaxation solves round N; measure the round N+1 incremental cost
    scaling run with and without price refine."""
    state = build_cluster_state(MACHINES, utilization=0.6, seed=seed)
    add_pending_batch_job(state, MACHINES // 2, seed=seed + 1)
    manager = GraphManager(QuincyPolicy())
    network = manager.update(state, now=10.0)
    relaxation_result = RelaxationSolver().solve(network.copy())

    # The cluster changes a little before the next run: waiting costs grow.
    changed = manager.update(state, now=30.0)

    # The naive handoff cannot reuse relaxation's potentials (they live in a
    # different reduced-cost representation, Section 6.2), so the comparison
    # is "derive potentials with price refine" vs "start with none".
    times = {}
    for use_price_refine in (False, True):
        solver = CostScalingSolver()
        start = time.perf_counter()
        solver.solve_warm(
            changed.copy(),
            relaxation_result.flows,
            warm_potentials=None,
            apply_price_refine=use_price_refine,
        )
        times[use_price_refine] = time.perf_counter() - start
    return times


def test_fig13_price_refine_speeds_up_warm_started_cost_scaling(benchmark):
    """Regenerates Figure 13 (scaled down)."""
    without_refine = []
    with_refine = []
    for seed in range(TRIALS):
        times = one_trial(seed)
        without_refine.append(times[False])
        with_refine.append(times[True])

    rows = [
        ["cost scaling (no price refine)", f"{percentile(without_refine, 50):.3f}",
         f"{max(without_refine):.3f}"],
        ["price refine + cost scaling", f"{percentile(with_refine, 50):.3f}",
         f"{max(with_refine):.3f}"],
    ]
    print()
    print(f"Figure 13: warm-started cost scaling after a relaxation run ({TRIALS} trials)")
    print(format_table(["variant", "median [s]", "max [s]"], rows))
    speedup = percentile(without_refine, 50) / max(percentile(with_refine, 50), 1e-9)
    print(f"median speedup from price refine: {speedup:.1f}x")

    # Price refine must make the handoff faster (the paper observes ~4x).
    assert speedup > 1.3

    state = build_cluster_state(MACHINES, utilization=0.6, seed=99)
    add_pending_batch_job(state, MACHINES // 2, seed=100)
    manager, network = build_policy_network(state, QuincyPolicy())
    relaxation_result = RelaxationSolver().solve(network.copy())
    benchmark(
        lambda: CostScalingSolver().solve_warm(
            network.copy(),
            relaxation_result.flows,
            warm_potentials=None,
            apply_price_refine=True,
        )
    )
