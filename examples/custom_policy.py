#!/usr/bin/env python3
"""Writing a custom scheduling policy against Firmament's policy API.

The paper (Section 3.3) emphasizes that Firmament generalizes flow-based
scheduling: cluster administrators express their own policy as a flow
network generator, using policy-defined aggregator nodes to encode
constraints compactly.  This example implements a small *rack anti-affinity*
policy from scratch -- tasks of the same job should spread across racks for
fault tolerance -- and runs it through the unmodified Firmament scheduler.

The encoding shows off what aggregators are for: every (job, rack) pair gets
a quota aggregator whose arc to the rack carries only the job's fair share
of that rack (``ceil(tasks / racks)``).  Routing through the quota node is
cheap; packing more of the job into the same rack is still possible, but
only via a penalized direct arc.  The min-cost solution therefore spreads
each job across racks whenever capacity allows -- within a single scheduling
run, not just across runs.

Run with::

    python examples/custom_policy.py
"""

from __future__ import annotations

import math
from collections import defaultdict

from repro.cluster import ClusterState, Job, JobType, Task, build_topology
from repro.core import FirmamentScheduler
from repro.core.policies import SchedulingPolicy
from repro.core.policies.base import PolicyNetworkBuilder
from repro.flow.graph import NodeType


class RackAntiAffinityPolicy(SchedulingPolicy):
    """Spread each job's tasks across racks using per-(job, rack) quotas."""

    name = "rack_anti_affinity"

    #: Extra cost for exceeding a job's fair share of a rack.
    colocation_penalty: int = 40

    def build(self, state: ClusterState, builder: PolicyNetworkBuilder, now: float) -> None:
        topology = state.topology
        tasks = state.schedulable_tasks()
        if not tasks:
            return

        # Backbone: rack aggregator -> machines -> sink.
        for rack_id, rack in topology.racks.items():
            rack_node = builder.rack_node(rack_id)
            for machine_id in rack.machine_ids:
                machine = topology.machine(machine_id)
                if not machine.is_available:
                    continue
                machine_node = builder.machine_node(machine_id)
                builder.add_arc(rack_node, machine_node, machine.num_slots, 0)
                builder.add_arc(machine_node, builder.sink, machine.num_slots, 0)

        tasks_per_job = defaultdict(int)
        for task in tasks:
            tasks_per_job[task.job_id] += 1

        jobs_seen = set()
        for task in tasks:
            task_node = builder.task_node(task.task_id)
            jobs_seen.add(task.job_id)
            fair_share = math.ceil(tasks_per_job[task.job_id] / max(1, topology.num_racks))
            for rack_id in topology.racks:
                rack_node = builder.rack_node(rack_id)
                # Cheap path, capped at the job's fair share of the rack.
                quota_node = builder.aggregator(
                    f"quota-j{task.job_id}-r{rack_id}", NodeType.OTHER
                )
                builder.add_arc(task_node, quota_node, 1, self.placement_base_cost)
                builder.add_arc(quota_node, rack_node, fair_share, 0)
                # Overflow path: allowed, but penalized.
                builder.add_arc(
                    task_node,
                    rack_node,
                    1,
                    self.placement_base_cost + self.colocation_penalty,
                )
            builder.add_arc(
                task_node,
                builder.unscheduled_node(task.job_id),
                1,
                self.unscheduled_cost(task, now),
            )
            if task.is_running and task.machine_id is not None:
                builder.add_arc(
                    task_node,
                    builder.machine_node(task.machine_id),
                    1,
                    self.continuation_cost(task),
                )

        for job_id in jobs_seen:
            builder.add_arc(
                builder.unscheduled_node(job_id),
                builder.sink,
                state.jobs[job_id].num_tasks,
                0,
            )


def main() -> None:
    topology = build_topology(num_machines=12, machines_per_rack=3, slots_per_machine=4)
    state = ClusterState(topology)

    # One service job with eight replicas that should spread across racks.
    job = Job(job_id=1, job_type=JobType.SERVICE, submit_time=0.0)
    for index in range(8):
        job.add_task(Task(task_id=index, job_id=1, duration=None))
    state.submit_job(job)

    scheduler = FirmamentScheduler(RackAntiAffinityPolicy())
    decision = scheduler.schedule_and_apply(state, now=0.0)

    print("=== Custom policy: rack anti-affinity ===")
    print(f"tasks placed: {len(decision.placements)} / {job.num_tasks}")
    racks = defaultdict(list)
    for task_id, machine_id in sorted(decision.placements.items()):
        rack_id = topology.machine(machine_id).rack_id
        racks[rack_id].append(task_id)
    for rack_id in sorted(racks):
        print(f"  rack {rack_id}: tasks {racks[rack_id]}")
    print(f"job spread across {len(racks)} of {topology.num_racks} racks "
          f"(fair share: {math.ceil(job.num_tasks / topology.num_racks)} tasks/rack)")


if __name__ == "__main__":
    main()
