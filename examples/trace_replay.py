#!/usr/bin/env python3
"""Replay a synthetic Google-like trace against several schedulers.

This is the simulation setup behind the paper's scalability experiments
(Figures 3, 14, 18), scaled down to run in seconds: a cluster is pre-filled
to a target utilization, a synthetic trace with heavy-tailed job sizes and a
batch/service mix is generated, and the same trace is replayed against
Firmament (dual MCMF solver), Quincy (cost scaling only), and a Sparrow-like
distributed sampler.  The script prints placement latency and response-time
percentiles for each scheduler.

Run with::

    python examples/trace_replay.py [num_machines] [trace_seconds]
"""

from __future__ import annotations

import sys

from repro.analysis.stats import percentile
from repro.baselines import SparrowScheduler, make_quincy_scheduler
from repro.cluster import ClusterState, build_topology
from repro.core import FirmamentScheduler, QuincyPolicy
from repro.simulation import (
    ClusterSimulator,
    GoogleTraceGenerator,
    SimulationConfig,
    TraceConfig,
    fill_cluster_to_utilization,
)


def replay(scheduler, name: str, num_machines: int, trace_seconds: float) -> None:
    topology = build_topology(num_machines=num_machines, machines_per_rack=20,
                              slots_per_machine=4)
    state = ClusterState(topology)
    fill_cluster_to_utilization(state, utilization=0.6)

    trace_config = TraceConfig(
        num_machines=num_machines,
        slots_per_machine=4,
        target_utilization=0.3,
        duration=trace_seconds,
        seed=123,
        service_job_fraction=0.15,
    )
    simulator = ClusterSimulator(state, scheduler, SimulationConfig(max_time=trace_seconds))
    # Streamed: only the trace's next job ever sits in the event queue.
    simulator.submit_job_stream(GoogleTraceGenerator(trace_config).iter_jobs())
    result = simulator.run()

    latencies = result.metrics.placement_latencies
    responses = result.metrics.response_times
    print(f"{name:28s} placed={result.metrics.tasks_placed:4d} "
          f"placement latency p50={percentile(latencies, 50):6.3f}s "
          f"p99={percentile(latencies, 99):6.3f}s   "
          f"task response p50={percentile(responses, 50):7.2f}s")


def main() -> None:
    num_machines = int(sys.argv[1]) if len(sys.argv) > 1 else 48
    trace_seconds = float(sys.argv[2]) if len(sys.argv) > 2 else 60.0

    print(f"=== Trace replay on {num_machines} machines, {trace_seconds:.0f}s of trace ===")
    replay(FirmamentScheduler(QuincyPolicy()), "firmament (dual solver)",
           num_machines, trace_seconds)
    replay(make_quincy_scheduler(), "quincy (cost scaling only)",
           num_machines, trace_seconds)
    replay(SparrowScheduler(), "sparrow (batch sampling)",
           num_machines, trace_seconds)


if __name__ == "__main__":
    main()
