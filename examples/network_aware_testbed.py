#!/usr/bin/env python3
"""Placement quality on the simulated 40-machine testbed (Section 7.5).

Short batch analytics tasks read 4-8 GB inputs from HDFS while iperf-style
batch jobs and nginx-style services load the network.  The example runs the
flow-level testbed model with Firmament's network-aware policy and with the
queue-based comparator schedulers, and prints the task response-time
percentiles with and without the background traffic (Figure 19a/b).

Run with::

    python examples/network_aware_testbed.py
"""

from __future__ import annotations

from repro.baselines import (
    KubernetesScheduler,
    MesosScheduler,
    SparrowScheduler,
    SwarmKitScheduler,
)
from repro.core import FirmamentScheduler, NetworkAwarePolicy
from repro.testbed import TestbedConfig, TestbedExperiment


def run_condition(with_background: bool) -> None:
    label = "with background traffic" if with_background else "idle network"
    print(f"--- Short batch analytics tasks, {label} ---")
    config = TestbedConfig(num_jobs=16, tasks_per_job=10, with_background=with_background)
    experiment = TestbedExperiment(config)

    runs = [("idle (isolation)", experiment.run_idle_baseline())]
    schedulers = [
        ("firmament", FirmamentScheduler(NetworkAwarePolicy(), allow_migrations=False)),
        ("swarmkit", SwarmKitScheduler()),
        ("kubernetes", KubernetesScheduler()),
        ("mesos", MesosScheduler()),
        ("sparrow", SparrowScheduler()),
    ]
    for name, scheduler in schedulers:
        runs.append((name, experiment.run_with_scheduler(scheduler, name)))

    print(f"{'scheduler':18s} {'p50':>8s} {'p90':>8s} {'p99':>8s}")
    for name, run in runs:
        print(f"{name:18s} {run.percentile(50):7.2f}s {run.percentile(90):7.2f}s "
              f"{run.percentile(99):7.2f}s")
    print()


def main() -> None:
    print("=== Network-aware scheduling on the simulated testbed ===\n")
    run_condition(with_background=False)
    run_condition(with_background=True)


if __name__ == "__main__":
    main()
