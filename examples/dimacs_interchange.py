#!/usr/bin/env python3
"""Exporting a scheduling problem as DIMACS and solving it with every algorithm.

The real Firmament talks to its MCMF solver through the DIMACS min-cost-flow
text format.  This example builds a scheduling flow network with the Quincy
policy, serializes it to DIMACS, reads it back, and solves it with all four
MCMF algorithms from the paper -- verifying that they agree on the optimal
cost while differing (sometimes wildly) in runtime, which is the observation
that motivates Firmament's algorithm choice (Sections 4 and 6.1).

Run with::

    python examples/dimacs_interchange.py
"""

from __future__ import annotations

import random
import tempfile
from pathlib import Path

from repro.cluster import ClusterState, Job, JobType, Task, build_topology
from repro.core import GraphManager, QuincyPolicy
from repro.flow.dimacs import read_dimacs, write_dimacs
from repro.solvers import (
    CostScalingSolver,
    CycleCancelingSolver,
    RelaxationSolver,
    SuccessiveShortestPathSolver,
)


def build_problem() -> ClusterState:
    """A 16-machine cluster with three batch jobs and locality preferences."""
    topology = build_topology(num_machines=16, machines_per_rack=4, slots_per_machine=2)
    state = ClusterState(topology)
    rng = random.Random(23)
    task_id = 0
    for job_id in range(3):
        job = Job(job_id=job_id, job_type=JobType.BATCH)
        for _ in range(8):
            locality = {
                machine: round(rng.uniform(0.2, 0.7), 2)
                for machine in rng.sample(range(16), 3)
            }
            job.add_task(
                Task(
                    task_id=task_id,
                    job_id=job_id,
                    duration=60.0,
                    input_size_gb=rng.uniform(1.0, 10.0),
                    input_locality=locality,
                )
            )
            task_id += 1
        state.submit_job(job)
    return state


def main() -> None:
    state = build_problem()
    network = GraphManager(QuincyPolicy()).update(state, now=0.0)

    # Round-trip the problem through the DIMACS text format, as the real
    # Firmament does across its scheduler/solver process boundary.
    text = write_dimacs(network)
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "scheduling.dimacs"
        path.write_text(text, encoding="utf-8")
        restored = read_dimacs(path.read_text(encoding="utf-8"))

    print("=== DIMACS interchange ===")
    print(f"flow network: {network.num_nodes} nodes, {network.num_arcs} arcs")
    print(f"DIMACS document: {len(text.splitlines())} lines")
    print()
    print(f"{'algorithm':<28}{'total cost':>12}{'runtime [ms]':>15}")
    print("-" * 55)
    solvers = [
        RelaxationSolver(),
        CostScalingSolver(),
        SuccessiveShortestPathSolver(),
        CycleCancelingSolver(),
    ]
    costs = set()
    for solver in solvers:
        result = solver.solve(restored.copy())
        costs.add(result.total_cost)
        print(f"{solver.name:<28}{result.total_cost:>12}"
              f"{result.runtime_seconds * 1000:>15.2f}")
    print()
    assert len(costs) == 1, "all MCMF algorithms must agree on the optimal cost"
    print("all four algorithms found the same optimal cost "
          f"({costs.pop()}), at very different runtimes.")


if __name__ == "__main__":
    main()
