#!/usr/bin/env python3
"""Compare the MCMF algorithms on a scheduling flow network.

Builds a cluster snapshot with a pending batch job, derives the Quincy
policy's flow network, and runs all four min-cost max-flow algorithms plus
the incremental cost-scaling warm start on it.  All algorithms must agree on
the optimal cost; their runtimes differ dramatically (Section 4 of the
paper).

Run with::

    python examples/solver_comparison.py [num_machines]
"""

from __future__ import annotations

import random
import sys
import time

from repro.cluster import ClusterState, Job, Task, build_topology
from repro.core import GraphManager, QuincyPolicy
from repro.simulation import fill_cluster_to_utilization
from repro.solvers import (
    CostScalingSolver,
    CycleCancelingSolver,
    IncrementalCostScalingSolver,
    RelaxationSolver,
    SuccessiveShortestPathSolver,
)


def build_network(num_machines: int):
    topology = build_topology(num_machines=num_machines, machines_per_rack=20,
                              slots_per_machine=4)
    state = ClusterState(topology)
    fill_cluster_to_utilization(state, utilization=0.5)
    rng = random.Random(3)
    job = Job(job_id=99, submit_time=0.0)
    for index in range(num_machines):
        locality = {m: rng.uniform(0.2, 0.6) for m in rng.sample(range(num_machines), 3)}
        job.add_task(Task(task_id=10_000 + index, job_id=99, duration=60.0,
                          input_size_gb=rng.uniform(1.0, 8.0), input_locality=locality))
    state.submit_job(job)
    manager = GraphManager(QuincyPolicy())
    return manager.update(state, now=5.0)


def main() -> None:
    num_machines = int(sys.argv[1]) if len(sys.argv) > 1 else 64
    network = build_network(num_machines)
    print(f"=== MCMF algorithm comparison ({num_machines} machines, "
          f"{network.num_nodes} nodes, {network.num_arcs} arcs) ===\n")

    solvers = [
        ("relaxation", RelaxationSolver()),
        ("cost scaling (alpha=2)", CostScalingSolver()),
        ("cost scaling (alpha=9)", CostScalingSolver(alpha=9)),
        ("successive shortest path", SuccessiveShortestPathSolver()),
    ]
    if num_machines <= 24:
        solvers.append(("cycle canceling", CycleCancelingSolver()))

    costs = set()
    print(f"{'algorithm':28s} {'runtime':>10s} {'cost':>10s}")
    for name, solver in solvers:
        candidate = network.copy()
        start = time.perf_counter()
        result = solver.solve(candidate)
        elapsed = time.perf_counter() - start
        costs.add(result.total_cost)
        print(f"{name:28s} {elapsed * 1000:8.1f}ms {result.total_cost:10d}")

    # Incremental cost scaling: second run warm-starts from the first.
    incremental = IncrementalCostScalingSolver()
    incremental.solve(network.copy())
    start = time.perf_counter()
    warm = incremental.solve(network.copy())
    elapsed = time.perf_counter() - start
    costs.add(warm.total_cost)
    print(f"{'incremental cost scaling':28s} {elapsed * 1000:8.1f}ms {warm.total_cost:10d}"
          f"   (warm start, unchanged graph)")

    assert len(costs) == 1, "all algorithms must agree on the optimal cost"
    print("\nall algorithms found the same optimal cost")


if __name__ == "__main__":
    main()
