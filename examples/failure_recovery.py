#!/usr/bin/env python3
"""Machine failures and rescheduling under continuous flow-based scheduling.

Flow-based scheduling reconsiders the entire workload on every run, so a
machine failure needs no special-case recovery code: the failed machine's
arcs disappear from the flow network, its evicted tasks become sources
again, and the next solver run re-places them (paper, Section 5.2).

This example runs a trace-driven simulation with injected machine failures
and reports how many tasks were evicted, how quickly they were re-placed,
and the impact on response time compared to a failure-free run.

Run with::

    python examples/failure_recovery.py
"""

from __future__ import annotations

from repro.cluster import ClusterState, build_topology
from repro.core import FirmamentScheduler, QuincyPolicy
from repro.simulation import (
    ClusterSimulator,
    FailureInjector,
    GoogleTraceGenerator,
    SimulationConfig,
    TraceConfig,
)

MACHINES = 24
DURATION = 300.0


def run_simulation(inject_failures: bool):
    """Run the same workload with or without machine failures."""
    topology = build_topology(num_machines=MACHINES, slots_per_machine=4)
    state = ClusterState(topology)
    scheduler = FirmamentScheduler(QuincyPolicy())

    trace = GoogleTraceGenerator(
        TraceConfig(
            num_machines=MACHINES,
            target_utilization=0.6,
            duration=DURATION,
            seed=17,
        ),
        topology,
    )
    simulator = ClusterSimulator(state, scheduler, SimulationConfig(max_time=DURATION))
    simulator.submit_job_stream(trace.iter_jobs())

    schedule = None
    if inject_failures:
        injector = FailureInjector(
            mean_time_between_failures=60.0, mean_time_to_repair=90.0, seed=4
        )
        schedule = injector.inject(simulator, horizon=DURATION)

    result = simulator.run()
    return result, schedule


def main() -> None:
    baseline, _ = run_simulation(inject_failures=False)
    with_failures, schedule = run_simulation(inject_failures=True)

    print("=== Failure injection and recovery ===")
    print(f"machines: {MACHINES}, trace duration: {DURATION:.0f}s")
    print(f"failures injected: {schedule.num_failures} "
          f"on machines {schedule.machines_affected()}")
    print()
    header = f"{'metric':<34}{'no failures':>14}{'with failures':>16}"
    print(header)
    print("-" * len(header))
    rows = [
        ("tasks completed", baseline.metrics.tasks_completed,
         with_failures.metrics.tasks_completed),
        ("p50 placement latency [s]",
         f"{baseline.metrics.placement_latency_percentile(50):.2f}",
         f"{with_failures.metrics.placement_latency_percentile(50):.2f}"),
        ("p99 placement latency [s]",
         f"{baseline.metrics.placement_latency_percentile(99):.2f}",
         f"{with_failures.metrics.placement_latency_percentile(99):.2f}"),
        ("p50 task response time [s]",
         f"{baseline.metrics.response_time_percentile(50):.2f}",
         f"{with_failures.metrics.response_time_percentile(50):.2f}"),
        ("p99 task response time [s]",
         f"{baseline.metrics.response_time_percentile(99):.2f}",
         f"{with_failures.metrics.response_time_percentile(99):.2f}"),
    ]
    for name, base_value, fail_value in rows:
        print(f"{name:<34}{str(base_value):>14}{str(fail_value):>16}")
    print()
    print("Evicted tasks are re-placed automatically by the next scheduling "
          "run; the tail of the response-time distribution absorbs the rework.")


if __name__ == "__main__":
    main()
