#!/usr/bin/env python3
"""Quickstart: schedule a small workload with Firmament.

Builds a 12-machine cluster, submits two batch jobs with data locality
preferences, runs one Firmament scheduling iteration (Quincy policy, the
speculative dual MCMF solver), and prints the resulting placements together
with solver statistics.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import random

from repro.cluster import ClusterState, Job, JobType, Task, build_topology
from repro.core import FirmamentScheduler, QuincyPolicy


def build_cluster() -> ClusterState:
    """A 12-machine, 3-rack cluster with four task slots per machine."""
    topology = build_topology(num_machines=12, machines_per_rack=4, slots_per_machine=4)
    return ClusterState(topology)


def submit_workload(state: ClusterState) -> None:
    """Two batch jobs whose tasks have input data spread over the cluster."""
    rng = random.Random(7)
    task_id = 0
    for job_id in range(2):
        job = Job(job_id=job_id, job_type=JobType.BATCH, submit_time=0.0)
        for _ in range(6):
            # Each task reads a few GB of input; some machines hold replicas.
            locality = {
                machine: round(rng.uniform(0.2, 0.6), 2)
                for machine in rng.sample(range(12), 2)
            }
            job.add_task(
                Task(
                    task_id=task_id,
                    job_id=job_id,
                    duration=30.0,
                    input_size_gb=rng.uniform(2.0, 8.0),
                    input_locality=locality,
                )
            )
            task_id += 1
        state.submit_job(job)


def main() -> None:
    state = build_cluster()
    submit_workload(state)

    scheduler = FirmamentScheduler(QuincyPolicy())
    decision = scheduler.schedule_and_apply(state, now=0.0)

    print("=== Firmament quickstart ===")
    print(f"tasks placed      : {len(decision.placements)}")
    print(f"tasks unscheduled : {len(decision.unscheduled)}")
    print(f"flow cost         : {decision.total_cost}")
    print(f"algorithm runtime : {decision.algorithm_runtime * 1000:.1f} ms "
          f"(winner: {decision.solver_result.algorithm})")
    print()
    print("placements (task -> machine, input locality on that machine):")
    for task_id in sorted(decision.placements):
        machine_id = decision.placements[task_id]
        task = state.tasks[task_id]
        local = task.locality_fraction(machine_id)
        print(f"  task {task_id:3d} -> machine {machine_id:2d}   ({local:.0%} of input local)")
    print()
    print(f"cluster slot utilization: {state.slot_utilization():.0%}")


if __name__ == "__main__":
    main()
