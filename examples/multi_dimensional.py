#!/usr/bin/env python3
"""Multi-dimensional scheduling and runtime-aware cost models.

The paper's head-to-head comparison with Quincy uses slot-based assignment,
but Firmament itself supports Borg-style multi-dimensional feasibility
checking and arbitrary cost models (Sections 3.3 and 7.1).  This example
exercises both extensions shipped with the reproduction:

1. the CPU/RAM policy places a mixed workload of small and large tasks
   without overcommitting any machine dimension, and
2. the shortest-job-first policy uses the knowledge base's runtime history
   so that short tasks win scarce slots, cutting mean response time compared
   to runtime-oblivious load spreading.

Run with::

    python examples/multi_dimensional.py
"""

from __future__ import annotations

from repro.cluster import (
    ClusterState,
    Job,
    JobType,
    KnowledgeBase,
    ResourceVector,
    Task,
    build_topology,
)
from repro.core import FirmamentScheduler
from repro.core.policies import CpuMemoryPolicy, LoadSpreadingPolicy, ShortestJobFirstPolicy
from repro.simulation import ClusterSimulator, SimulationConfig


def demo_cpu_memory() -> None:
    """Place small and large tasks under multi-dimensional feasibility."""
    topology = build_topology(num_machines=6, slots_per_machine=8, cpu_cores=8, ram_gb=32)
    state = ClusterState(topology)

    job = Job(job_id=1, job_type=JobType.BATCH)
    for index in range(12):
        large = index < 4
        job.add_task(
            Task(
                task_id=index,
                job_id=1,
                duration=60.0,
                cpu_request=4.0 if large else 1.0,
                ram_request_gb=16.0 if large else 2.0,
            )
        )
    state.submit_job(job)

    scheduler = FirmamentScheduler(CpuMemoryPolicy())
    decision = scheduler.schedule_and_apply(state, now=0.0)

    print("--- CPU/RAM policy ---")
    print(f"tasks placed: {len(decision.placements)} / {job.num_tasks}")
    for machine_id in sorted(topology.machines):
        in_use = state.resources_in_use(machine_id)
        capacity = ResourceVector.for_machine(topology.machine(machine_id))
        print(f"  machine {machine_id}: "
              f"cpu {in_use.cpu_cores:.0f}/{capacity.cpu_cores:.0f} cores, "
              f"ram {in_use.ram_gb:.0f}/{capacity.ram_gb:.0f} GB")
    print()


def run_sjf_comparison(policy, jobs):
    """Simulate a scarce cluster with the given policy and return mean response time."""
    topology = build_topology(num_machines=2, slots_per_machine=2)
    state = ClusterState(topology)
    scheduler = FirmamentScheduler(policy)
    simulator = ClusterSimulator(state, scheduler, SimulationConfig(max_time=600.0))
    simulator.submit_jobs(jobs)
    result = simulator.run()
    times = result.metrics.response_times
    return sum(times) / len(times) if times else 0.0


def make_mixed_jobs():
    """Four short tasks and four long tasks competing for four slots."""
    jobs = []
    short = Job(job_id=1, job_type=JobType.BATCH, submit_time=0.0)
    for index in range(4):
        short.add_task(Task(task_id=index, job_id=1, duration=10.0, cpu_request=1.0))
    long = Job(job_id=2, job_type=JobType.BATCH, submit_time=0.0)
    for index in range(4):
        long.add_task(Task(task_id=100 + index, job_id=2, duration=120.0, cpu_request=2.0))
    jobs.extend([short, long])
    return jobs


def demo_shortest_job_first() -> None:
    """Compare SJF against load spreading on a slot-scarce cluster."""
    # Seed the knowledge base with the runtime history of both task classes.
    knowledge_base = KnowledgeBase()
    for job in make_mixed_jobs():
        for task in job.tasks:
            knowledge_base.record_completion(task, runtime=task.duration)

    sjf_mean = run_sjf_comparison(
        ShortestJobFirstPolicy(knowledge_base=knowledge_base), make_mixed_jobs()
    )
    spread_mean = run_sjf_comparison(LoadSpreadingPolicy(), make_mixed_jobs())

    print("--- Shortest-job-first cost model ---")
    print(f"mean task response time, load spreading   : {spread_mean:.1f} s")
    print(f"mean task response time, shortest job first: {sjf_mean:.1f} s")
    if sjf_mean < spread_mean:
        print("SJF lets the short tasks run first, improving mean response time.")
    print()


def main() -> None:
    print("=== Multi-dimensional scheduling and cost models ===\n")
    demo_cpu_memory()
    demo_shortest_job_first()


if __name__ == "__main__":
    main()
